"""Dictionary encoding: arbitrary values ↔ dense 32-bit keys (paper §2.2).

EmptyHeaded tries store only ``uint32`` values, so input tables of
arbitrary type are dictionary-encoded first.  The *order* in which ids are
assigned matters for performance (it determines set density in the trie),
which is why :mod:`repro.storage.ordering` produces id permutations that
this class can be rebuilt around.
"""

import numpy as np

from ..errors import SchemaError


class Dictionary:
    """A bijective mapping from hashable values to dense ``uint32`` ids.

    Ids are assigned on first encode in insertion order; use
    :meth:`remap` to apply a node-ordering permutation afterwards.

    Examples
    --------
    >>> d = Dictionary()
    >>> d.encode("alice"), d.encode("bob"), d.encode("alice")
    (0, 1, 0)
    >>> d.decode(1)
    'bob'
    """

    def __init__(self):
        self._value_to_id = {}
        self._id_to_value = []
        # Optional shared-memory decode column (share_into): an int64
        # array with _id_array[id] == value, valid only while every
        # stored value is a plain int.  Forked workers decode from the
        # shared pages instead of duplicating the Python list.
        self._id_array = None

    def __len__(self):
        return len(self._id_to_value)

    def __contains__(self, value):
        return value in self._value_to_id

    def encode(self, value):
        """Return the id for ``value``, assigning a fresh one on miss."""
        existing = self._value_to_id.get(value)
        if existing is not None:
            return existing
        new_id = len(self._id_to_value)
        if new_id > 2 ** 32 - 1:
            raise SchemaError("dictionary exceeded the 32-bit key space")
        self._value_to_id[value] = new_id
        self._id_to_value.append(value)
        self._id_array = None
        return new_id

    def encode_many(self, values):
        """Encode an iterable of values to a ``uint32`` array."""
        return np.fromiter((self.encode(v) for v in values),
                           dtype=np.uint32, count=len(values)
                           if hasattr(values, "__len__") else -1)

    def lookup(self, value):
        """Id for ``value`` without assigning; raises ``KeyError`` on miss."""
        return self._value_to_id[value]

    def decode(self, key):
        """Original value for id ``key``."""
        key = int(key)
        if not 0 <= key < len(self._id_to_value):
            raise KeyError(key)
        if self._id_array is not None:
            return int(self._id_array[key])
        return self._id_to_value[key]

    def decode_many(self, keys):
        """Decode an iterable of ids to a list of original values."""
        if self._id_array is not None:
            table = self._id_array
            return [int(table[int(k)]) for k in keys]
        table = self._id_to_value
        return [table[int(k)] for k in keys]

    def share_into(self, arena):
        """Place the decode column into ``arena`` shared memory.

        Only applies when every stored value is a plain ``int`` (the
        graph-loader case — node ids); mixed-type dictionaries keep
        their private Python list and this is a no-op.  Returns the
        number of payload bytes shared.
        """
        if not self._id_to_value:
            return 0
        if not all(type(value) is int for value in self._id_to_value):
            return 0
        column = np.asarray(self._id_to_value, dtype=np.int64)
        self._id_array = arena.place(column)
        return int(column.nbytes)

    def remap(self, permutation):
        """Apply a node-ordering permutation in place.

        ``permutation[old_id] == new_id``; must be a bijection over the
        current id range.  Returns the permutation for chaining so callers
        can remap already-encoded columns with ``permutation[column]``.
        """
        perm = np.asarray(permutation)
        n = len(self._id_to_value)
        if perm.shape != (n,) or not np.array_equal(np.sort(perm),
                                                    np.arange(n)):
            raise SchemaError("permutation must be a bijection over %d ids"
                              % n)
        new_table = [None] * n
        for old_id, value in enumerate(self._id_to_value):
            new_table[int(perm[old_id])] = value
        self._id_to_value = new_table
        self._value_to_id = {v: i for i, v in enumerate(new_table)}
        self._id_array = None
        return perm


def identity_dictionary(n):
    """A dictionary over ``range(n)`` mapping each integer to itself.

    Convenience for graph inputs whose node ids are already dense ints.
    """
    d = Dictionary()
    for i in range(n):
        d.encode(i)
    return d
