"""Node-ordering schemes for dictionary id assignment (paper App. A.1.1).

Every scheme takes an edge array over ``n`` node ids and returns a
permutation ``perm`` with ``perm[old_id] == new_id``.  The orderings
change set ranges/densities in the trie and, for symmetric queries with
pruning, the number of comparisons — the paper finds over an order of
magnitude spread between the best and worst orderings on skewed graphs.

Implemented schemes: ``random``, ``bfs``, ``degree``, ``rev_degree``,
``strong_runs``, ``shingle``, and the paper's proposed ``hybrid``
(BFS labels, then stable sort by descending degree).
"""

from collections import deque

import numpy as np

#: Names accepted by :func:`order_nodes`.
ORDERINGS = ("identity", "random", "bfs", "degree", "rev_degree",
             "strong_runs", "shingle", "hybrid")


def _degrees(edges, n_nodes):
    """Undirected degree of every node id in ``[0, n_nodes)``."""
    deg = np.zeros(n_nodes, dtype=np.int64)
    np.add.at(deg, edges[:, 0], 1)
    np.add.at(deg, edges[:, 1], 1)
    return deg


def _adjacency(edges, n_nodes):
    """Sorted adjacency list per node (undirected view of ``edges``)."""
    both = np.concatenate([edges, edges[:, ::-1]])
    order = np.lexsort((both[:, 1], both[:, 0]))
    both = both[order]
    starts = np.searchsorted(both[:, 0], np.arange(n_nodes))
    bounds = np.append(starts, both.shape[0])
    return [both[bounds[i]:bounds[i + 1], 1] for i in range(n_nodes)]


def _ranking_to_permutation(ranking):
    """Convert "node visited k-th" order into perm[old] = new."""
    perm = np.empty(len(ranking), dtype=np.uint32)
    perm[np.asarray(ranking)] = np.arange(len(ranking), dtype=np.uint32)
    return perm


def identity_order(edges, n_nodes, seed=None):
    """Keep ids as they arrived (the input/insertion ordering)."""
    return np.arange(n_nodes, dtype=np.uint32)


def random_order(edges, n_nodes, seed=0):
    """Uniform random relabeling — the paper's baseline ordering."""
    rng = np.random.default_rng(seed)
    return rng.permutation(n_nodes).astype(np.uint32)


def degree_order(edges, n_nodes, seed=None):
    """Descending-degree ordering: the highest-degree node gets id 0.

    This is the "default standard" that most graph engines (and the
    paper's triangle pruning) use.
    """
    deg = _degrees(edges, n_nodes)
    ranking = np.argsort(-deg, kind="stable")
    return _ranking_to_permutation(ranking)


def rev_degree_order(edges, n_nodes, seed=None):
    """Ascending-degree ordering."""
    deg = _degrees(edges, n_nodes)
    ranking = np.argsort(deg, kind="stable")
    return _ranking_to_permutation(ranking)


def bfs_order(edges, n_nodes, seed=None):
    """Breadth-first labels from the highest-degree node.

    Unreached components are started from their own highest-degree node,
    so the permutation is total even on disconnected graphs.
    """
    deg = _degrees(edges, n_nodes)
    adjacency = _adjacency(edges, n_nodes)
    visited = np.zeros(n_nodes, dtype=bool)
    ranking = []
    for start in np.argsort(-deg, kind="stable"):
        if visited[start]:
            continue
        visited[start] = True
        queue = deque([int(start)])
        while queue:
            node = queue.popleft()
            ranking.append(node)
            for neighbor in adjacency[node]:
                neighbor = int(neighbor)
                if not visited[neighbor]:
                    visited[neighbor] = True
                    queue.append(neighbor)
    return _ranking_to_permutation(ranking)


def strong_runs_order(edges, n_nodes, seed=None):
    """Strong-Runs: by descending degree, assign continuous numbers to
    each node's not-yet-numbered neighbors (a cheap BFS approximation)."""
    deg = _degrees(edges, n_nodes)
    adjacency = _adjacency(edges, n_nodes)
    assigned = np.zeros(n_nodes, dtype=bool)
    ranking = []
    for node in np.argsort(-deg, kind="stable"):
        node = int(node)
        if not assigned[node]:
            assigned[node] = True
            ranking.append(node)
        for neighbor in adjacency[node]:
            neighbor = int(neighbor)
            if not assigned[neighbor]:
                assigned[neighbor] = True
                ranking.append(neighbor)
    return _ranking_to_permutation(ranking)


def shingle_order(edges, n_nodes, seed=0):
    """Shingle ordering: cluster nodes with similar neighborhoods.

    Following Chierichetti et al., nodes are sorted by the min-hash
    "shingle" of their neighborhood (the smallest neighbor under a random
    permutation), which places nodes with overlapping neighborhoods next
    to each other.
    """
    rng = np.random.default_rng(seed)
    hash_perm = rng.permutation(n_nodes)
    adjacency = _adjacency(edges, n_nodes)
    shingles = np.empty(n_nodes, dtype=np.int64)
    for node in range(n_nodes):
        neighbors = adjacency[node]
        shingles[node] = hash_perm[neighbors].min() if neighbors.size \
            else n_nodes
    ranking = np.lexsort((np.arange(n_nodes), shingles))
    return _ranking_to_permutation(ranking)


def hybrid_order(edges, n_nodes, seed=None):
    """The paper's proposed hybrid: BFS labels, then a stable sort by
    descending degree, so equal-degree nodes keep their BFS locality."""
    deg = _degrees(edges, n_nodes)
    bfs_perm = bfs_order(edges, n_nodes)
    # bfs label of node v is bfs_perm[v]; stable sort by (-degree, bfs).
    ranking = np.lexsort((bfs_perm, -deg))
    return _ranking_to_permutation(ranking)


_SCHEMES = {
    "identity": identity_order,
    "random": random_order,
    "bfs": bfs_order,
    "degree": degree_order,
    "rev_degree": rev_degree_order,
    "strong_runs": strong_runs_order,
    "shingle": shingle_order,
    "hybrid": hybrid_order,
}


def order_nodes(edges, n_nodes, scheme="degree", seed=0):
    """Compute a node permutation under the named scheme.

    Parameters
    ----------
    edges:
        ``(m, 2)`` integer array of (src, dst) pairs over ``[0, n_nodes)``.
    scheme:
        One of :data:`ORDERINGS`.
    seed:
        Seed for the randomized schemes (``random``, ``shingle``).
    """
    if scheme not in _SCHEMES:
        raise ValueError("unknown ordering %r (expected one of %s)"
                         % (scheme, ", ".join(ORDERINGS)))
    edges = np.asarray(edges)
    if edges.size == 0:
        return np.arange(n_nodes, dtype=np.uint32)
    return _SCHEMES[scheme](edges.astype(np.int64, copy=False), n_nodes,
                            seed=seed)


def apply_order(edges, permutation):
    """Relabel an edge array under ``permutation[old] = new``."""
    perm = np.asarray(permutation, dtype=np.uint32)
    return perm[np.asarray(edges, dtype=np.int64)]
