"""Incremental trie construction: the paper's Table 2 append operation.

The execution engine's generated code materializes results with
``R ← R ∪ t × xs`` — append every element of set ``xs`` under prefix
tuple ``t``.  :class:`TrieBuilder` accumulates those appends columnar
and materializes a :class:`~repro.storage.trie.Trie` (or a
:class:`~repro.storage.relation.Relation`) at the end, which is both
faster and simpler than mutating a layout-optimized trie in place.

Together with ``Trie.lookup`` (``R[t]``), set iteration, and
:func:`repro.sets.intersect`, this completes the paper's four-operation
storage API.
"""

import numpy as np

from ..errors import SchemaError
from .relation import Relation
from .trie import Trie


class TrieBuilder:
    """Accumulates ``prefix × set`` appends and builds the result trie.

    Parameters
    ----------
    name:
        Name of the relation being built.
    arity:
        Total key width; every append's ``len(prefix) + 1`` must equal
        it (the appended set supplies the last column).

    Examples
    --------
    >>> builder = TrieBuilder("Q", 2)
    >>> builder.append((1,), [4, 5])
    >>> builder.append((2,), [6])
    >>> list(builder.build().tuples())
    [(1, 4), (1, 5), (2, 6)]
    """

    def __init__(self, name, arity):
        if arity < 1:
            raise SchemaError("TrieBuilder needs arity >= 1")
        self.name = name
        self.arity = arity
        self._chunks = []       # (prefix tuple, values array, ann array)
        self._total = 0

    def append(self, prefix, values, annotations=None):
        """``R ← R ∪ prefix × values`` (paper Table 2).

        ``values`` may be a :class:`~repro.sets.base.SetLayout`, a numpy
        array, or any iterable of ints; ``annotations`` optionally
        aligns one semiring value per appended element.
        """
        if len(prefix) != self.arity - 1:
            raise SchemaError(
                "prefix of length %d does not fit arity %d"
                % (len(prefix), self.arity))
        if hasattr(values, "to_array"):
            values = values.to_array()
        values = np.asarray(list(values) if not isinstance(
            values, np.ndarray) else values, dtype=np.uint32)
        if values.size == 0:
            return
        if annotations is not None:
            annotations = np.asarray(annotations, dtype=np.float64)
            if annotations.shape != values.shape:
                raise SchemaError("annotations must align with values")
        self._chunks.append((tuple(int(v) for v in prefix), values,
                             annotations))
        self._total += int(values.size)

    def append_tuple(self, key, annotation=None):
        """Append one full key tuple."""
        self.append(tuple(key[:-1]), [key[-1]],
                    None if annotation is None else [annotation])

    @property
    def cardinality(self):
        """Number of appended elements so far (before deduplication)."""
        return self._total

    def to_relation(self):
        """Materialize the accumulated appends as a Relation."""
        if not self._chunks:
            return Relation(self.name,
                            np.empty((0, self.arity), dtype=np.uint32))
        any_annotated = any(ann is not None for _, _, ann in self._chunks)
        blocks = []
        annotation_blocks = []
        for prefix, values, annotations in self._chunks:
            block = np.empty((values.size, self.arity), dtype=np.uint32)
            for column, value in enumerate(prefix):
                block[:, column] = value
            block[:, self.arity - 1] = values
            blocks.append(block)
            if any_annotated:
                annotation_blocks.append(
                    annotations if annotations is not None
                    else np.ones(values.size))
        data = np.concatenate(blocks)
        annotations = np.concatenate(annotation_blocks) \
            if any_annotated else None
        return Relation(self.name, data, annotations)

    def build(self, key_order=None, optimizer=None):
        """Materialize the accumulated appends as a Trie."""
        return Trie(self.to_relation(), key_order=key_order,
                    optimizer=optimizer)


def patched_trie(old_trie, relation, key_order, optimizer, entries):
    """Rebuild a cached trie by replaying journal ``entries`` onto it.

    The merge-rebuild half of the delta-store design: instead of
    re-sorting the whole relation, take ``old_trie``'s sorted arrays
    (already permuted into ``key_order``), union the Δ+ batches in and
    subtract the Δ− batches at C speed, then rebuild only the trie
    subtrees under level-0 keys the journal touched — every other
    subtree is adopted from the stale trie (``Trie._patched_root``).
    ``entries`` is the output of
    ``relation.delta.changes_since(old_version)`` in commit order.
    """
    from .delta import merge_sorted, sort_rows, subtract_sorted
    data = old_trie.sorted_data
    annotations = old_trie.sorted_annotations
    order = list(key_order)
    touched = []
    for entry in entries:
        rows, anns = sort_rows(entry.data[:, order], entry.annotations)
        touched.append(rows[:, 0])
        if entry.kind == "+":
            data, annotations = merge_sorted(data, annotations, rows, anns)
        else:
            data, annotations = subtract_sorted(data, annotations, rows)
    touched = np.unique(np.concatenate(touched)) if touched \
        else np.empty(0, dtype=np.uint32)
    return Trie(relation, key_order=key_order, optimizer=optimizer,
                presorted=(data, annotations),
                reuse=(old_trie, touched))
