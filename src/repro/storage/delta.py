"""Delta stores: sorted change sets and a mutation journal per relation.

EmptyHeaded's storage model (paper §3) is batch-loaded and immutable;
this module is the seam that makes it *versioned-mutable* without
giving up the sorted-array trie layout.  Each mutable relation owns a
:class:`DeltaStore` holding

* a **journal** of ``(version, kind, rows, annotations)`` entries —
  Δ+ inserts (``"+"``) and Δ− tombstones (``"-"``) in commit order.
  Consumers at an older version (cached tries, materialized views)
  replay ``changes_since(version)`` instead of rebuilding from scratch,
  the same semi-naive contract GPU datalog engines use for deltas.
* **pending counters** since the last merge.  When the pending change
  volume crosses :data:`MERGE_RATIO` of the base cardinality the store
  *merges*: the relation's effective arrays are already maintained
  eagerly (see ``Relation.apply_append``), so a merge just trims the
  journal and resets the counters — the next trie build is a fresh
  full build rather than a patch chain.

Row identity uses a big-endian byte view (:func:`row_view`): ``memcmp``
order on ``>u4`` rows equals numeric lexicographic order, so membership
and merge positioning are single vectorized ``searchsorted`` calls.
"""

import numpy as np

#: Pending-change volume (fraction of base cardinality) that triggers a
#: merge: journal trimmed, next trie build is full rather than patched.
MERGE_RATIO = 0.25

#: Hard cap on journal entries between merges; crossing it also merges
#: so an update-heavy workload cannot grow the journal unboundedly.
JOURNAL_LIMIT = 64


def row_view(data):
    """View ``(n, arity)`` uint32 rows as one opaque sortable key each.

    The columns are converted to big-endian so byte order equals
    numeric order; the rows are then viewed as a void dtype whose
    comparison is ``memcmp`` — giving lexicographic row order, the same
    order ``Relation.deduplicated`` and the trie build sort by.
    """
    if data.ndim != 2 or data.shape[1] == 0:
        raise ValueError("row_view needs (n, arity>=1) data")
    packed = np.ascontiguousarray(data, dtype=">u4")
    return packed.view(
        np.dtype((np.void, packed.dtype.itemsize * packed.shape[1]))
    ).ravel()


def rows_in(view, sorted_view):
    """Membership mask of ``view`` rows inside ``sorted_view`` rows.

    Both arguments are :func:`row_view` outputs; ``sorted_view`` must be
    ascending.  One ``searchsorted`` plus one compare — no Python loop.
    """
    if sorted_view.size == 0:
        return np.zeros(view.size, dtype=bool)
    slots = np.searchsorted(sorted_view, view)
    slots = np.minimum(slots, sorted_view.size - 1)
    return sorted_view[slots] == view


def sort_rows(data, annotations=None):
    """Lexsort rows (and aligned annotations) into canonical order."""
    if data.shape[0] <= 1:
        return data, annotations
    order = np.lexsort(tuple(data[:, c]
                             for c in range(data.shape[1] - 1, -1, -1)))
    data = data[order]
    if annotations is not None:
        annotations = annotations[order]
    return data, annotations


def merge_sorted(base, base_ann, plus, plus_ann):
    """Union-merge sorted ``plus`` rows into sorted ``base`` rows.

    Precondition: the row sets are disjoint (the caller classified the
    incoming batch into genuinely-new rows).  Annotations may be
    ``None`` on both sides or aligned arrays on both sides.
    """
    if plus.shape[0] == 0:
        return base, base_ann
    slots = np.searchsorted(row_view(base), row_view(plus)) \
        if base.shape[0] else np.zeros(plus.shape[0], dtype=np.intp)
    data = np.insert(base, slots, plus, axis=0)
    ann = None
    if base_ann is not None:
        ann = np.insert(base_ann, slots, plus_ann)
    return data, ann


def subtract_sorted(base, base_ann, minus):
    """Remove sorted ``minus`` rows from sorted ``base`` rows."""
    if minus.shape[0] == 0 or base.shape[0] == 0:
        return base, base_ann
    keep = ~rows_in(row_view(base), row_view(minus))
    ann = None if base_ann is None else base_ann[keep]
    return base[keep], ann


class JournalEntry:
    """One committed change batch: Δ+ (``"+"``) or Δ− (``"-"``) rows."""

    __slots__ = ("version", "kind", "data", "annotations")

    def __init__(self, version, kind, data, annotations=None):
        self.version = version
        self.kind = kind
        self.data = data
        self.annotations = annotations

    def __repr__(self):
        return "JournalEntry(v%d, %s, %d rows)" % (
            self.version, self.kind, self.data.shape[0])


class DeltaStore:
    """Per-relation journal of sorted Δ+ / Δ− change batches.

    ``base_rows`` snapshots the relation cardinality at the last merge;
    the pending counters measure change volume since then and drive the
    :data:`MERGE_RATIO` merge decision.
    """

    def __init__(self, base_rows):
        self.base_rows = int(base_rows)
        self.pending_plus = 0
        self.pending_minus = 0
        self.journal = []
        # Versions strictly below this have been trimmed out of the
        # journal; ``changes_since`` answers None for them (the caller
        # must fall back to a full rebuild / recompute).
        self.floor_version = 0
        self.merges = 0

    # -- recording ---------------------------------------------------------

    def record(self, version, kind, data, annotations=None):
        """Append one committed change batch (rows already sorted)."""
        entry = JournalEntry(version, kind, data, annotations)
        self.journal.append(entry)
        if kind == "+":
            self.pending_plus += data.shape[0]
        else:
            self.pending_minus += data.shape[0]
        return entry

    @property
    def pending(self):
        """Total change rows recorded since the last merge."""
        return self.pending_plus + self.pending_minus

    def should_merge(self):
        """Whether pending volume crossed the merge threshold."""
        if len(self.journal) > JOURNAL_LIMIT:
            return True
        floor = max(self.base_rows, 16)
        return self.pending > MERGE_RATIO * floor

    def merge(self, base_rows, version):
        """Absorb the pending deltas into the base.

        The relation maintains its effective arrays eagerly, so the
        merge is bookkeeping: trim the journal (consumers older than
        ``version`` now require a full rebuild) and reset counters.
        """
        self.base_rows = int(base_rows)
        self.pending_plus = 0
        self.pending_minus = 0
        self.journal = []
        self.floor_version = version
        self.merges += 1

    # -- replay ------------------------------------------------------------

    def changes_since(self, version):
        """Journal entries after ``version``, or ``None`` if trimmed.

        ``None`` means the consumer's version predates the journal floor
        (a merge happened); it must rebuild from the full relation.
        """
        if version < self.floor_version:
            return None
        return [e for e in self.journal if e.version > version]

    def pure_inserts_since(self, version):
        """``changes_since`` restricted to insert-only histories.

        Returns the Δ+ entry list, or ``None`` when the history was
        trimmed **or** contains tombstones / annotation rewrites —
        the precondition for semi-naive insert-only view deltas.
        """
        entries = self.changes_since(version)
        if entries is None:
            return None
        if any(e.kind != "+" for e in entries):
            return None
        return entries

    def __repr__(self):
        return "DeltaStore(base=%d, +%d/-%d pending, %d entries)" % (
            self.base_rows, self.pending_plus, self.pending_minus,
            len(self.journal))
