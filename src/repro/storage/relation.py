"""Relations: named, dictionary-encoded tables with optional annotations.

A :class:`Relation` is the logical object the query engine sees: an
``(n, arity)`` matrix of ``uint32`` keys plus an optional per-tuple
*annotation* (paper §2.2, "Trie Annotations") carrying a semiring value —
e.g. an edge weight, a PageRank contribution, or the implicit ``1`` that
COUNT aggregates.
"""

import numpy as np

from ..errors import SchemaError
from .dictionary import Dictionary


class Relation:
    """A dictionary-encoded relation with versioned in-place mutation.

    Historically immutable (the paper's batch-load model); relations now
    carry a monotonic ``version`` and support :meth:`apply_append` /
    :meth:`apply_delete`, which keep ``data``/``annotations`` always
    *effective* (sorted, deduplicated) while journalling the change
    batches in a :class:`~repro.storage.delta.DeltaStore` so cached
    tries and materialized views can catch up incrementally.

    Parameters
    ----------
    name:
        Relation name as referenced in queries.
    data:
        ``(n, arity)`` array-like of ``uint32`` keys.  Arity-0 (scalar)
        relations pass an empty ``(n, 0)`` array or ``None`` rows.
    annotations:
        Optional length-``n`` float array of semiring annotations.
    dictionaries:
        Per-column :class:`Dictionary` objects (may share one object when
        columns draw from the same domain, as graph edges do).
    """

    def __init__(self, name, data, annotations=None, dictionaries=None):
        self.name = name
        data = np.asarray(data, dtype=np.uint32)
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        if data.ndim != 2:
            raise SchemaError("relation data must be 2-dimensional")
        self.data = data
        self.arity = int(data.shape[1])
        if annotations is not None:
            annotations = np.asarray(annotations, dtype=np.float64)
            if annotations.shape != (data.shape[0],):
                raise SchemaError(
                    "annotations must align with tuples: got %s for %d rows"
                    % (annotations.shape, data.shape[0]))
        self.annotations = annotations
        if dictionaries is not None and len(dictionaries) != self.arity:
            raise SchemaError("need one dictionary per column")
        self.dictionaries = dictionaries
        # Monotonic mutation counter: bumped once per committed
        # append/delete batch.  Caches key on (identity, version).
        self.version = 0
        # Lazily-created DeltaStore journalling committed change batches.
        self.delta = None
        # True when data/annotations are known lexsorted + duplicate-free
        # (canonical order) — deduplicated() and the trie build skip
        # their sort passes.
        self._canonical = False

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_tuples(cls, name, tuples, annotations=None, dictionary=None,
                    arity=None):
        """Encode raw (arbitrary-typed) tuples through a shared dictionary.

        All columns share one dictionary, which is the right model for
        graphs where both columns are node ids.  ``arity`` pins the
        column count of an *empty* relation (otherwise unknowable from
        the tuples themselves); with tuples present it is validated.
        """
        tuples = list(tuples)
        if not tuples:
            width = 0 if arity is None else int(arity)
            dictionaries = [dictionary] * width \
                if dictionary is not None and width else None
            return cls(name, np.empty((0, width), dtype=np.uint32),
                       annotations=None, dictionaries=dictionaries)
        if arity is not None and len(tuples[0]) != arity:
            raise SchemaError("expected arity %d, got %d-tuples"
                              % (arity, len(tuples[0])))
        arity = len(tuples[0])
        shared = dictionary if dictionary is not None else Dictionary()
        data = np.empty((len(tuples), arity), dtype=np.uint32)
        for row, record in enumerate(tuples):
            if len(record) != arity:
                raise SchemaError("ragged tuple at row %d" % row)
            for col, value in enumerate(record):
                data[row, col] = shared.encode(value)
        return cls(name, data, annotations=annotations,
                   dictionaries=[shared] * arity)

    @classmethod
    def scalar(cls, name, value):
        """A 0-ary relation holding a single annotation (e.g. ``N`` in the
        paper's PageRank program)."""
        rel = cls(name, np.empty((1, 0), dtype=np.uint32),
                  annotations=np.asarray([value], dtype=np.float64))
        return rel

    # -- basic accessors ---------------------------------------------------

    @property
    def cardinality(self):
        """Number of tuples."""
        return int(self.data.shape[0])

    def column(self, index):
        """One column as a ``uint32`` array."""
        return self.data[:, index]

    def is_scalar(self):
        """True for 0-ary relations (a bare annotation value)."""
        return self.arity == 0

    @property
    def scalar_value(self):
        """The annotation of a 0-ary relation."""
        if not self.is_scalar() or self.annotations is None \
                or self.annotations.size != 1:
            raise SchemaError("%s is not a scalar relation" % self.name)
        return float(self.annotations[0])

    # -- transformations ---------------------------------------------------

    def deduplicated(self, combine="last"):
        """Return a copy with duplicate key-tuples removed.

        ``combine`` selects how annotations of duplicates merge:
        ``"last"``, ``"sum"``, ``"min"``, or ``"max"``.
        """
        if self.cardinality == 0 or self.arity == 0 or self._canonical:
            return self
        order = np.lexsort(tuple(self.data[:, c]
                                 for c in range(self.arity - 1, -1, -1)))
        data = self.data[order]
        distinct = np.ones(data.shape[0], dtype=bool)
        distinct[1:] = np.any(data[1:] != data[:-1], axis=1)
        if self.annotations is None:
            result = Relation(self.name, data[distinct], None,
                              self.dictionaries)
            result._canonical = True
            return result
        ann = self.annotations[order]
        group_ids = np.cumsum(distinct) - 1
        n_groups = int(group_ids[-1]) + 1
        if combine == "last":
            merged = np.empty(n_groups, dtype=np.float64)
            merged[group_ids] = ann  # later rows overwrite earlier ones
        elif combine == "sum":
            merged = np.zeros(n_groups, dtype=np.float64)
            np.add.at(merged, group_ids, ann)
        elif combine == "min":
            merged = np.full(n_groups, np.inf)
            np.minimum.at(merged, group_ids, ann)
        elif combine == "max":
            merged = np.full(n_groups, -np.inf)
            np.maximum.at(merged, group_ids, ann)
        else:
            raise ValueError("unknown combine mode %r" % (combine,))
        result = Relation(self.name, data[distinct], merged,
                          self.dictionaries)
        result._canonical = True
        return result

    # -- versioned mutation ------------------------------------------------

    def _ensure_delta(self):
        from .delta import DeltaStore
        if self.delta is None:
            self.delta = DeltaStore(self.cardinality)
        return self.delta

    def _canonicalize(self):
        """Rewrite ``data``/``annotations`` into canonical order in place.

        Canonical = lexsorted, duplicate-free — the order the trie build
        and the delta-store row algebra both assume.
        """
        if self._canonical:
            return
        dedup = self.deduplicated()
        if dedup is not self:
            self.data = dedup.data
            self.annotations = dedup.annotations
        self._canonical = True

    def apply_append(self, rows, annotations=None, combine="last"):
        """Append already-encoded rows in place; returns changed-row count.

        Keeps ``data``/``annotations`` effective (canonical order) and
        journals the change batch.  Re-appending an existing row is a
        no-op unless the relation is annotated and ``combine`` yields a
        different value — that is an *annotation rewrite*, journalled as
        a Δ−/Δ+ pair (it breaks the insert-only precondition semi-naive
        view deltas rely on).  Unannotated appends default missing
        ``annotations`` to 1.0 on annotated relations, mirroring
        ``TrieBuilder``.
        """
        from .delta import merge_sorted, row_view, rows_in
        if self.arity == 0:
            raise SchemaError("cannot append to scalar relation %s"
                              % self.name)
        rows = np.asarray(rows, dtype=np.uint32).reshape(-1, self.arity)
        if rows.shape[0] == 0:
            return 0
        annotated = self.annotations is not None
        if annotations is not None and not annotated:
            raise SchemaError("%s carries no annotation column" % self.name)
        ann = None
        if annotated:
            ann = np.ones(rows.shape[0], dtype=np.float64) \
                if annotations is None \
                else np.asarray(annotations, dtype=np.float64)
            if ann.shape != (rows.shape[0],):
                raise SchemaError(
                    "annotations must align with appended rows")
        batch = Relation(self.name, rows, ann, None).deduplicated(combine)
        rows, ann = batch.data, batch.annotations
        self._canonicalize()
        base_view = row_view(self.data) if self.cardinality \
            else np.empty(0, dtype=row_view(rows).dtype)
        batch_view = row_view(rows)
        present = rows_in(batch_view, base_view)
        new_rows = rows[~present]
        new_ann = None if ann is None else ann[~present]
        changed = int(new_rows.shape[0])
        rewrite_rows = rewrite_old = rewrite_new = None
        if annotated and present.any():
            slots = np.searchsorted(base_view, batch_view[present])
            old_vals = self.annotations[slots]
            incoming = ann[present]
            if combine == "last":
                new_vals = incoming
            elif combine == "sum":
                new_vals = old_vals + incoming
            elif combine == "min":
                new_vals = np.minimum(old_vals, incoming)
            elif combine == "max":
                new_vals = np.maximum(old_vals, incoming)
            else:
                raise ValueError("unknown combine mode %r" % (combine,))
            differs = new_vals != old_vals
            if differs.any():
                rewrite_rows = rows[present][differs]
                rewrite_old = old_vals[differs]
                rewrite_new = new_vals[differs]
                patched = self.annotations.copy()
                patched[slots[differs]] = rewrite_new
                self.annotations = patched
                changed += int(rewrite_rows.shape[0])
        if changed == 0:
            return 0
        self.version += 1
        delta = self._ensure_delta()
        if rewrite_rows is not None:
            delta.record(self.version, "-", rewrite_rows, rewrite_old)
            delta.record(self.version, "+", rewrite_rows, rewrite_new)
        if new_rows.shape[0]:
            self.data, self.annotations = merge_sorted(
                self.data, self.annotations, new_rows, new_ann)
            delta.record(self.version, "+", new_rows, new_ann)
        if delta.should_merge():
            delta.merge(self.cardinality, self.version)
        return changed

    def apply_delete(self, rows):
        """Delete already-encoded rows in place; returns removed count.

        Absent rows are ignored.  Removed rows (with their annotations)
        are journalled as a Δ− tombstone batch.
        """
        from .delta import row_view, rows_in
        if self.arity == 0:
            raise SchemaError("cannot delete from scalar relation %s"
                              % self.name)
        rows = np.asarray(rows, dtype=np.uint32).reshape(-1, self.arity)
        if rows.shape[0] == 0 or self.cardinality == 0:
            return 0
        self._canonicalize()
        batch = Relation(self.name, rows, None, None).deduplicated()
        base_view = row_view(self.data)
        present = rows_in(row_view(batch.data), base_view)
        hit = batch.data[present]
        if hit.shape[0] == 0:
            return 0
        slots = np.searchsorted(base_view, row_view(hit))
        old_ann = None if self.annotations is None \
            else self.annotations[slots].copy()
        keep = np.ones(self.cardinality, dtype=bool)
        keep[slots] = False
        self.data = self.data[keep]
        if self.annotations is not None:
            self.annotations = self.annotations[keep]
        self.version += 1
        delta = self._ensure_delta()
        delta.record(self.version, "-", hit, old_ann)
        if delta.should_merge():
            delta.merge(self.cardinality, self.version)
        return int(hit.shape[0])

    def project(self, columns):
        """Project onto the given column indexes (no deduplication)."""
        data = self.data[:, list(columns)]
        dicts = None
        if self.dictionaries is not None:
            dicts = [self.dictionaries[c] for c in columns]
        return Relation(self.name, data, self.annotations, dicts)

    def decoded_tuples(self):
        """Yield tuples with dictionary decoding applied (if available)."""
        if self.dictionaries is None:
            for row in self.data:
                yield tuple(int(v) for v in row)
            return
        for row in self.data:
            yield tuple(self.dictionaries[c].decode(v)
                        for c, v in enumerate(row))

    def __repr__(self):
        ann = "" if self.annotations is None else ", annotated"
        return "Relation(%s/%d, %d tuples%s)" % (
            self.name, self.arity, self.cardinality, ann)


def relation_columns(relation):
    """Attribute names attached to a relation.

    Intermediate relations the executor passes between GHD bags carry an
    ``attr_names`` tuple naming their columns after query variables;
    base relations fall back to positional names.
    """
    return list(getattr(relation, "attr_names",
                        [str(i) for i in range(relation.arity)]))
