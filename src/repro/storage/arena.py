"""Shared-memory arena for zero-copy trie sharing across forked workers.

The morsel executor (:mod:`repro.engine.parallel`) forks workers that
inherit the parent's tries.  Plain fork gives copy-on-write pages, but
CPython refcount updates dirty every page an object graph touches, so
large tries get physically copied anyway — once per worker, per query.
A :class:`SharedTrieArena` fixes this at the buffer level: the bulk
numpy arrays behind each trie (:meth:`repro.storage.trie.Trie.share_into`)
are re-placed into ``multiprocessing.shared_memory`` segments.  Children
inherit the mappings through fork and read them zero-copy; refcounting
only touches the small ndarray view objects, never the payload pages.

Lifecycle discipline:

* Only the **creating process** may close-and-unlink the segments; the
  owner pid is recorded and checked, so forked children that exit (or
  crash) never tear shared segments out from under siblings.
* Unlink runs via ``weakref.finalize`` (also registered ``atexit``), so
  normal completion, exceptions, and KeyboardInterrupt all reclaim
  ``/dev/shm`` entries.  ``SharedMemory.unlink`` additionally
  unregisters the segment from the resource tracker.
* Segment names carry a ``repro_arena_<pid>_`` prefix so tests can scan
  ``/dev/shm`` for stragglers.
"""

import os
import weakref

import numpy as np

try:
    from multiprocessing import shared_memory as _shm
except ImportError:                                  # pragma: no cover
    _shm = None

#: Minimum bytes per segment; the bump allocator sizes segments
#: geometrically from here so arenas need O(log total) segments.
MIN_SEGMENT_BYTES = 1 << 20

_ALIGN = 64


def shared_memory_available():
    """True when the platform offers POSIX shared memory."""
    return _shm is not None


class SharedTrieArena:
    """A bump allocator over ``multiprocessing.shared_memory`` segments.

    :meth:`place` copies an array into shared memory once and returns a
    read-only view backed by the segment; every forked worker then maps
    the same physical pages.  The arena is append-only — freeing happens
    wholesale via :meth:`close` (or automatically at interpreter exit in
    the owning process).

    Examples
    --------
    >>> arena = SharedTrieArena()
    >>> shared = arena.place(np.arange(4, dtype=np.uint32))
    >>> shared.tolist(), arena.nbytes >= shared.nbytes
    ([0, 1, 2, 3], True)
    >>> arena.close()
    """

    _seq = 0

    def __init__(self):
        if _shm is None:                             # pragma: no cover
            raise RuntimeError("shared memory is not available "
                               "on this platform")
        self._owner_pid = os.getpid()
        self._segments = []
        self._cursor = 0        # offset into the last segment
        self._placed = 0        # payload bytes handed out
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release, self._segments, self._owner_pid)

    # -- allocation ----------------------------------------------------------

    def place(self, array):
        """Copy ``array`` into the arena; return the shared-backed view.

        The view is marked read-only: shared tries are immutable by
        contract (workers map the same pages).
        """
        arr = np.ascontiguousarray(array)
        nbytes = arr.nbytes
        if nbytes == 0:
            return arr
        offset = self._reserve(nbytes)
        segment = self._segments[-1]
        view = np.frombuffer(segment.buf, dtype=arr.dtype,
                             count=arr.size, offset=offset)
        view = view.reshape(arr.shape)
        view[...] = arr
        view.flags.writeable = False
        self._placed += nbytes
        return view

    def _reserve(self, nbytes):
        if self._closed:
            raise RuntimeError("arena is closed")
        if os.getpid() != self._owner_pid:
            raise RuntimeError("only the owning process may grow the arena")
        aligned = -(-self._cursor // _ALIGN) * _ALIGN
        if not self._segments \
                or aligned + nbytes > self._segments[-1].size:
            self._grow(nbytes)
            aligned = 0
        self._cursor = aligned + nbytes
        return aligned

    def _grow(self, nbytes):
        want = max(nbytes, MIN_SEGMENT_BYTES,
                   self._segments[-1].size * 2 if self._segments else 0)
        SharedTrieArena._seq += 1
        name = "repro_arena_%d_%d" % (self._owner_pid,
                                      SharedTrieArena._seq)
        self._segments.append(_shm.SharedMemory(name=name, create=True,
                                                size=want))
        self._cursor = 0

    # -- accounting ----------------------------------------------------------

    @property
    def nbytes(self):
        """Payload bytes placed into the arena (for ``shm_bytes_mapped``)."""
        return self._placed

    @property
    def segment_names(self):
        """Names of the live shared-memory segments (test hook)."""
        return [segment.name for segment in self._segments]

    @property
    def closed(self):
        return self._closed

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Release the segments (unlink only in the owning process).

        Idempotent.  Arrays previously returned by :meth:`place` become
        invalid once the owner closes — callers must drop or rebuild
        the tries that were shared into this arena first.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _release(self._segments, self._owner_pid)
        self._segments = []

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self):
        return "SharedTrieArena(%d segments, %d bytes placed%s)" % (
            len(self._segments), self._placed,
            ", closed" if self._closed else "")


def _release(segments, owner_pid):
    """Close every segment; unlink from ``/dev/shm`` when owner."""
    owner = os.getpid() == owner_pid
    for segment in segments:
        try:
            segment.close()
        except BufferError:
            # Handed-out numpy views still alias the mapping; the pages
            # go back at process teardown.  Disarm the destructor so it
            # does not retry (and spam "Exception ignored") at GC time.
            segment.close = lambda: None
        except OSError:                              # pragma: no cover
            pass
        if owner:
            try:
                segment.unlink()
            except FileNotFoundError:                # pragma: no cover
                pass
