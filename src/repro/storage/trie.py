"""The trie storage structure (paper §2.2, Figure 2).

A relation with attribute order ``(a1, ..., ak)`` is stored as a k-level
trie: level ``i`` holds, for every distinct prefix ``(v1, ..., v_{i-1})``,
the *set* of ``a_i`` values extending that prefix.  Each set is stored in
a physical layout chosen by the layout optimizer, which is where the
engine's density-skew adaptivity lives.  Leaf sets optionally carry
per-value semiring annotations.
"""

import numpy as np

from ..errors import SchemaError
from ..sets.optimizer import SetOptimizer
from .relation import Relation


class FlatTrieView:
    """Columnar (CSR-style) view of a unary or binary trie.

    The fused block executor (:mod:`repro.engine.fused`) never walks
    trie nodes — it sweeps flat arrays.  This view exposes them:

    ``keys``
        Sorted distinct level-0 values (the root set).
    ``offsets`` / ``values``
        CSR child arrays for binary tries: the children of ``keys[i]``
        are ``values[offsets[i]:offsets[i + 1]]``.  ``None`` for unary.
    ``packed``
        ``(parent << 32) | child`` as sorted ``uint64``, one entry per
        stored pair, enabling batched membership probes of bound pairs
        with a single ``searchsorted``.  ``None`` for unary.
    ``ann``
        Leaf annotations aligned with ``keys`` (unary) or with
        ``values``/``packed`` rows (binary); ``None`` if unannotated.

    All arrays alias :attr:`Trie.sorted_data` buffers where possible,
    so the view costs one ``unique`` + one pack per trie and is cached
    by :meth:`Trie.flat`.
    """

    __slots__ = ("arity", "keys", "offsets", "values", "packed", "ann")

    def __init__(self, trie):
        if trie.arity not in (1, 2):
            raise SchemaError("flat views cover arity 1-2 tries only, "
                              "got arity %d" % trie.arity)
        self.arity = trie.arity
        data = trie.sorted_data
        self.ann = trie.sorted_annotations
        if trie.arity == 1:
            self.keys = np.ascontiguousarray(data[:, 0])
            self.offsets = None
            self.values = None
            self.packed = None
            return
        col0 = np.ascontiguousarray(data[:, 0])
        col1 = np.ascontiguousarray(data[:, 1])
        keys, starts = np.unique(col0, return_index=True)
        self.keys = keys
        self.offsets = np.append(starts, col0.size).astype(np.int64)
        self.values = col1
        self.packed = (col0.astype(np.uint64) << np.uint64(32)) \
            | col1.astype(np.uint64)


class TrieNode:
    """One trie node: a set of values plus per-value children/annotations.

    ``children`` is a list parallel to the set's sorted order (``None`` at
    the leaf level); ``annotations`` is a float array parallel to sorted
    order (``None`` when the relation is unannotated or the level is not
    the leaf).
    """

    __slots__ = ("set", "children", "annotations")

    def __init__(self, set_layout, children=None, annotations=None):
        self.set = set_layout
        self.children = children
        self.annotations = annotations

    def child(self, value):
        """Child node for ``value``; raises ``KeyError`` when absent."""
        return self.children[self.set.rank(value)]

    def child_at(self, index):
        """Child node by rank (position in sorted order)."""
        return self.children[index]

    def annotation(self, value):
        """Annotation for ``value`` at a leaf node."""
        if self.annotations is None:
            raise SchemaError("node carries no annotations")
        return float(self.annotations[self.set.rank(value)])

    @property
    def is_leaf(self):
        """True at the deepest trie level (no child pointers)."""
        return self.children is None


class Trie:
    """A relation materialized as a trie under one attribute order.

    Parameters
    ----------
    relation:
        The (deduplicated) :class:`~repro.storage.relation.Relation`.
    key_order:
        Tuple of column indexes giving the trie's level order, e.g.
        ``(1, 0)`` stores the transpose of a binary relation.
    optimizer:
        A :class:`~repro.sets.optimizer.SetOptimizer`; defaults to the
        paper's set-level optimizer.
    """

    def __init__(self, relation, key_order=None, optimizer=None,
                 presorted=None, reuse=None):
        if key_order is None:
            key_order = tuple(range(relation.arity))
        if sorted(key_order) != list(range(relation.arity)):
            raise SchemaError("key_order %r is not a permutation of the %d "
                              "columns" % (key_order, relation.arity))
        self.relation = relation
        self.key_order = tuple(key_order)
        self.optimizer = optimizer if optimizer is not None \
            else SetOptimizer("set")
        self.name = relation.name
        self.arity = relation.arity
        # Payload bytes this trie has placed into a SharedTrieArena
        # (share_into); the TrieCache charges this as arena waste when
        # the entry is retired, driving whole-arena compaction.
        self._shm_bytes = 0
        if relation.arity == 0:
            self.root = TrieNode(_empty_set(self.optimizer))
            self.scalar = (float(relation.annotations[0])
                           if relation.annotations is not None
                           and relation.annotations.size else None)
            self.sorted_data = np.empty((0, 0), dtype=np.uint32)
            self.sorted_annotations = None
            self._flat = None
            return
        self.scalar = None
        if presorted is not None:
            # Delta-patch path: the caller supplies tuple/annotation
            # arrays already permuted into key order and lexsorted
            # (see builder.patched_trie) — skip the dedup/sort passes.
            data, annotations = presorted
        else:
            deduped = relation.deduplicated()
            data = deduped.data[:, list(self.key_order)]
            annotations = deduped.annotations
            # Canonical relations under the identity order are already
            # lexsorted; anything else needs the sort pass.
            already_sorted = deduped._canonical \
                and self.key_order == tuple(range(self.arity))
            if data.shape[0] and not already_sorted:
                sort_keys = tuple(data[:, c]
                                  for c in range(self.arity - 1, -1, -1))
                order = np.lexsort(sort_keys)
                data = data[order]
                if annotations is not None:
                    annotations = annotations[order]
        # Kept for the engine's vectorized fast paths: the tuples in trie
        # (lexicographic) order, with annotations aligned.
        self.sorted_data = data
        self.sorted_annotations = annotations
        self._flat = None
        if reuse is not None and self.arity > 1 and data.shape[0]:
            self.root = self._patched_root(data, annotations, *reuse)
        else:
            self.root = self._build(data, annotations, 0)

    def _build(self, data, annotations, depth):
        column = data[:, depth]
        values, starts = np.unique(column, return_index=True)
        bounds = np.append(starts, column.shape[0])
        set_layout = self.optimizer.build(values)
        if depth == self.arity - 1:
            leaf_annotations = None
            if annotations is not None:
                leaf_annotations = annotations[starts]
            return TrieNode(set_layout, None, leaf_annotations)
        children = [
            self._build(data[bounds[i]:bounds[i + 1]],
                        None if annotations is None
                        else annotations[bounds[i]:bounds[i + 1]],
                        depth + 1)
            for i in range(values.size)
        ]
        return TrieNode(set_layout, children, None)

    def _patched_root(self, data, annotations, old_trie, touched):
        """Root build that reuses untouched subtrees of a stale trie.

        ``touched`` is the set of level-0 key values the delta journal
        mentioned (already permuted into this trie's key order): only
        those groups' subtrees changed, so every other level-0 value
        keeps the old trie's child node — the build pass becomes
        O(|Δ| log n) instead of O(distinct level-0 keys).  The root set
        itself is always rebuilt (membership may have changed)."""
        column = data[:, 0]
        values, starts = np.unique(column, return_index=True)
        bounds = np.append(starts, column.shape[0])
        set_layout = self.optimizer.build(values)
        old_root = old_trie.root
        touched = {int(v) for v in touched}
        children = []
        for index in range(values.size):
            value = int(values[index])
            if value not in touched and old_root.set.contains(value):
                children.append(old_root.child(value))
                continue
            children.append(self._build(
                data[bounds[index]:bounds[index + 1]],
                None if annotations is None
                else annotations[bounds[index]:bounds[index + 1]],
                1))
        return TrieNode(set_layout, children, None)

    def flat(self):
        """Cached :class:`FlatTrieView` for fused block execution."""
        if self._flat is None:
            self._flat = FlatTrieView(self)
        return self._flat

    # -- sharing -----------------------------------------------------------

    def share_into(self, arena):
        """Move the trie's bulk arrays into ``arena`` shared memory.

        Rebinds :attr:`sorted_data`, :attr:`sorted_annotations`, the flat
        view's arrays, and the root set's backing array (when it is a
        plain ``uint`` layout) to views over the arena's segments, so
        forked workers inherit them as zero-copy mappings instead of
        re-paying copy-on-write churn per process.  Node-level structures
        beyond the root keep their private copies — the hot paths (fused
        blocks, vectorized fast paths, level-0 candidate intersection)
        only touch the rebound arrays.  Returns ``self`` for chaining.
        """
        if self.arity == 0 or self.sorted_data.size == 0:
            return self
        placed_before = arena.nbytes
        self.sorted_data = arena.place(self.sorted_data)
        if self.sorted_annotations is not None:
            self.sorted_annotations = arena.place(self.sorted_annotations)
        shared_keys = None
        if self.arity in (1, 2):
            flat = self.flat()
            flat.keys = arena.place(flat.keys)
            if flat.ann is not None:
                flat.ann = self.sorted_annotations
            if flat.arity == 2:
                flat.offsets = arena.place(flat.offsets)
                flat.values = arena.place(flat.values)
                flat.packed = arena.place(flat.packed)
            shared_keys = flat.keys
        root_values = getattr(self.root.set, "_values", None)
        if root_values is not None and self.root.set.kind == "uint":
            self.root.set._values = shared_keys \
                if shared_keys is not None \
                and shared_keys.size == root_values.size \
                else arena.place(root_values)
        self._shm_bytes = int(arena.nbytes - placed_before)
        return self

    # -- traversal ---------------------------------------------------------

    def lookup(self, prefix):
        """Node reached by following ``prefix`` (a tuple of key values).

        ``lookup(())`` is the root.  Raises ``KeyError`` when the prefix
        is absent.
        """
        node = self.root
        for value in prefix:
            node = node.child(value)
        return node

    def contains(self, key):
        """Membership test for a full key tuple."""
        try:
            node = self.root
            for value in key[:-1]:
                node = node.child(value)
            return node.set.contains(key[-1]) if key else True
        except KeyError:
            return False

    def tuples(self):
        """Yield every stored key tuple in lexicographic (trie) order."""
        if self.arity == 0:
            return
        yield from self._walk(self.root, ())

    def _walk(self, node, prefix):
        if node.is_leaf:
            for value in node.set:
                yield prefix + (value,)
            return
        for index, value in enumerate(node.set):
            yield from self._walk(node.child_at(index), prefix + (value,))

    def annotated_tuples(self):
        """Yield ``(key_tuple, annotation)`` pairs in trie order."""
        if self.arity == 0:
            yield ((), self.scalar)
            return
        yield from self._walk_annotated(self.root, ())

    def _walk_annotated(self, node, prefix):
        if node.is_leaf:
            for index, value in enumerate(node.set):
                annotation = (None if node.annotations is None
                              else float(node.annotations[index]))
                yield (prefix + (value,), annotation)
            return
        for index, value in enumerate(node.set):
            yield from self._walk_annotated(node.child_at(index),
                                            prefix + (value,))

    # -- statistics ---------------------------------------------------------

    @property
    def cardinality(self):
        """Number of stored tuples (O(1): the build keeps the sorted
        tuple array)."""
        if self.arity == 0:
            return 1 if self.scalar is not None else 0
        return int(self.sorted_data.shape[0])

    def _count(self, node):
        """Recursive tuple count (kept for structural tests)."""
        if node.is_leaf:
            return node.set.cardinality
        return sum(self._count(child) for child in node.children)

    def level_sets(self, level):
        """All set layouts at the given level (0 = root), for stats."""
        nodes = [self.root]
        for _ in range(level):
            nodes = [child for node in nodes for child in node.children]
        return [node.set for node in nodes]

    def layout_histogram(self):
        """Layout-kind counts across every set in the trie."""
        histogram = {}
        stack = [self.root]
        while stack:
            node = stack.pop()
            histogram[node.set.kind] = histogram.get(node.set.kind, 0) + 1
            if node.children:
                stack.extend(node.children)
        return histogram

    @property
    def nbytes(self):
        """Approximate encoded size of every set in the trie."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += node.set.nbytes
            if node.annotations is not None:
                total += node.annotations.nbytes
            if node.children:
                stack.extend(node.children)
        return total

    def __repr__(self):
        return "Trie(%s, order=%s, %d tuples)" % (
            self.name, self.key_order, self.cardinality)


def _empty_set(optimizer):
    return optimizer.build(np.empty(0, dtype=np.uint32))


def trie_from_arrays(name, data, annotations=None, key_order=None,
                     optimizer=None):
    """Convenience: build a trie straight from a ``uint32`` array."""
    relation = Relation(name, data, annotations)
    return Trie(relation, key_order=key_order, optimizer=optimizer)
