"""Database persistence: save/load relations to a single ``.npz`` file.

The on-disk format is deliberately simple and pickle-free: every
relation contributes its key matrix, optional annotation vector, and —
when its columns are dictionary-encoded — the decoded value table as a
numpy array (strings or integers).  Dictionaries shared across columns
are deduplicated through an identity map so a reloaded graph's two edge
columns still share one dictionary object.
"""

import json

import numpy as np

from ..errors import SchemaError
from .dictionary import Dictionary
from .relation import Relation

#: Format marker stored inside every saved file.
FORMAT_VERSION = 1


def save_catalog(path, catalog, tuning=None):
    """Write ``{name: Relation}`` to ``path`` (``.npz``).

    ``tuning``, when given, is a
    :class:`~repro.tune.profile.TuningProfile` stored inside the
    manifest so a reloaded database starts with the calibrated
    constants (warm restarts start tuned).  Old readers ignore the
    extra manifest key; ``FORMAT_VERSION`` is unchanged.
    """
    arrays = {}
    manifest = {"version": FORMAT_VERSION, "relations": {}}
    if tuning is not None:
        manifest["tuning"] = tuning.to_dict()
    dictionary_ids = {}
    dictionary_count = 0
    for name, relation in catalog.items():
        record = {"arity": relation.arity,
                  "annotated": relation.annotations is not None,
                  "dictionaries": None}
        arrays["data:%s" % name] = relation.data
        if relation.annotations is not None:
            arrays["ann:%s" % name] = relation.annotations
        if relation.dictionaries is not None:
            column_ids = []
            for dictionary in relation.dictionaries:
                key = id(dictionary)
                if key not in dictionary_ids:
                    dictionary_ids[key] = dictionary_count
                    values = [dictionary.decode(i)
                              for i in range(len(dictionary))]
                    try:
                        arrays["dict:%d" % dictionary_count] = \
                            np.asarray(values)
                    except (ValueError, TypeError):
                        raise SchemaError(
                            "dictionary values for %r are not "
                            "array-encodable" % name)
                    dictionary_count += 1
                column_ids.append(dictionary_ids[key])
            record["dictionaries"] = column_ids
        manifest["relations"][name] = record
    arrays["manifest"] = np.asarray(json.dumps(manifest))
    np.savez_compressed(path, **arrays)


def load_catalog(path):
    """Read a saved catalog back into ``{name: Relation}``."""
    with np.load(path, allow_pickle=False) as archive:
        manifest = json.loads(str(archive["manifest"]))
        if manifest.get("version") != FORMAT_VERSION:
            raise SchemaError("unsupported save-file version %r"
                              % manifest.get("version"))
        dictionaries = {}

        def dictionary_for(index):
            if index not in dictionaries:
                table = archive["dict:%d" % index]
                d = Dictionary()
                for value in table.tolist():
                    d.encode(value)
                dictionaries[index] = d
            return dictionaries[index]

        catalog = {}
        for name, record in manifest["relations"].items():
            data = archive["data:%s" % name]
            annotations = archive["ann:%s" % name] \
                if record["annotated"] else None
            column_dictionaries = None
            if record["dictionaries"] is not None:
                column_dictionaries = [dictionary_for(i)
                                       for i in record["dictionaries"]]
            catalog[name] = Relation(name, data, annotations,
                                     column_dictionaries)
    return catalog


def load_tuning(path):
    """Tuning profile stored in a saved database, or ``None``.

    Tolerant by design: a file without the manifest key, written by an
    older version, or carrying a stale/garbled profile (profile-version
    mismatch) yields ``None`` — the engine then runs with the paper's
    default constants, bit-identical to an untuned session.
    """
    from ..tune.profile import TuningProfile
    try:
        with np.load(path, allow_pickle=False) as archive:
            manifest = json.loads(str(archive["manifest"]))
    except (OSError, ValueError, KeyError):
        return None
    record = manifest.get("tuning")
    if not isinstance(record, dict):
        return None
    return TuningProfile.from_dict(record)
