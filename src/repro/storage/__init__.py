"""Storage substrate: dictionary encoding, relations, tries, orderings."""

from .builder import TrieBuilder
from .dictionary import Dictionary, identity_dictionary
from .ordering import ORDERINGS, apply_order, order_nodes
from .persistence import load_catalog, save_catalog
from .relation import Relation
from .trie import Trie, TrieNode, trie_from_arrays

__all__ = [
    "TrieBuilder",
    "Dictionary", "identity_dictionary",
    "ORDERINGS", "apply_order", "order_nodes",
    "load_catalog", "save_catalog",
    "Relation",
    "Trie", "TrieNode", "trie_from_arrays",
]
