"""Frontend lowering: AST rules → logical IR (paper Appendix B.1).

``build_rule`` resolves every body atom against the catalog and applies
the two "within a node" normalizations the paper pushes ahead of any
join work:

* constant terms become equality selections, encoded through the
  column's dictionary (an absent constant makes the atom statically
  empty);
* repeated variables become column-equality filters, so every remaining
  atom ranges over distinct variables.

The result is a :class:`~repro.lir.ir.LogicalRule` ready for the pass
pipeline.  Validation errors (unknown relations, arity mismatches) are
raised here; head-variable and aggregate-arity problems are recorded on
the IR and enforced by the executor *after* its empty-guard
short-circuit, matching the engine's historical behavior.
"""

import numpy as np

from ..errors import ExecutionError, UnknownRelationError
from ..query.ast import Constant
from .ir import LogicalAtom, LogicalRule


def encode_constant(relation, position, value):
    """Encode a selection constant through the column's dictionary.

    Returns ``None`` when the value is absent (the selection is empty).
    """
    if relation.dictionaries is not None:
        dictionary = relation.dictionaries[position]
        try:
            return dictionary.lookup(value)
        except KeyError:
            return None
    if isinstance(value, (int, np.integer)) and 0 <= value < 2 ** 32:
        return int(value)
    return None


def normalize_atom(atom, catalog):
    """Resolve and reduce one atom to a :class:`LogicalAtom`.

    Constant terms become equality filters (the "pushing selections
    within a node" of Appendix B.1); repeated variables become
    column-equality filters.  The derived relation materializes lazily
    on first :attr:`~repro.lir.ir.LogicalAtom.relation` access.
    """
    relation = catalog.get(atom.name)
    if relation is None:
        raise UnknownRelationError(atom.name, catalog.keys())
    if len(atom.terms) != relation.arity:
        raise ExecutionError(
            "atom %s has %d terms but relation arity is %d"
            % (atom, len(atom.terms), relation.arity))
    filters = tuple((position, encode_constant(relation, position,
                                               constant.value))
                    for position, constant in atom.selections)
    keep_columns = []
    equalities = []
    seen_vars = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            continue
        if term.name in seen_vars:
            equalities.append((position, seen_vars[term.name]))
        else:
            seen_vars[term.name] = position
            keep_columns.append((term.name, position))
    variables = tuple(name for name, _ in keep_columns)
    keep = tuple(position for _, position in keep_columns)
    return LogicalAtom(atom.name, relation, variables, filters=filters,
                       keep=keep, equalities=tuple(equalities),
                       display=str(atom))


def build_rule(rule, catalog, trace=None):
    """Lower one AST rule to a :class:`~repro.lir.ir.LogicalRule`.

    Atoms without variables (fully-constant or fully-collapsed) become
    *guard atoms*: they contribute no join attributes, only an emptiness
    check.
    """
    normalized = [normalize_atom(atom, catalog) for atom in rule.body]
    atoms = [a for a in normalized if a.variables]
    guards = [a for a in normalized if not a.variables]
    logical = LogicalRule(rule, atoms, guards, trace=trace)
    if trace is not None:
        selections = sum(1 for a in normalized if a.is_selection)
        trace.record(
            "build", True,
            ["%d atom(s), %d guard(s), %d selection(s)"
             % (len(atoms), len(guards), selections),
             "body: %s" % ",".join(str(a) for a in normalized)])
    return logical
