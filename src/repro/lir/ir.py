"""Logical IR node types.

A :class:`LogicalRule` is the optimizer's working representation of one
rule: body atoms resolved against the catalog and reduced to distinct
variables (:class:`LogicalAtom`), the head and annotation expression
carried over from the AST, and — after the plan passes ran — the chosen
GHD, selection-pushdown duplicates, and global attribute order.

Derived relations (selection slices, pruned projections) materialize
*lazily*: a :class:`LogicalAtom` records the filter/projection spec and
only touches tuple data when its :attr:`~LogicalAtom.relation` is first
read.  That keeps the plan-cache hit path — which needs only the
canonical cache key — free of numpy work.
"""

import numpy as np

from ..query.ast import (Agg, BinOp, Num, Ref, expression_aggregates,
                         render_expression)
from ..storage.relation import Relation


class LogicalAtom:
    """A body atom reduced to distinct variables over a concrete relation.

    Attributes
    ----------
    name:
        Catalog name of the source relation (display identity).
    sig_name:
        Selection/projection-aware identity: two atoms share a
        ``sig_name`` exactly when their derived relations are guaranteed
        equal whenever their sources are.  Feeds bag-equivalence
        signatures and the canonical plan-cache key.
    source:
        The catalog :class:`~repro.storage.relation.Relation` the atom
        resolved to (identity anchor for cache guards).
    variables:
        Distinct variable names, in kept-column order.
    is_selection:
        Whether any term was a constant.
    annotated:
        Whether the (derived) relation carries an annotation column.
    """

    __slots__ = ("name", "sig_name", "source", "variables", "is_selection",
                 "annotated", "_filters", "_keep", "_equalities", "_dedup",
                 "_relation", "_display")

    def __init__(self, name, source, variables, filters=(), keep=None,
                 equalities=(), dedup=False, display=None):
        self.name = name
        self.source = source
        self.variables = tuple(variables)
        #: ``(position, encoded_value_or_None)`` constant filters;
        #: ``None`` marks a constant absent from the dictionary (the
        #: selection is statically empty).
        self._filters = tuple(filters)
        #: Source column index kept for each variable, parallel to
        #: ``variables``; ``None`` means the identity projection.
        self._keep = tuple(keep) if keep is not None else None
        #: ``(position, first_position)`` repeated-variable equalities.
        self._equalities = tuple(equalities)
        #: Whether the projection can introduce duplicate rows
        #: (attribute pruning sets this; plain normalization never
        #: drops a variable column, so it cannot).
        self._dedup = dedup
        self._relation = None
        self._display = display if display is not None else name
        self.is_selection = bool(self._filters)
        self.annotated = source.annotations is not None
        self.sig_name = self._signature_name()

    def _signature_name(self):
        if self._filters == () and self._equalities == () \
                and (self._keep is None
                     or list(self._keep) == list(range(self.source.arity))):
            return self.name
        parts = ["k%d" % p for p in (self._keep or ())]
        parts += ["%d=%s" % (p, "~" if v is None else v)
                  for p, v in self._filters]
        parts += ["%d==%d" % (a, b) for a, b in self._equalities]
        return "%s{%s}" % (self.name, ",".join(parts))

    @property
    def relation(self):
        """The concrete relation (derived lazily on first access)."""
        if self._relation is None:
            self._relation = self._derive()
        return self._relation

    def _derive(self):
        source = self.source
        if self.sig_name == self.name:
            return source
        data = source.data
        annotations = source.annotations
        mask = np.ones(data.shape[0], dtype=bool)
        for position, encoded in self._filters:
            if encoded is None:
                mask[:] = False
                break
            mask &= data[:, position] == encoded
        for position, first in self._equalities:
            mask &= data[:, position] == data[:, first]
        keep = self._keep if self._keep is not None \
            else tuple(range(source.arity))
        data = data[mask][:, list(keep)]
        annotations = annotations[mask] if annotations is not None else None
        derived = Relation("%s|%s" % (self.name, self._display), data,
                           annotations, None)
        if self._dedup and derived.arity:
            derived = derived.deduplicated()
        return derived

    def pruned(self, drop_vars):
        """Copy of this atom with ``drop_vars`` projected away.

        The projection can merge rows, so the derived relation is
        deduplicated; pruning is therefore only semantics-preserving
        for unannotated atoms in non-aggregating rules (the pass checks
        both).
        """
        keep = self._keep if self._keep is not None \
            else tuple(range(self.source.arity))
        kept_vars, kept_cols = [], []
        for variable, column in zip(self.variables, keep):
            if variable not in drop_vars:
                kept_vars.append(variable)
                kept_cols.append(column)
        return LogicalAtom(self.name, self.source, kept_vars,
                           filters=self._filters, keep=kept_cols,
                           equalities=self._equalities, dedup=True,
                           display=self._display)

    def __str__(self):
        return "%s(%s)" % (self.sig_name, ",".join(self.variables))


#: Backwards-compatible alias (the executor's old class name).
NormalizedAtom = LogicalAtom


class LogicalRule:
    """One rule in logical IR, flowing through the pass pipeline.

    Built by :func:`repro.lir.build.build_rule`; rewrite passes mutate
    ``atoms``/``assignment``; plan passes fill ``ghd``, ``duplicates``,
    ``selected_vars``, and ``global_order``.  ``trace`` accumulates a
    :class:`~repro.lir.passes.PassTrace` for EXPLAIN output.
    """

    __slots__ = ("rule", "head_name", "head_vars", "annotation",
                 "assignment", "atoms", "guard_atoms", "aggregate",
                 "unbound_head", "too_many_aggregates", "ghd", "duplicates",
                 "selected_vars", "global_order", "trace")

    def __init__(self, rule, atoms, guard_atoms, trace=None):
        self.rule = rule
        self.head_name = rule.head_name
        self.head_vars = tuple(rule.head_vars)
        self.annotation = rule.annotation
        self.assignment = rule.assignment
        self.atoms = list(atoms)
        self.guard_atoms = list(guard_atoms)
        aggregates = rule.aggregates
        self.too_many_aggregates = len(aggregates) > 1
        self.aggregate = aggregates[0] if aggregates else None
        body_vars = set()
        for atom in self.atoms:
            body_vars |= set(atom.variables)
        self.unbound_head = [v for v in self.head_vars
                             if v not in body_vars]
        self.ghd = None
        self.duplicates = frozenset()
        self.selected_vars = frozenset()
        self.global_order = ()
        self.trace = trace

    # -- derived facts -------------------------------------------------------

    @property
    def aggregate_mode(self):
        """Early-aggregation mode: annotated head with an aggregate."""
        return self.annotation is not None and self.aggregate is not None

    @property
    def has_empty_guard(self):
        """Whether any zero-variable atom is statically empty."""
        return any(g.relation.cardinality == 0 for g in self.guard_atoms)

    def sig_names(self):
        """``{atom index: sig_name}`` for bag-equivalence signatures."""
        return {i: atom.sig_name for i, atom in enumerate(self.atoms)}

    def with_head(self, head_vars, annotation=None, assignment=None):
        """Copy with a different head (plan passes reset).

        Used for the ``<<COUNT(v)>>`` pseudo-materialization, which
        extends the head with the counted variable; the atoms (and any
        rewrites already applied to them) carry over unchanged.
        """
        from ..query.ast import clone_rule
        pseudo = clone_rule(self.rule, head_vars=tuple(head_vars),
                            annotation=annotation, assignment=assignment)
        copy = LogicalRule(pseudo, self.atoms, self.guard_atoms,
                           trace=self.trace)
        return copy

    # -- canonical identity --------------------------------------------------

    def cache_key(self):
        """Alpha-renaming-invariant identity of the rewritten rule.

        Variables are replaced by dense indexes in order of first
        appearance (head first, then body atoms in order), so two
        queries that differ only in variable names share one plan-cache
        entry.  Everything that affects the compiled plan appears:
        head name, annotation declaration, canonicalized assignment
        expression, and each atom's selection-aware ``sig_name`` with
        canonical variable indexes.
        """
        rename = {}

        def index_of(variable):
            if variable not in rename:
                rename[variable] = len(rename)
            return rename[variable]

        head = tuple(index_of(v) for v in self.head_vars)
        body = tuple((atom.sig_name,
                      tuple(index_of(v) for v in atom.variables))
                     for atom in self.atoms)
        guards = tuple(sorted(g.sig_name for g in self.guard_atoms))
        annotation = (self.annotation.type,) \
            if self.annotation is not None else None
        assignment = _canonical_expression(self.assignment, rename) \
            if self.assignment is not None else None
        return (self.head_name, head, annotation, assignment, body, guards,
                bool(self.rule.recursive))

    def describe(self):
        """One-line rendering of the current (rewritten) body."""
        body = ",".join(str(a) for a in self.atoms + self.guard_atoms)
        head = ",".join(self.head_vars)
        tail = ""
        if self.assignment is not None and self.annotation is not None:
            tail = "; %s=%s" % (self.annotation.var,
                                render_expression(self.assignment))
        return "%s(%s) :- %s%s." % (self.head_name, head, body, tail)


def _canonical_expression(expr, rename):
    """Hashable, alpha-invariant form of an annotation expression."""
    if isinstance(expr, Num):
        return ("num", expr.value)
    if isinstance(expr, Ref):
        return ("ref", expr.name)  # scalar relation names are global
    if isinstance(expr, Agg):
        if expr.arg == "*":
            return ("agg", expr.op, "*")
        if expr.arg not in rename:
            rename[expr.arg] = len(rename)
        return ("agg", expr.op, rename[expr.arg])
    if isinstance(expr, BinOp):
        return ("bin", expr.op, _canonical_expression(expr.left, rename),
                _canonical_expression(expr.right, rename))
    return ("other", repr(expr))


def rule_aggregates(rule):
    """The :class:`Agg` nodes of a rule's assignment (re-export helper)."""
    if rule.assignment is None:
        return []
    return expression_aggregates(rule.assignment)
