"""The optimizer pass pipeline (paper §3, Appendix B.1).

Two phases of named, independently testable passes transform a
:class:`~repro.lir.ir.LogicalRule`:

**Rewrite passes** (run before the plan-cache key is computed, so their
output *is* what the cache keys on):

``constant_folding``
    Folds constant subexpressions of the annotation assignment
    (``0.3*0.5`` → ``0.15``).
``attribute_pruning``
    Projects away body attributes no head, aggregate, or other atom
    needs (existential-variable elimination).  Only applies to
    non-aggregating rules over unannotated atoms, where the projection
    is exactly ∃-quantification and cannot change the result set.

**Plan passes** (run on a plan-cache miss):

``ghd_choice``
    GHD search with *real catalog cardinalities* (never the symbolic
    :data:`~repro.ghd.decompose.DEFAULT_SIZE`), falling back to the
    single-bag plan when early aggregation cannot route the head
    attributes upward.
``selection_pushdown``
    Appendix B.1.1 step 2 — copies selection atoms into every bag
    covering their variables; the duplicated (node, edge) pairs are
    recorded so annotations are not multiplied twice.
``attribute_order``
    Fixes the global attribute order from the GHD (selections first).

Every pass records what it changed in a :class:`PassTrace`, which
EXPLAIN renders as the pass-by-pass logical plan.
"""

import warnings
from dataclasses import dataclass
from typing import Optional

from ..ghd.attribute_order import global_attribute_order
from ..ghd.decompose import decompose
from ..ghd.ghd import ghd_shape, replay_shape
from ..obs.trace import maybe_span
from ..query.ast import BinOp, Num, render_expression
from ..query.hypergraph import Hypergraph
from .build import build_rule

#: Process-wide "warned already" latch for the symbolic-size fallback.
_default_size_warned = [False]


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------

class PassRecord:
    """One pass's contribution to the logical-plan explanation."""

    __slots__ = ("name", "changed", "details")

    def __init__(self, name, changed, details=()):
        self.name = name
        self.changed = changed
        self.details = list(details)


class PassTrace:
    """Ordered record of what each optimizer pass did to one rule."""

    def __init__(self, rule_text=""):
        self.rule_text = rule_text
        self.records = []

    def record(self, name, changed, details=()):
        self.records.append(PassRecord(name, changed, details))

    def describe(self):
        """Human-readable pass-by-pass logical plan."""
        lines = ["logical plan (pass pipeline):"]
        if self.rule_text:
            lines.append("  rule: %s" % self.rule_text)
        for record in self.records:
            status = "" if record.changed else "  (no change)"
            lines.append("  %s:%s" % (record.name, status))
            lines.extend("    %s" % detail for detail in record.details)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# options
# ---------------------------------------------------------------------------

@dataclass
class OptimizerOptions:
    """The engine switches the optimizer consults.

    A plain value object so :mod:`repro.lir` never has to import
    :mod:`repro.engine` (the layering check forbids it); the executor
    builds one from its :class:`~repro.engine.config.EngineConfig`.
    """

    push_selections: bool = True
    use_ghd: bool = True
    fold_constants: bool = True
    prune_attributes: bool = True
    tracer: Optional[object] = None
    metrics: Optional[object] = None
    #: ``{atom name: cardinality}`` overrides for GHD costing — user
    #: hints and the adaptive executor's mispredict feedback.  The
    #: catalog's cardinalities are used for atoms not listed.
    card_overrides: Optional[dict] = None
    #: Caller-owned dict the GHD choice pass memoizes decompositions in,
    #: keyed on rule structure plus log2 *cardinality bands* — repeated
    #: planning of the same rule shape skips the LP-heavy search while
    #: relation sizes drift within a band.  ``None`` disables the memo.
    ghd_memo: Optional[dict] = None

    @classmethod
    def from_config(cls, config):
        """Duck-typed projection of an engine config (or anything with
        the same attribute names)."""
        return cls(
            push_selections=getattr(config, "push_selections", True),
            use_ghd=getattr(config, "use_ghd", True),
            fold_constants=getattr(config, "fold_constants", True),
            prune_attributes=getattr(config, "prune_attributes", True),
            tracer=getattr(config, "tracer", None),
            metrics=getattr(config, "metrics", None))


# ---------------------------------------------------------------------------
# rewrite passes
# ---------------------------------------------------------------------------

class ConstantFoldingPass:
    """Fold constant subexpressions in the annotation assignment."""

    name = "constant_folding"

    def enabled(self, options):
        return options.fold_constants

    def run(self, logical, options):
        del options
        if logical.assignment is None:
            return False, ["no assignment expression"]
        folded, n_folds = _fold(logical.assignment)
        if n_folds:
            logical.assignment = folded
            return True, ["%d fold(s): %s" % (n_folds,
                                              render_expression(folded))]
        return False, []


def _fold(expr):
    """Bottom-up constant folding; division by zero is left in place."""
    if not isinstance(expr, BinOp):
        return expr, 0
    left, n_left = _fold(expr.left)
    right, n_right = _fold(expr.right)
    folds = n_left + n_right
    if isinstance(left, Num) and isinstance(right, Num):
        if expr.op == "+":
            return Num(left.value + right.value), folds + 1
        if expr.op == "-":
            return Num(left.value - right.value), folds + 1
        if expr.op == "*":
            return Num(left.value * right.value), folds + 1
        if expr.op == "/" and right.value != 0:
            return Num(left.value / right.value), folds + 1
    if folds:
        return BinOp(expr.op, left, right), folds
    return expr, 0


class AttributePruningPass:
    """Project away attributes no head or annotation needs.

    A variable occurring in exactly one atom, absent from the head and
    from every aggregate argument, is purely existential: projecting it
    out (with deduplication) before GHD search shrinks tries and can
    lower the decomposition's width.  Restricted to rules without
    aggregates (duplicates feed SUM/COUNT) over unannotated atoms
    (projection would need an annotation-combine policy).
    """

    name = "attribute_pruning"

    def enabled(self, options):
        return options.prune_attributes

    def run(self, logical, options):
        del options
        if logical.aggregate is not None:
            return False, ["skipped: rule aggregates"]
        if logical.annotation is not None and logical.assignment is None:
            return False, ["skipped: head keeps body annotations"]
        occurrences = {}
        for atom in logical.atoms:
            for variable in atom.variables:
                occurrences[variable] = occurrences.get(variable, 0) + 1
        head = set(logical.head_vars)
        details = []
        new_atoms = []
        new_guards = []
        changed = False
        for atom in logical.atoms:
            droppable = {v for v in atom.variables
                         if occurrences[v] == 1 and v not in head}
            if not droppable or atom.annotated:
                new_atoms.append(atom)
                continue
            pruned = atom.pruned(droppable)
            changed = True
            details.append("pruned %s from %s (arity %d -> %d)"
                           % (",".join(sorted(droppable)), atom.name,
                              len(atom.variables), len(pruned.variables)))
            if pruned.variables:
                new_atoms.append(pruned)
            else:
                new_guards.append(pruned)
                details.append("%s became a guard atom" % atom.name)
        if changed and not new_atoms:
            # A body of only guard atoms has no join to run; keep the
            # original atoms rather than hand the planner an empty
            # hypergraph.
            return False, ["skipped: pruning would empty the body"]
        if changed:
            logical.atoms = new_atoms
            logical.guard_atoms.extend(new_guards)
            body_vars = set()
            for atom in new_atoms:
                body_vars |= set(atom.variables)
            logical.unbound_head = [v for v in logical.head_vars
                                    if v not in body_vars]
        return changed, details


# ---------------------------------------------------------------------------
# plan passes
# ---------------------------------------------------------------------------

def aggregate_flow_ok(ghd, head_vars):
    """Early aggregation needs every bag's head attributes visible to
    its parent (head values cannot be re-derived going up)."""
    head = frozenset(head_vars)
    parents = ghd.parent_map()
    for node in ghd.nodes_preorder():
        parent = parents[node]
        if parent is None:
            continue
        if not (head & node.chi_set) <= parent.chi_set:
            return False
    return True


class GHDChoicePass:
    """Choose the GHD, feeding real catalog cardinalities into the
    search (the symbolic :data:`~repro.ghd.decompose.DEFAULT_SIZE`
    fallback triggers a metrics counter and a one-time warning)."""

    name = "ghd_choice"

    def enabled(self, options):
        del options
        return True

    def run(self, logical, options):
        atoms = logical.atoms
        with maybe_span(options.tracer, "ghd_search", "compile",
                        atoms=len(atoms)):
            hypergraph = Hypergraph(atoms)
            overrides = options.card_overrides or {}
            sizes = {i: int(overrides.get(atoms[i].name,
                                          atoms[i].relation.cardinality))
                     for i in range(len(atoms))}
            selected_vars = set()
            selection_edges = set()
            for index, atom in enumerate(atoms):
                if atom.is_selection:
                    selection_edges.add(index)
                    selected_vars |= set(atom.variables)
            logical.selected_vars = frozenset(selected_vars)

            memo_key = None
            if options.ghd_memo is not None:
                memo_key = _ghd_memo_key(logical, atoms, sizes,
                                         selection_edges, options)
                shape = options.ghd_memo.get(memo_key)
                if shape is not None:
                    ghd = replay_shape(shape, hypergraph)
                    logical.ghd = ghd
                    return True, [
                        "width %.2f, %d bag(s)" % (ghd.width(),
                                                   ghd.n_nodes),
                        "reused decomposition (cardinality-band memo)"]

            def fallback(count):
                _report_default_sizes(count, options.metrics)

            ghd = decompose(
                hypergraph, sizes=sizes, selected_vars=selected_vars,
                selection_edges=selection_edges,
                prefer_deep_selections=options.push_selections,
                use_ghd=options.use_ghd, size_fallback=fallback)
            details = ["width %.2f, %d bag(s)" % (ghd.width(),
                                                  ghd.n_nodes)]
            if logical.aggregate_mode \
                    and not aggregate_flow_ok(ghd, logical.head_vars):
                # Head attributes span bags in a way early aggregation
                # cannot express; fall back to the (always correct)
                # single-node plan.
                ghd = decompose(hypergraph, sizes=sizes, use_ghd=False,
                                size_fallback=fallback)
                details.append("aggregate flow fallback: single-bag plan")
            logical.ghd = ghd
            if memo_key is not None:
                # Shape captured before selection pushdown mutates the
                # live tree; replayed hits get fresh nodes.
                options.ghd_memo[memo_key] = ghd_shape(ghd)
                while len(options.ghd_memo) > _GHD_MEMO_LIMIT:
                    options.ghd_memo.pop(next(iter(options.ghd_memo)))
            if sizes:
                details.append("cardinalities: %s" % ", ".join(
                    "%s=%d" % (atoms[i].name, sizes[i])
                    for i in sorted(sizes)))
        return True, details


#: Entries kept in a caller's banded plan memo (FIFO eviction).
_GHD_MEMO_LIMIT = 512


def _ghd_memo_key(logical, atoms, sizes, selection_edges, options):
    """Memo identity of one GHD choice: the rule's join structure, the
    log2 band of every input cardinality, and everything else the
    search consults.  Exact cardinality overrides (hints, adaptive
    mispredict feedback) join the key verbatim, so new feedback always
    re-plans; only organic size drift within a band reuses a plan."""
    overrides = options.card_overrides or {}
    return (
        tuple((atom.name, tuple(atom.variables), atom.is_selection)
              for atom in atoms),
        tuple(int(sizes[i]).bit_length() for i in range(len(atoms))),
        frozenset(selection_edges),
        tuple(logical.head_vars), logical.aggregate_mode,
        options.push_selections, options.use_ghd,
        tuple(sorted(overrides.items())))


def _report_default_sizes(count, metrics):
    """Count (and warn once about) symbolic-size GHD costing."""
    if metrics is not None:
        metrics.inc("ghd.default_size_uses", count)
    if not _default_size_warned[0]:
        _default_size_warned[0] = True
        warnings.warn(
            "GHD search costed %d relation(s) at the symbolic "
            "DEFAULT_SIZE; pass real cardinalities via decompose(sizes=...)"
            % count, RuntimeWarning, stacklevel=3)


class SelectionPushdownPass:
    """Appendix B.1.1 step 2: copy selection atoms into every bag
    covering their variables.  Records the duplicated (node, edge)
    pairs so their annotations are not multiplied twice."""

    name = "selection_pushdown"

    def enabled(self, options):
        return options.push_selections

    def run(self, logical, options):
        del options
        selection_edges = {i for i, atom in enumerate(logical.atoms)
                           if atom.is_selection}
        if not selection_edges:
            logical.duplicates = frozenset()
            return False, ["no selections"]
        duplicates = set()
        by_index = {e.index: e for e in logical.ghd.hypergraph.edges}
        for node in logical.ghd.nodes_preorder():
            own = {e.index for e in node.edges}
            for index in selection_edges:
                edge = by_index[index]
                if index not in own and edge.varset <= node.chi_set:
                    node.edges.append(edge)
                    duplicates.add((id(node), index))
        logical.duplicates = frozenset(duplicates)
        if duplicates:
            return True, ["copied %d selection atom(s) into other bags"
                          % len(duplicates)]
        return False, ["selections already cover their bags"]


class AttributeOrderPass:
    """Fix the global attribute order from the chosen GHD."""

    name = "attribute_order"

    def enabled(self, options):
        del options
        return True

    def run(self, logical, options):
        with maybe_span(options.tracer, "attribute_order", "compile"):
            logical.global_order = global_attribute_order(
                logical.ghd, logical.selected_vars, logical.head_vars)
        return True, ["global order: (%s)" % ",".join(logical.global_order)]


# ---------------------------------------------------------------------------
# pipeline drivers
# ---------------------------------------------------------------------------

REWRITE_PASSES = (ConstantFoldingPass(), AttributePruningPass())
PLAN_PASSES = (GHDChoicePass(), SelectionPushdownPass(),
               AttributeOrderPass())


def _run_phase(passes, logical, options):
    for pipeline_pass in passes:
        if not pipeline_pass.enabled(options):
            if logical.trace is not None:
                logical.trace.record(pipeline_pass.name, False,
                                     ["disabled by configuration"])
            continue
        changed, details = pipeline_pass.run(logical, options)
        if logical.trace is not None:
            logical.trace.record(pipeline_pass.name, changed, details)
    return logical


def optimize_rule(rule, catalog, options=None):
    """Frontend + rewrite phase: AST rule → rewritten logical IR.

    The returned rule's :meth:`~repro.lir.ir.LogicalRule.cache_key` is
    the canonical plan-cache identity; run :func:`plan_rule` afterwards
    (on a cache miss) to choose the GHD and attribute order.
    """
    options = options if options is not None else OptimizerOptions()
    trace = PassTrace(rule_text=str(rule))
    with maybe_span(options.tracer, "logical_rewrite", "compile"):
        logical = build_rule(rule, catalog, trace=trace)
        _run_phase(REWRITE_PASSES, logical, options)
    return logical


def plan_rule(logical, options=None):
    """Plan phase: choose GHD, push selections, fix attribute order."""
    options = options if options is not None else OptimizerOptions()
    return _run_phase(PLAN_PASSES, logical, options)
