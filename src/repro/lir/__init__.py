"""Logical IR and pass-based query optimizer (paper §3, Appendix B.1).

EmptyHeaded's compiler is a *sequence of plan rewrites* — attribute
elimination, selection pushdown, early aggregation — applied before
GHD-based code generation.  This package makes that sequence explicit:

frontend (``repro.query``)
    text → AST.
``repro.lir.build``
    AST → :class:`~repro.lir.ir.LogicalRule`: atoms are resolved against
    the catalog, constants become selections, repeated variables become
    equality filters.
``repro.lir.passes``
    Named rewrite passes (constant folding, attribute pruning) followed
    by plan passes (GHD choice, selection pushdown, global attribute
    order), each recorded in a :class:`~repro.lir.passes.PassTrace`.
physical planning + execution (``repro.engine``)
    The optimized rule is lowered to per-bag physical plans and run by
    the interpreted or compiled engine.

Layering invariant (enforced by ``tools/check_layering.py``): this
package never imports from :mod:`repro.engine`, and the query frontend
never imports from this package.
"""

from .build import build_rule, encode_constant, normalize_atom
from .ir import LogicalAtom, LogicalRule, NormalizedAtom
from .passes import (AttributeOrderPass, AttributePruningPass,
                     ConstantFoldingPass, GHDChoicePass, OptimizerOptions,
                     PassTrace, SelectionPushdownPass, optimize_rule,
                     plan_rule, PLAN_PASSES, REWRITE_PASSES)

__all__ = [
    "LogicalAtom", "LogicalRule", "NormalizedAtom",
    "build_rule", "encode_constant", "normalize_atom",
    "OptimizerOptions", "PassTrace",
    "ConstantFoldingPass", "AttributePruningPass", "GHDChoicePass",
    "SelectionPushdownPass", "AttributeOrderPass",
    "optimize_rule", "plan_rule", "REWRITE_PASSES", "PLAN_PASSES",
]
