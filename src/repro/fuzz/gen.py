"""Seeded random generator of schemas, data, and datalog programs.

Every case is fully determined by one integer seed.  The generator
deliberately produces the *whole* language surface the engine claims to
support — multi-way joins, self-joins, repeated variables, constants
(in- and out-of-dictionary, including fully-constant guard atoms),
projections, all four semiring aggregates with expression arithmetic,
scalar references across rules, multi-rule programs chaining derived
heads, and all three recursion modes (union fixpoint, fixed-iteration
replace, monotone seminaive).

Numeric hygiene keeps differential comparison exact: annotations are
small positive integers and expression arithmetic divides only by
powers of two, so every engine path computes the same float64 values
bit-for-bit (modulo the commutative folds, which are exact on these
integers).
"""

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..query.ast import (Agg, Atom, BinOp, Constant, HeadAnnotation, Num,
                         Ref, Rule, Variable)

#: Variable name pool (the head annotation variable ``w`` is excluded).
VARIABLE_POOL = ("a", "b", "c", "d", "e", "f")

#: Aggregate operators the generator emits.
AGG_OPS = ("SUM", "MIN", "MAX", "COUNT")


@dataclass
class FuzzRelation:
    """One generated base relation: deduplicated integer tuples and an
    optional parallel annotation column (integer-valued floats)."""

    name: str
    arity: int
    tuples: List[tuple]
    annotations: Optional[List[float]] = None

    def copy(self):
        return FuzzRelation(self.name, self.arity, list(self.tuples),
                            list(self.annotations)
                            if self.annotations is not None else None)


@dataclass
class FuzzCase:
    """One generated differential test case."""

    seed: int
    relations: List[FuzzRelation]
    rules: List[Rule]
    description: str = ""
    #: Filled by the shrinker with the reduction trail.
    history: List[str] = field(default_factory=list)

    @property
    def program_text(self):
        return "\n".join(str(rule) for rule in self.rules)

    @property
    def head_names(self):
        return [rule.head_name for rule in self.rules]

    def copy(self):
        return FuzzCase(self.seed, [r.copy() for r in self.relations],
                        list(self.rules), self.description,
                        list(self.history))

    def size(self):
        """Lexicographic shrink cost: rules, atoms, tuples, domain."""
        atoms = sum(len(rule.body) for rule in self.rules)
        tuples = sum(len(r.tuples) for r in self.relations)
        values = {v for r in self.relations for t in r.tuples for v in t}
        return (len(self.rules), atoms, tuples, len(values))

    def __str__(self):
        lines = ["-- seed %d%s" % (self.seed,
                                   " (%s)" % self.description
                                   if self.description else "")]
        for relation in self.relations:
            lines.append("-- %s/%d = %s%s" % (
                relation.name, relation.arity, relation.tuples,
                " ann=%s" % relation.annotations
                if relation.annotations is not None else ""))
        lines.append(self.program_text)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


def generate_case(seed, max_relations=3, max_rules=3, max_atoms=4,
                  max_tuples=18, max_domain=7):
    """Generate one :class:`FuzzCase` deterministically from ``seed``."""
    rng = random.Random(seed)
    domain = rng.randint(2, max_domain)
    relations = _generate_relations(rng, domain, max_relations,
                                    max_tuples)
    rules = _generate_rules(rng, relations, domain, max_rules, max_atoms)
    return FuzzCase(seed, relations, rules)


def _generate_relations(rng, domain, max_relations, max_tuples):
    relations = []
    for index in range(rng.randint(1, max_relations)):
        arity = rng.choices((1, 2, 3), weights=(2, 6, 2))[0]
        space = domain ** arity
        # Occasionally empty: the engine's empty-trie / empty-guard
        # paths are exactly the kind of corner differential testing is
        # for.
        if rng.random() < 0.06:
            count = 0
        else:
            count = rng.randint(1, min(max_tuples, space))
        seen = set()
        for _ in range(count * 3):
            if len(seen) >= count:
                break
            seen.add(tuple(rng.randrange(domain) for _ in range(arity)))
        tuples = sorted(seen)
        annotations = None
        if tuples and rng.random() < 0.4:
            annotations = [float(rng.randint(1, 9)) for _ in tuples]
        relations.append(FuzzRelation("R%d" % index, arity, tuples,
                                      annotations))
    return relations


def _generate_rules(rng, relations, domain, max_rules, max_atoms,
                    sources=None, prefix="H"):
    rules = []
    #: name -> (arity, annotated) for every relation an atom may use.
    if sources is None:
        sources = {r.name: (r.arity, r.annotations is not None)
                   for r in relations}
    else:
        sources = dict(sources)
    scalar_heads = []  # 0-ary aggregate heads usable as Refs
    head_index = 0
    budget = rng.randint(1, max_rules)
    while len(rules) < budget:
        head_name = "%s%d" % (prefix, head_index)
        head_index += 1
        remaining = budget - len(rules)
        if remaining >= 2 and rng.random() < 0.3:
            pair = _generate_recursive_pair(rng, sources, domain,
                                            head_name, max_atoms)
            if pair is not None:
                base, rec, annotated = pair
                rules.extend((base, rec))
                sources[head_name] = (len(base.head_vars), annotated)
                continue
        rule = _generate_rule(rng, sources, scalar_heads, domain,
                              head_name, max_atoms)
        rules.append(rule)
        if rule.annotation is not None and not rule.head_vars:
            scalar_heads.append(head_name)
        sources[head_name] = (len(rule.head_vars),
                              rule.annotation is not None
                              and bool(rule.head_vars))
    return rules


def _generate_body(rng, sources, domain, max_atoms, n_atoms=None):
    """Random conjunctive body over the available sources.

    Variable reuse is biased high so most bodies actually join;
    constants appear with moderate probability, occasionally
    out-of-domain (an always-empty selection) and occasionally filling
    every position of an atom (a guard).
    """
    # 0-ary heads participate through ``Ref`` in expressions, not as
    # body atoms.
    names = [n for n, (arity, _) in sources.items() if arity >= 1]
    if n_atoms is None:
        n_atoms = rng.randint(1, max_atoms)
    atoms = []
    used_vars = []
    for _ in range(n_atoms):
        name = rng.choice(names)
        arity = sources[name][0]
        terms = []
        for _ in range(arity):
            roll = rng.random()
            if roll < 0.12:
                if rng.random() < 0.2:
                    value = domain + 3  # absent from every dictionary
                else:
                    value = rng.randrange(domain)
                terms.append(Constant(value))
            elif used_vars and roll < 0.75:
                terms.append(Variable(rng.choice(used_vars)))
            else:
                fresh = [v for v in VARIABLE_POOL if v not in used_vars]
                var = rng.choice(fresh) if fresh \
                    else rng.choice(VARIABLE_POOL)
                used_vars.append(var) if var not in used_vars else None
                terms.append(Variable(var))
        atoms.append(Atom(name, tuple(terms)))
    body_vars = []
    for atom in atoms:
        for var in atom.variables:
            if var not in body_vars:
                body_vars.append(var)
    return atoms, body_vars


def _generate_rule(rng, sources, scalar_heads, domain, head_name,
                   max_atoms):
    atoms, body_vars = _generate_body(rng, sources, domain, max_atoms)
    while not body_vars:
        # A body of pure guards supports no head; reroll.
        atoms, body_vars = _generate_body(rng, sources, domain, max_atoms)
    if rng.random() < 0.5:
        # Materialization (set semantics), optionally with a constant
        # annotation column.
        k = rng.randint(1, min(3, len(body_vars)))
        head_vars = tuple(rng.sample(body_vars, k))
        annotation = None
        assignment = None
        if rng.random() < 0.15:
            annotation = HeadAnnotation("w", "float")
            assignment = _constant_expression(rng, scalar_heads)
        return Rule(head_name=head_name, head_vars=head_vars,
                    annotation=annotation, recursive=False,
                    iterations=None, body=tuple(atoms),
                    assignment=assignment)
    # Aggregation.
    k = rng.randint(0, min(2, len(body_vars)))
    head_vars = tuple(rng.sample(body_vars, k))
    op = rng.choice(AGG_OPS)
    non_head = [v for v in body_vars if v not in head_vars]
    if op == "COUNT":
        arg = rng.choice(non_head) if non_head and rng.random() < 0.6 \
            else "*"
    else:
        arg = rng.choice(non_head) if non_head else rng.choice(body_vars)
    assignment = _wrap_aggregate(rng, Agg(op, arg), scalar_heads)
    return Rule(head_name=head_name, head_vars=head_vars,
                annotation=HeadAnnotation("w", "float"), recursive=False,
                iterations=None, body=tuple(atoms),
                assignment=assignment)


def _constant_expression(rng, scalar_heads):
    """Aggregate-free assignment for annotated materializations."""
    expr = Num(float(rng.randint(1, 9)))
    if scalar_heads and rng.random() < 0.4:
        expr = BinOp("*", expr, Ref(rng.choice(scalar_heads)))
    return expr


def _wrap_aggregate(rng, agg, scalar_heads):
    """Optionally wrap an aggregate in exact float arithmetic."""
    expr = agg
    roll = rng.random()
    if roll < 0.25:
        expr = BinOp("+", expr, Num(float(rng.randint(1, 4))))
    elif roll < 0.4:
        expr = BinOp("*", Num(float(rng.randint(2, 3))), expr)
    elif roll < 0.5:
        expr = BinOp("/", expr, Num(float(rng.choice((2, 4)))))
    elif roll < 0.58 and scalar_heads:
        expr = BinOp("+", expr, Ref(rng.choice(scalar_heads)))
    return expr


def _generate_recursive_pair(rng, sources, domain, head_name, max_atoms):
    """Base rule + recursive rule, one of three recursion modes.

    Returns ``(base, recursive, head_annotated)`` or ``None`` when the
    available sources cannot seed a well-formed base case.
    """
    binary = [(name, info) for name, info in sources.items()
              if info[0] >= 1]
    if not binary:
        return None
    mode = rng.choice(("union", "replace", "monotone"))
    base_atoms, base_vars = _generate_body(rng, sources, domain,
                                           max_atoms=2)
    if not base_vars:
        return None
    head_arity = rng.randint(1, min(2, len(base_vars)))
    head_vars = tuple(rng.sample(base_vars, head_arity))
    if mode == "union":
        base = Rule(head_name=head_name, head_vars=head_vars,
                    annotation=None, recursive=False, iterations=None,
                    body=tuple(base_atoms), assignment=None)
        rec_atoms, rec_vars = _recursive_body(rng, sources, head_name,
                                              head_arity, domain)
        if rec_vars is None:
            return None
        rec_head = tuple(rng.sample(rec_vars, min(head_arity,
                                                  len(rec_vars))))
        if len(rec_head) != head_arity:
            return None
        rec = Rule(head_name=head_name, head_vars=rec_head,
                   annotation=None, recursive=True, iterations=None,
                   body=tuple(rec_atoms), assignment=None)
        return base, rec, False
    # Aggregating base for replace / monotone recursion.
    op = rng.choice(("SUM", "MIN", "MAX", "COUNT")) if mode == "replace" \
        else rng.choice(("MIN", "MAX"))
    non_head = [v for v in base_vars if v not in head_vars]
    arg = rng.choice(non_head) if non_head else rng.choice(base_vars)
    if op == "COUNT" and not non_head:
        arg = "*"
    base = Rule(head_name=head_name, head_vars=head_vars,
                annotation=HeadAnnotation("w", "float"), recursive=False,
                iterations=None, body=tuple(base_atoms),
                assignment=Agg(op, arg))
    unannotated_only = mode == "monotone" and op == "MAX"
    rec_atoms, rec_vars = _recursive_body(
        rng, sources, head_name, head_arity, domain,
        unannotated_only=unannotated_only)
    if rec_vars is None:
        return None
    rec_head = tuple(rng.sample(rec_vars, min(head_arity,
                                              len(rec_vars))))
    if len(rec_head) != head_arity:
        return None
    rec_non_head = [v for v in rec_vars if v not in rec_head]
    if mode == "replace":
        rec_op = rng.choice(("SUM", "MIN", "MAX"))
        rec_arg = rng.choice(rec_non_head) if rec_non_head \
            else rng.choice(rec_vars)
        assignment = _wrap_aggregate(rng, Agg(rec_op, rec_arg), [])
        rec = Rule(head_name=head_name, head_vars=rec_head,
                   annotation=HeadAnnotation("w", "float"),
                   recursive=True, iterations=rng.randint(1, 3),
                   body=tuple(rec_atoms), assignment=assignment)
        return base, rec, bool(rec_head)
    # Monotone seminaive: MIN may add a non-negative constant (values
    # stay bounded below), MAX must stay bare (any increment diverges
    # on cycles).
    rec_arg = rng.choice(rec_non_head) if rec_non_head \
        else rng.choice(rec_vars)
    if op == "MIN":
        assignment = Agg("MIN", rec_arg)
        if rng.random() < 0.6:
            assignment = BinOp("+", assignment,
                               Num(float(rng.randint(0, 2))))
    else:
        assignment = Agg("MAX", rec_arg)
    if not rec_head:
        return None
    rec = Rule(head_name=head_name, head_vars=rec_head,
               annotation=HeadAnnotation("w", "float"), recursive=True,
               iterations=None, body=tuple(rec_atoms),
               assignment=assignment)
    return base, rec, True


def _recursive_body(rng, sources, head_name, head_arity, domain,
                    unannotated_only=False):
    """Body for a recursive rule: one atom over the head plus one or two
    source atoms sharing variables with it."""
    candidates = [name for name, (arity, annotated) in sources.items()
                  if arity >= 1 and not (unannotated_only and annotated)]
    if not candidates:
        return None, None
    head_atom_vars = list(rng.sample(VARIABLE_POOL, head_arity))
    atoms = [Atom(head_name, tuple(Variable(v) for v in head_atom_vars))]
    used = list(head_atom_vars)
    for _ in range(rng.randint(1, 2)):
        name = rng.choice(candidates)
        arity = sources[name][0]
        terms = []
        for _ in range(arity):
            if used and rng.random() < 0.7:
                terms.append(Variable(rng.choice(used)))
            else:
                fresh = [v for v in VARIABLE_POOL if v not in used]
                var = rng.choice(fresh) if fresh \
                    else rng.choice(VARIABLE_POOL)
                if var not in used:
                    used.append(var)
                terms.append(Variable(var))
        atoms.append(Atom(name, tuple(terms)))
    rng.shuffle(atoms)
    body_vars = []
    for atom in atoms:
        for var in atom.variables:
            if var not in body_vars:
                body_vars.append(var)
    return atoms, body_vars


# ---------------------------------------------------------------------------
# validation (used by the shrinker to reject ill-formed reductions)
# ---------------------------------------------------------------------------


def validate_case(case):
    """Whether ``case`` is a well-formed program the engine supports.

    Checks name resolution, arities, head-variable boundedness, the
    one-aggregate restriction, and the recursion preconditions (base
    case present; unbounded recursion only for union or monotone
    MIN/MAX).  The shrinker uses this to discard reductions that would
    fail for reasons other than the bug being minimized.
    """
    sources = {r.name: r.arity for r in case.relations}
    if len(sources) != len(case.relations):
        return False
    for rule in case.rules:
        if rule.head_name in (r.name for r in case.relations):
            return False
        for atom in rule.body:
            arity = sources.get(atom.name)
            if atom.name == rule.head_name:
                if not rule.recursive and arity is None:
                    return False
            if arity is None and atom.name != rule.head_name:
                return False
            if arity is not None and len(atom.terms) != arity:
                return False
        body_vars = set(rule.body_variables)
        if not set(rule.head_vars) <= body_vars:
            return False
        if len(set(rule.head_vars)) != len(rule.head_vars):
            return False
        aggs = rule.aggregates
        if len(aggs) > 1:
            return False
        if rule.annotation is not None and rule.assignment is None:
            return False
        if aggs:
            agg = aggs[0]
            if agg.arg != "*" and agg.arg not in body_vars:
                return False
            if agg.op == "COUNT" and agg.arg != "*" \
                    and agg.arg in rule.head_vars:
                return False
        if rule.recursive:
            if rule.head_name not in sources:
                return False
            if sources[rule.head_name] != len(rule.head_vars):
                return False
            if rule.iterations is None and aggs \
                    and aggs[0].op not in ("MIN", "MAX"):
                return False
        sources[rule.head_name] = len(rule.head_vars)
    return True


# ---------------------------------------------------------------------------
# mutation cases (incremental-maintenance fuzzing)
# ---------------------------------------------------------------------------


@dataclass
class MutationOp:
    """One step of an interleaved mutate/query sequence."""

    kind: str  # "append" | "delete" | "query"
    target: Optional[str] = None
    tuples: Optional[List[tuple]] = None
    annotations: Optional[List[float]] = None

    def __str__(self):
        if self.kind == "query":
            return "query"
        suffix = "" if self.annotations is None \
            else " ann=%s" % self.annotations
        return "%s %s %s%s" % (self.kind, self.target, self.tuples,
                               suffix)


@dataclass
class MutationCase:
    """One generated incremental-maintenance test case: base relations,
    materialized views over them (and over each other), a query program,
    and an interleaved append/delete/query op sequence.

    The runner checks every query op differentially: engine configs
    against each other and against a from-scratch full-rebuild oracle
    (a fresh database loaded with the mirrored post-mutation contents).
    """

    seed: int
    relations: List[FuzzRelation]
    views: List[tuple]  # (name, Rule) in installation order
    query_rules: List[Rule]
    ops: List[MutationOp]

    @property
    def query_text(self):
        return "\n".join(str(rule) for rule in self.query_rules)

    @property
    def head_names(self):
        """View names plus query heads, deduplicated, install order."""
        names = [name for name, _ in self.views]
        for rule in self.query_rules:
            if rule.head_name not in names:
                names.append(rule.head_name)
        return names

    def __str__(self):
        lines = ["-- seed %d (mutation)" % self.seed]
        for relation in self.relations:
            lines.append("-- %s/%d = %s%s" % (
                relation.name, relation.arity, relation.tuples,
                " ann=%s" % relation.annotations
                if relation.annotations is not None else ""))
        for name, rule in self.views:
            lines.append("-- view %s: %s" % (name, rule))
        lines.append(self.query_text)
        lines.append("-- ops:")
        for op in self.ops:
            lines.append("--   %s" % op)
        return "\n".join(lines)


def initial_mirror(relations):
    """``{name: {tuple: annotation-or-None}}`` for the base contents —
    the ground truth the oracle rebuilds from at every query op."""
    mirror = {}
    for relation in relations:
        annotations = relation.annotations \
            if relation.annotations is not None \
            else [None] * len(relation.tuples)
        mirror[relation.name] = dict(zip(relation.tuples, annotations))
    return mirror


def apply_op_to_mirror(mirror, op):
    """Replay one mutation op onto the mirror (queries are no-ops).

    Matches the engine's semantics: appends upsert with last-writer-wins
    annotations; deletes of absent tuples are no-ops.
    """
    if op.kind == "append":
        table = mirror[op.target]
        annotations = op.annotations if op.annotations is not None \
            else [None] * len(op.tuples)
        for row, annotation in zip(op.tuples, annotations):
            table[row] = annotation
    elif op.kind == "delete":
        table = mirror[op.target]
        for row in op.tuples:
            table.pop(row, None)


def generate_mutation_case(seed, max_relations=3, max_tuples=14,
                           max_domain=6, max_ops=8):
    """Generate one :class:`MutationCase` deterministically from
    ``seed``."""
    rng = random.Random(seed)
    domain = rng.randint(2, max_domain)
    relations = _generate_relations(rng, domain, max_relations,
                                    max_tuples)
    views, query_rules = None, None
    for _ in range(20):
        candidate_views, view_sources = _generate_views(rng, relations,
                                                        domain)
        candidate_queries = _generate_rules(rng, relations, domain,
                                            max_rules=2, max_atoms=3,
                                            sources=view_sources,
                                            prefix="Q")
        probe = FuzzCase(seed, relations,
                         [rule for _, rule in candidate_views]
                         + candidate_queries)
        if validate_case(probe):
            views, query_rules = candidate_views, candidate_queries
            break
    if views is None:
        views, query_rules = _trivial_program(relations)
    ops = _generate_ops(rng, relations, domain, max_ops)
    return MutationCase(seed, relations, views, query_rules, ops)


def _generate_views(rng, relations, domain):
    """1–2 single-rule views; later views may read earlier ones (the
    refresh fixpoint has to propagate deltas through the chain)."""
    sources = {r.name: (r.arity, r.annotations is not None)
               for r in relations}
    views = []
    for index in range(rng.randint(1, 2)):
        name = "V%d" % index
        rule = _generate_rule(rng, sources, [], domain, name,
                              max_atoms=3)
        views.append((name, rule))
        sources[name] = (len(rule.head_vars),
                         rule.annotation is not None
                         and bool(rule.head_vars))
    return views, sources


def _trivial_program(relations):
    """Always-valid fallback: V0 mirrors R0, Q0 reads V0."""
    relation = relations[0]
    variables = tuple(Variable(v)
                      for v in VARIABLE_POOL[:relation.arity])
    head_vars = tuple(v.name for v in variables)
    view = Rule(head_name="V0", head_vars=head_vars, annotation=None,
                recursive=False, iterations=None,
                body=(Atom(relation.name, variables),), assignment=None)
    query = Rule(head_name="Q0", head_vars=head_vars, annotation=None,
                 recursive=False, iterations=None,
                 body=(Atom("V0", variables),), assignment=None)
    return [("V0", view)], [query]


def _generate_ops(rng, relations, domain, max_ops):
    """Interleaved op sequence: ~40% appends, ~25% deletes, rest
    queries; at least one mutation, at least two queries, final op a
    query.  The generation-time mirror keeps deletes mostly aimed at
    live tuples (with occasional misses to exercise the no-op path)."""
    mirror = initial_mirror(relations)
    ops = []
    mutations = 0
    for _ in range(rng.randint(4, max_ops) - 1):
        roll = rng.random()
        deletable = [r for r in relations if mirror[r.name]]
        if roll < 0.40:
            ops.append(_append_op(rng, rng.choice(relations), domain,
                                  mirror))
            mutations += 1
        elif roll < 0.65 and deletable:
            ops.append(_delete_op(rng, rng.choice(deletable), domain,
                                  mirror))
            mutations += 1
        else:
            ops.append(MutationOp("query"))
    if not mutations:
        ops.insert(0, _append_op(rng, rng.choice(relations), domain,
                                 mirror))
    ops.append(MutationOp("query"))
    if sum(1 for op in ops if op.kind == "query") < 2:
        ops.insert(len(ops) // 2, MutationOp("query"))
    return ops


def _append_op(rng, relation, domain, mirror):
    count = rng.randint(1, 3)
    tuples = []
    for _ in range(count):
        if mirror[relation.name] and rng.random() < 0.25:
            # Re-append a live tuple: a no-op under set semantics, an
            # annotation rewrite (journalled as Δ−/Δ+, forcing the
            # full refresh route) when the relation is annotated.
            tuples.append(rng.choice(sorted(mirror[relation.name])))
        else:
            # ``domain + 2`` reaches past every loaded value, so some
            # appends grow the dictionary.
            tuples.append(tuple(rng.randrange(domain + 2)
                                for _ in range(relation.arity)))
    annotations = None
    if relation.annotations is not None:
        annotations = [float(rng.randint(1, 9)) for _ in tuples]
    op = MutationOp("append", relation.name, tuples, annotations)
    apply_op_to_mirror(mirror, op)
    return op


def _delete_op(rng, relation, domain, mirror):
    pool = sorted(mirror[relation.name])
    tuples = rng.sample(pool, rng.randint(1, min(2, len(pool))))
    if rng.random() < 0.3:
        # Usually absent: deleting a missing tuple must be a no-op.
        tuples.append(tuple(rng.randrange(domain + 2)
                            for _ in range(relation.arity)))
    op = MutationOp("delete", relation.name, tuples, None)
    apply_op_to_mirror(mirror, op)
    return op
