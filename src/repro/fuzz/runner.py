"""The differential harness: one program, every execution path.

Each generated case is executed across the engine's config matrix
(:func:`repro.engine.config.enumerate_config_matrix`) plus a plan-cache
warm re-run, and every derived head is cross-checked:

* config vs config — all engine paths must agree tuple-for-tuple and
  value-for-value (or fail with the same error class);
* engine vs :mod:`repro.fuzz.oracle` — the backtracking brute force;
* engine vs ``tests.reference`` — the cartesian-product brute force
  (skipped automatically when the test package is not importable,
  e.g. from an installed wheel).

Float comparison is tolerant (``isclose``) but the generator's numeric
hygiene — integer annotations, division only by powers of two — makes
results exact in practice.
"""

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..api import Database
from ..engine.config import (enumerate_config_matrix,
                             enumerate_mutation_matrix)
from ..errors import EmptyHeadedError
from .gen import (apply_op_to_mirror, generate_case,
                  generate_mutation_case, initial_mirror)
from .oracle import OracleError, evaluate_case

#: Config labels that additionally execute a warm (plan-cache hit)
#: re-run of the same program on the same database.  The
#: ``adaptive-replan`` config (replan_factor ~ 0) evicts its plan after
#: every run, so its warm re-run differentially checks that a
#: mispredict-triggered re-plan never changes results.
WARM_LABELS = ("interp", "compiled", "adaptive-replan")


@dataclass
class CaseFailure:
    """One differential mismatch, engine error disagreement, or crash."""

    seed: int
    kind: str  # "mismatch" | "oracle" | "reference" | "crash"
    detail: str
    case: object
    shrunk: Optional[object] = None

    def describe(self):
        lines = ["seed=%d kind=%s" % (self.seed, self.kind), self.detail]
        subject = self.shrunk if self.shrunk is not None else self.case
        lines.append(str(subject))
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    budget: int = 0
    executed: int = 0
    skipped: int = 0
    failures: List[CaseFailure] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self):
        return not self.failures

    def describe(self):
        lines = ["fuzz: %d cases, %d skipped, %d failure(s), %.1fs"
                 % (self.executed, self.skipped, len(self.failures),
                    self.elapsed)]
        for failure in self.failures:
            lines.append("-" * 60)
            lines.append(failure.describe())
        return "\n".join(lines)


def case_seed(master_seed, index):
    """Per-case seed derived from the run seed — stable across runs so
    ``--seed N --budget M`` always replays the same case sequence."""
    return (master_seed * 1000003 + index) & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# engine execution + normalization
# ---------------------------------------------------------------------------


def _normalize_relation(relation, fallback_dictionary):
    """Collapse a result :class:`Relation` to an engine-independent
    ``(kind, value)`` — decoded tuples, plain floats."""
    if relation.arity == 0:
        if relation.annotations is not None:
            return "scalar", float(relation.annotations[0])
        return "exists", relation.cardinality > 0
    dictionaries = relation.dictionaries
    if dictionaries is None:
        dictionaries = [fallback_dictionary] * relation.arity
    rows = []
    for row in relation.data:
        rows.append(tuple(dictionaries[c].decode(v)
                          for c, v in enumerate(row)))
    if relation.annotations is not None:
        return "map", {row: float(a)
                       for row, a in zip(rows, relation.annotations)}
    return "set", frozenset(rows)


def _load_case(case, config):
    db = Database(config=config.ablated())
    for relation in case.relations:
        db.add_relation(relation.name, relation.tuples,
                        annotations=relation.annotations,
                        arity=relation.arity)
    return db


def _run_engine(case, db):
    """Execute the program; return ``("ok", {head: (kind, value)})`` or
    ``("error", exception_class_name)``."""
    try:
        db.query(case.program_text)
    except EmptyHeadedError as error:
        return "error", type(error).__name__
    heads = []
    for name in case.head_names:
        if name not in heads:
            heads.append(name)
    results = {}
    for name in heads:
        results[name] = _normalize_relation(db.relation(name),
                                            db._dictionary)
    return "ok", results


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


def _close(a, b):
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def _diff_values(name, a, b):
    """Human-readable difference between two normalized head results,
    or ``None`` when they agree."""
    kind_a, value_a = a
    kind_b, value_b = b
    if kind_a != kind_b:
        return "%s: kind %s vs %s" % (name, kind_a, kind_b)
    if kind_a == "scalar":
        if not _close(value_a, value_b):
            return "%s: scalar %r vs %r" % (name, value_a, value_b)
        return None
    if kind_a == "exists":
        if value_a != value_b:
            return "%s: exists %r vs %r" % (name, value_a, value_b)
        return None
    if kind_a == "set":
        if value_a != value_b:
            only_a = sorted(value_a - value_b)[:5]
            only_b = sorted(value_b - value_a)[:5]
            return "%s: set differs (only-left=%s only-right=%s)" \
                % (name, only_a, only_b)
        return None
    keys_a, keys_b = set(value_a), set(value_b)
    if keys_a != keys_b:
        return "%s: keys differ (only-left=%s only-right=%s)" \
            % (name, sorted(keys_a - keys_b)[:5],
               sorted(keys_b - keys_a)[:5])
    for key in value_a:
        if not _close(value_a[key], value_b[key]):
            return "%s[%s]: %r vs %r" % (name, key, value_a[key],
                                         value_b[key])
    return None


def _diff_outcomes(label_a, outcome_a, label_b, outcome_b):
    status_a, payload_a = outcome_a
    status_b, payload_b = outcome_b
    if status_a != status_b:
        return "%s=%s(%s) vs %s=%s(%s)" % (
            label_a, status_a,
            payload_a if status_a == "error" else "ok",
            label_b, status_b,
            payload_b if status_b == "error" else "ok")
    if status_a == "error":
        if payload_a != payload_b:
            return "%s raised %s but %s raised %s" % (label_a, payload_a,
                                                      label_b, payload_b)
        return None
    for name in payload_a:
        diff = _diff_values(name, payload_a[name], payload_b[name])
        if diff is not None:
            return "%s vs %s: %s" % (label_a, label_b, diff)
    return None


# ---------------------------------------------------------------------------
# reference layer (tests/reference.py, when importable)
# ---------------------------------------------------------------------------


def _reference_module():
    try:
        from tests import reference
    except ImportError:
        return None
    return reference if hasattr(reference, "evaluate_program") else None


def _reference_results(case, reference):
    base = {}
    for relation in case.relations:
        annotations = None
        if relation.annotations is not None:
            annotations = {tuple(row): float(a)
                           for row, a in zip(relation.tuples,
                                             relation.annotations)}
        base[relation.name] = ([tuple(row) for row in relation.tuples],
                               annotations)
    return reference.evaluate_program(base, case.rules)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------


def run_case(case, matrix=None, check_oracle=True, check_reference=True,
             metrics=None):
    """Run one case across the config matrix; ``None`` when consistent,
    else a :class:`CaseFailure`.

    A non-engine exception from any config is reported as a ``crash``
    failure.  Oracle divergence (non-terminating recursion) skips the
    oracle layers but still cross-checks the engine configs against
    each other.
    """
    if matrix is None:
        matrix = enumerate_config_matrix()
    outcomes = []
    for label, config in matrix:
        try:
            db = _load_case(case, config)
            outcomes.append((label, _run_engine(case, db)))
            if label in WARM_LABELS and outcomes[-1][1][0] == "ok":
                outcomes.append((label + "+warm", _run_engine(case, db)))
        except Exception as error:  # noqa: BLE001 - crash = finding
            if metrics is not None:
                metrics.inc("fuzz.crashes")
            return CaseFailure(case.seed, "crash",
                               "%s crashed: %s: %s"
                               % (label, type(error).__name__, error),
                               case)
    base_label, base_outcome = outcomes[0]
    for label, outcome in outcomes[1:]:
        diff = _diff_outcomes(base_label, base_outcome, label, outcome)
        if diff is not None:
            if metrics is not None:
                metrics.inc("fuzz.mismatches")
            return CaseFailure(case.seed, "mismatch", diff, case)
    if base_outcome[0] != "ok":
        return None  # every config failed identically; nothing to check
    if check_oracle:
        try:
            expected = {name: result for name, result
                        in evaluate_case(case).items()}
        except OracleError:
            expected = None
            if metrics is not None:
                metrics.inc("fuzz.oracle_skips")
        if expected is not None:
            diff = _diff_outcomes("oracle", ("ok", expected),
                                  base_label, base_outcome)
            if diff is not None:
                if metrics is not None:
                    metrics.inc("fuzz.mismatches")
                return CaseFailure(case.seed, "oracle", diff, case)
    if check_reference:
        reference = _reference_module()
        if reference is not None:
            try:
                expected = _reference_results(case, reference)
            except reference.ReferenceDiverged:
                expected = None
            if expected is not None:
                diff = _diff_outcomes("reference", ("ok", expected),
                                      base_label, base_outcome)
                if diff is not None:
                    if metrics is not None:
                        metrics.inc("fuzz.mismatches")
                    return CaseFailure(case.seed, "reference", diff,
                                       case)
    return None


def run_fuzz(seed=0, budget=100, matrix=None, shrink=False,
             max_failures=10, metrics=None, progress=None,
             check_reference=True):
    """Generate and differentially check ``budget`` cases.

    Parameters
    ----------
    seed / budget:
        Master seed and number of cases; case ``i`` uses
        :func:`case_seed(seed, i)`, so any failure replays standalone.
    shrink:
        Minimize each failure with :func:`repro.fuzz.shrink.shrink_case`
        before reporting it.
    max_failures:
        Stop early after this many failures.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`.
    progress:
        Optional callable ``(index, budget, failures)`` invoked after
        every case (the CLI's ticker).
    """
    if matrix is None:
        matrix = enumerate_config_matrix()
    report = FuzzReport(budget=budget)
    start = time.perf_counter()
    for index in range(budget):
        case = generate_case(case_seed(seed, index))
        if metrics is not None:
            metrics.inc("fuzz.cases")
        failure = run_case(case, matrix, metrics=metrics,
                           check_reference=check_reference)
        report.executed += 1
        if failure is not None:
            if shrink:
                from .shrink import shrink_case

                def still_failing(candidate):
                    return run_case(candidate, matrix,
                                    check_reference=check_reference) \
                        is not None

                failure.shrunk = shrink_case(case, still_failing)
            report.failures.append(failure)
            if len(report.failures) >= max_failures:
                break
        if progress is not None:
            progress(index + 1, budget, len(report.failures))
    report.elapsed = time.perf_counter() - start
    if metrics is not None:
        metrics.observe("fuzz.seconds", report.elapsed,
                        (1, 10, 60, 300, 1800, float("inf")))
    return report


# ---------------------------------------------------------------------------
# mutation fuzzing (incremental maintenance vs full-rebuild oracle)
# ---------------------------------------------------------------------------


def _run_mutation_ops(case, config):
    """Execute the case's op sequence on one persistent database.

    Returns an outcome list: ``("setup-ok", None)`` or
    ``("setup-error", cls)`` first, then one ``("ok", {head: value})``
    or ``("error", cls)`` entry per *query* op.  Mutation ops between
    queries run against the same live database — this is exactly the
    path where delta stores, version-keyed caches, and incremental view
    refresh engage.
    """
    db = Database(config=config.ablated())
    outcomes = []
    try:
        for relation in case.relations:
            db.add_relation(relation.name, relation.tuples,
                            annotations=relation.annotations,
                            arity=relation.arity)
        try:
            for name, rule in case.views:
                db.materialize(name, str(rule))
        except EmptyHeadedError as error:
            outcomes.append(("setup-error", type(error).__name__))
            return outcomes
        outcomes.append(("setup-ok", None))
        for op in case.ops:
            if op.kind == "append":
                db.append(op.target, op.tuples,
                          annotations=op.annotations)
            elif op.kind == "delete":
                db.delete(op.target, op.tuples)
            else:
                outcomes.append(_query_snapshot(db, case))
    finally:
        db.close()
    return outcomes


def _query_snapshot(db, case):
    try:
        db.query(case.query_text)
        results = {}
        for name in case.head_names:
            results[name] = _normalize_relation(db.relation(name),
                                                db._dictionary)
        return "ok", results
    except EmptyHeadedError as error:
        return "error", type(error).__name__


def _oracle_db(case, mirror):
    """A fresh default-config database loaded with the mirror contents
    — the from-scratch rebuild the live databases are checked against."""
    db = Database()
    for relation in case.relations:
        items = sorted(mirror[relation.name].items())
        annotations = None
        if relation.annotations is not None:
            annotations = [value for _, value in items]
        db.add_relation(relation.name, [row for row, _ in items],
                        annotations=annotations, arity=relation.arity)
    return db


def _oracle_outcomes(case):
    """The full-rebuild reference: at every query op, rebuild the
    database from the replayed mirror and run views + query cold."""
    mirror = initial_mirror(case.relations)
    db = _oracle_db(case, mirror)
    try:
        try:
            for _, rule in case.views:
                db.query(str(rule))
        except EmptyHeadedError as error:
            return [("setup-error", type(error).__name__)]
    finally:
        db.close()
    outcomes = [("setup-ok", None)]
    for op in case.ops:
        if op.kind != "query":
            apply_op_to_mirror(mirror, op)
            continue
        db = _oracle_db(case, mirror)
        try:
            try:
                for _, rule in case.views:
                    db.query(str(rule))
                db.query(case.query_text)
            except EmptyHeadedError as error:
                outcomes.append(("error", type(error).__name__))
                continue
            results = {}
            for name in case.head_names:
                results[name] = _normalize_relation(db.relation(name),
                                                    db._dictionary)
            outcomes.append(("ok", results))
        finally:
            db.close()
    return outcomes


def _diff_mutation_outcomes(label_a, outcomes_a, label_b, outcomes_b):
    if len(outcomes_a) != len(outcomes_b):
        return "%s produced %d outcomes vs %s %d" % (
            label_a, len(outcomes_a), label_b, len(outcomes_b))
    for step, (a, b) in enumerate(zip(outcomes_a, outcomes_b)):
        if a[0].startswith("setup") or b[0].startswith("setup"):
            if a != b:
                return "setup: %s=%r vs %s=%r" % (label_a, a,
                                                  label_b, b)
            continue
        diff = _diff_outcomes(label_a, a, label_b, b)
        if diff is not None:
            return "query #%d: %s" % (step, diff)
    return None


def run_mutation_case(case, matrix=None, metrics=None):
    """Run one mutation case across the mutation matrix; ``None`` when
    every config matches the full-rebuild oracle step-for-step, else a
    :class:`CaseFailure`."""
    if matrix is None:
        matrix = enumerate_mutation_matrix()
    try:
        expected = _oracle_outcomes(case)
    except Exception as error:  # noqa: BLE001 - crash = finding
        if metrics is not None:
            metrics.inc("fuzz.crashes")
        return CaseFailure(case.seed, "crash",
                           "rebuild oracle crashed: %s: %s"
                           % (type(error).__name__, error), case)
    for label, config in matrix:
        try:
            outcomes = _run_mutation_ops(case, config)
        except Exception as error:  # noqa: BLE001 - crash = finding
            if metrics is not None:
                metrics.inc("fuzz.crashes")
            return CaseFailure(case.seed, "crash",
                               "%s crashed: %s: %s"
                               % (label, type(error).__name__, error),
                               case)
        diff = _diff_mutation_outcomes("rebuild-oracle", expected,
                                       label, outcomes)
        if diff is not None:
            if metrics is not None:
                metrics.inc("fuzz.mismatches")
            return CaseFailure(case.seed, "mutation-mismatch", diff,
                               case)
    return None


# ---------------------------------------------------------------------------
# serve fuzzing (live daemon vs direct execution)
# ---------------------------------------------------------------------------


def _serve_query_snapshot(client, case):
    """The daemon-side analog of :func:`_query_snapshot`: run the query
    over the wire, then fetch every derived head as a normalized
    payload (``relation`` ops execute in admission order, so they read
    exactly the state the query installed)."""
    from ..serve.protocol import payload_to_outcome
    reply = client.query(case.query_text)
    if reply["status"] != "ok":
        return "error", reply.get("error_class", "EmptyHeadedError")
    results = {}
    for name in case.head_names:
        fetched = client.relation(name)
        if fetched["status"] != "ok":
            raise RuntimeError("relation fetch for %r failed: %r"
                               % (name, fetched))
        results[name] = payload_to_outcome(fetched["result"])
    return "ok", results


def _serve_mutation_ops(case, config):
    """Replay the case's op sequence through a live query daemon.

    Boots a :class:`~repro.serve.QueryService` around a database with
    the same config as the direct run, then drives every op over the
    wire — setup ``add_relation``/``materialize``, interleaved
    ``append``/``delete``/``query`` — returning the same outcome-list
    shape as :func:`_run_mutation_ops` for
    :func:`_diff_mutation_outcomes`.  This is the result cache's
    hardest test: repeated queries hit, mutations invalidate, and every
    served payload must equal direct execution bit-for-bit.
    """
    from ..serve import QueryService, ServeClient
    db = Database(config=config.ablated())
    service = QueryService(db).start()
    outcomes = []
    try:
        with ServeClient(port=service.port) as client:
            for relation in case.relations:
                reply = client.add_relation(
                    relation.name, relation.tuples,
                    annotations=relation.annotations,
                    arity=relation.arity)
                if reply["status"] != "ok":
                    raise RuntimeError("add_relation %r failed: %r"
                                       % (relation.name, reply))
            setup_error = None
            for name, rule in case.views:
                reply = client.materialize(name, str(rule))
                if reply["status"] != "ok":
                    setup_error = reply.get("error_class",
                                            "EmptyHeadedError")
                    break
            if setup_error is not None:
                outcomes.append(("setup-error", setup_error))
                return outcomes
            outcomes.append(("setup-ok", None))
            for op in case.ops:
                if op.kind == "append":
                    reply = client.append(op.target, op.tuples,
                                          annotations=op.annotations)
                    if reply["status"] != "ok":
                        raise RuntimeError("append failed: %r" % reply)
                elif op.kind == "delete":
                    reply = client.delete(op.target, op.tuples)
                    if reply["status"] != "ok":
                        raise RuntimeError("delete failed: %r" % reply)
                else:
                    outcomes.append(_serve_query_snapshot(client, case))
    finally:
        service.stop()
        db.close()
    return outcomes


def run_serve_case(case, matrix=None, metrics=None):
    """Differentially check one mutation case: daemon vs direct.

    For every config in the mutation matrix the case's full op
    sequence runs twice — directly on a :class:`Database` and through
    a live :class:`~repro.serve.QueryService` — and the outcome lists
    must agree step-for-step.  A case whose *direct* run crashes is
    skipped here (that is the mutation fuzzer's finding, not ours).
    """
    if matrix is None:
        matrix = enumerate_mutation_matrix()
    for label, config in matrix:
        try:
            direct = _run_mutation_ops(case, config)
        except Exception:  # noqa: BLE001 - the mutation fuzzer's find
            return None
        try:
            served = _serve_mutation_ops(case, config)
        except Exception as error:  # noqa: BLE001 - crash = finding
            if metrics is not None:
                metrics.inc("fuzz.crashes")
            return CaseFailure(case.seed, "crash",
                               "serve[%s] crashed: %s: %s"
                               % (label, type(error).__name__, error),
                               case)
        diff = _diff_mutation_outcomes("direct[%s]" % label, direct,
                                       "serve[%s]" % label, served)
        if diff is not None:
            if metrics is not None:
                metrics.inc("fuzz.mismatches")
            return CaseFailure(case.seed, "serve-mismatch", diff, case)
    return None


def run_serve_fuzz(seed=0, budget=100, matrix=None, max_failures=10,
                   metrics=None, progress=None):
    """Generate mutation cases and replay each through a live daemon,
    diffing against direct execution across the mutation matrix."""
    if matrix is None:
        matrix = enumerate_mutation_matrix()
    report = FuzzReport(budget=budget)
    start = time.perf_counter()
    for index in range(budget):
        case = generate_mutation_case(case_seed(seed, index))
        if metrics is not None:
            metrics.inc("fuzz.serve_cases")
        failure = run_serve_case(case, matrix, metrics=metrics)
        report.executed += 1
        if failure is not None:
            report.failures.append(failure)
            if len(report.failures) >= max_failures:
                break
        if progress is not None:
            progress(index + 1, budget, len(report.failures))
    report.elapsed = time.perf_counter() - start
    if metrics is not None:
        metrics.observe("fuzz.seconds", report.elapsed,
                        (1, 10, 60, 300, 1800, float("inf")))
    return report


def run_mutation_fuzz(seed=0, budget=100, matrix=None, max_failures=10,
                      metrics=None, progress=None):
    """Generate and differentially check ``budget`` mutation cases.

    Every engine config in :func:`enumerate_mutation_matrix` — the
    delta-maintaining live databases — is compared outcome-for-outcome
    against the from-scratch full-rebuild oracle (which transitively
    cross-checks the configs against each other).
    """
    if matrix is None:
        matrix = enumerate_mutation_matrix()
    report = FuzzReport(budget=budget)
    start = time.perf_counter()
    for index in range(budget):
        case = generate_mutation_case(case_seed(seed, index))
        if metrics is not None:
            metrics.inc("fuzz.mutation_cases")
        failure = run_mutation_case(case, matrix, metrics=metrics)
        report.executed += 1
        if failure is not None:
            report.failures.append(failure)
            if len(report.failures) >= max_failures:
                break
        if progress is not None:
            progress(index + 1, budget, len(report.failures))
    report.elapsed = time.perf_counter() - start
    if metrics is not None:
        metrics.observe("fuzz.seconds", report.elapsed,
                        (1, 10, 60, 300, 1800, float("inf")))
    return report
