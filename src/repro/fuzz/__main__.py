"""CLI entry point: ``python -m repro.fuzz --seed 0 --budget 500``.

Also reachable as ``python -m repro.cli fuzz ...``.  Exit status is the
number of failing cases (capped at 99), so CI can gate on it directly.
"""

import argparse
import sys

from ..engine.config import (enumerate_config_matrix,
                             enumerate_mutation_matrix)
from ..obs.metrics import MetricsRegistry
from .corpus import load_corpus, save_case
from .runner import (run_case, run_fuzz, run_mutation_fuzz,
                     run_serve_fuzz)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential query fuzzer: random datalog programs "
                    "cross-checked across every execution path.")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed (default 0)")
    parser.add_argument("--budget", type=int, default=100,
                        help="number of cases to run (default 100)")
    parser.add_argument("--mutations", action="store_true",
                        help="fuzz incremental maintenance: interleaved "
                             "append/delete/query sequences checked "
                             "against a full-rebuild oracle")
    parser.add_argument("--serve", action="store_true",
                        help="fuzz the query daemon: replay mutation "
                             "cases through a live repro.serve daemon "
                             "and diff every reply against direct "
                             "Database execution")
    parser.add_argument("--shrink", action="store_true",
                        help="minimize failures before reporting them")
    parser.add_argument("--full-matrix", action="store_true",
                        help="full config cross product (48 configs) "
                             "instead of the covering set")
    parser.add_argument("--save-corpus", action="store_true",
                        help="write (shrunk) failures to the corpus "
                             "directory")
    parser.add_argument("--corpus-dir", default=None,
                        help="corpus directory override "
                             "(default tests/fuzz_corpus)")
    parser.add_argument("--replay-corpus", action="store_true",
                        help="re-check every stored corpus case and "
                             "exit")
    parser.add_argument("--max-failures", type=int, default=10,
                        help="stop after this many failures "
                             "(default 10)")
    parser.add_argument("--no-reference", action="store_true",
                        help="skip the tests/reference.py oracle layer")
    parser.add_argument("--metrics", action="store_true",
                        help="print fuzzing metrics at the end")
    parser.add_argument("--quiet", action="store_true",
                        help="no progress ticker")
    return parser


def _replay(args, matrix):
    cases = load_corpus(args.corpus_dir)
    if not cases:
        print("corpus is empty")
        return 0
    failures = 0
    for name, case in cases:
        failure = run_case(case, matrix,
                           check_reference=not args.no_reference)
        status = "ok" if failure is None else "FAIL"
        print("%-50s %s" % (name, status))
        if failure is not None:
            failures += 1
            print(failure.describe())
    print("corpus replay: %d case(s), %d failure(s)"
          % (len(cases), failures))
    return failures


def main(argv=None):
    args = build_parser().parse_args(argv)
    matrix = enumerate_config_matrix(full=args.full_matrix)
    if args.replay_corpus:
        return min(_replay(args, matrix), 99)
    metrics = MetricsRegistry(enabled=True) if args.metrics else None

    def ticker(done, budget, failures):
        if args.quiet:
            return
        if done % 25 == 0 or done == budget:
            print("\r%d/%d cases, %d failure(s)"
                  % (done, budget, failures), end="", flush=True)

    if args.serve:
        report = run_serve_fuzz(seed=args.seed, budget=args.budget,
                                matrix=enumerate_mutation_matrix(),
                                max_failures=args.max_failures,
                                metrics=metrics, progress=ticker)
    elif args.mutations:
        report = run_mutation_fuzz(seed=args.seed, budget=args.budget,
                                   matrix=enumerate_mutation_matrix(),
                                   max_failures=args.max_failures,
                                   metrics=metrics, progress=ticker)
    else:
        report = run_fuzz(seed=args.seed, budget=args.budget,
                          matrix=matrix, shrink=args.shrink,
                          max_failures=args.max_failures,
                          metrics=metrics, progress=ticker,
                          check_reference=not args.no_reference)
    if not args.quiet:
        print()
    print(report.describe())
    if args.save_corpus and not (args.mutations or args.serve):
        # Mutation cases replay from their seed; the corpus format only
        # stores plain FuzzCases.
        for failure in report.failures:
            case = failure.shrunk if failure.shrunk is not None \
                else failure.case
            if not case.description:
                case.description = failure.kind
            path = save_case(case, directory=args.corpus_dir)
            print("saved %s" % path)
    if metrics is not None:
        print(metrics.describe())
    return min(len(report.failures), 99)


if __name__ == "__main__":
    sys.exit(main())
