"""Persistent corpus of minimized failing programs.

Every engine bug the fuzzer ever found lives on as a JSON file under
``tests/fuzz_corpus/`` and is replayed as an ordinary pytest case
(``tests/fuzz/test_corpus.py``), so a fixed bug can never silently
regress.  Files are human-readable: the program is stored as query
text and re-parsed on load.
"""

import json
import os
import re
from pathlib import Path

from ..query.parser import parse
from .gen import FuzzCase, FuzzRelation

#: Environment override for the corpus location (used by CI and by
#: installed copies of the package, where the source tree is absent).
CORPUS_ENV = "REPRO_FUZZ_CORPUS"


def corpus_dir(root=None):
    """Resolve the corpus directory.

    Priority: explicit ``root`` argument, the :data:`CORPUS_ENV`
    environment variable, then ``tests/fuzz_corpus`` relative to the
    current working directory (the layout of a source checkout).
    """
    if root is not None:
        return Path(root)
    env = os.environ.get(CORPUS_ENV)
    if env:
        return Path(env)
    return Path.cwd() / "tests" / "fuzz_corpus"


def case_to_dict(case):
    return {
        "seed": case.seed,
        "description": case.description,
        "relations": [
            {
                "name": r.name,
                "arity": r.arity,
                "tuples": [list(row) for row in r.tuples],
                "annotations": r.annotations,
            }
            for r in case.relations
        ],
        "program": case.program_text,
        "history": case.history,
    }


def case_from_dict(payload):
    relations = [
        FuzzRelation(entry["name"], entry["arity"],
                     [tuple(row) for row in entry["tuples"]],
                     list(entry["annotations"])
                     if entry.get("annotations") is not None else None)
        for entry in payload["relations"]
    ]
    rules = list(parse(payload["program"]).rules)
    return FuzzCase(payload["seed"], relations, rules,
                    description=payload.get("description", ""),
                    history=list(payload.get("history", ())))


def save_case(case, directory=None, name=None):
    """Write one case to the corpus; returns the file path."""
    directory = corpus_dir(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if name is None:
        slug = re.sub(r"[^a-z0-9]+", "-",
                      case.description.lower()).strip("-") or "case"
        name = "seed%d-%s.json" % (case.seed, slug)
    path = directory / name
    path.write_text(json.dumps(case_to_dict(case), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_corpus(directory=None):
    """Load every corpus case, sorted by filename for stable test ids.

    Returns ``[(filename, FuzzCase), ...]``; an absent directory is an
    empty corpus, not an error.
    """
    directory = corpus_dir(directory)
    if not directory.is_dir():
        return []
    cases = []
    for path in sorted(directory.glob("*.json")):
        payload = json.loads(path.read_text())
        cases.append((path.name, case_from_dict(payload)))
    return cases
