"""Delta-debugging minimizer for failing fuzz cases.

Greedy ddmin over a priority ladder — each pass tries the biggest
structural cut first and keeps any reduction that still fails:

1. drop whole rules (with dependency cascade),
2. drop body atoms,
3. simplify assignment expressions to the bare aggregate,
4. drop annotation columns,
5. drop tuples (binary chunks, then singles),
6. shrink the value domain (rename every occurrence of the largest
   value down to an existing smaller one).

Candidates that are no longer well-formed programs
(:func:`repro.fuzz.gen.validate_case`) are discarded so the minimized
case fails for the *original* reason, not a validation artifact.
"""

from ..query.ast import Agg, Constant, clone_rule
from .gen import validate_case


def shrink_case(case, is_failing, max_checks=400):
    """Minimize ``case`` while ``is_failing(candidate)`` stays true.

    ``is_failing`` re-runs the differential check (or any predicate);
    it is never called on ill-formed candidates.  At most
    ``max_checks`` predicate evaluations are spent.
    """
    current = case.copy()
    checks = [0]

    def try_candidate(candidate, note):
        if checks[0] >= max_checks:
            return False
        if not validate_case(candidate):
            return False
        checks[0] += 1
        if is_failing(candidate):
            candidate.history = current.history + [note]
            return True
        return False

    improved = True
    while improved and checks[0] < max_checks:
        improved = False
        for candidate, note in _reductions(current):
            if try_candidate(candidate, note):
                current = candidate
                improved = True
                break
    return current


def _reductions(case):
    """Yield ``(candidate, note)`` reductions, most aggressive first."""
    yield from _drop_rules(case)
    yield from _drop_atoms(case)
    yield from _simplify_assignments(case)
    yield from _drop_annotations(case)
    yield from _drop_tuples(case)
    yield from _shrink_domain(case)


def _cascade(rules, relations):
    """Drop rules left dangling after a removal: a body atom naming an
    undefined relation, or a recursive rule whose base is gone."""
    defined = {r.name for r in relations}
    kept = []
    for rule in rules:
        names_ok = all(atom.name in defined or
                       (rule.recursive and atom.name == rule.head_name)
                       for atom in rule.body)
        base_ok = not rule.recursive or rule.head_name in defined
        if names_ok and base_ok:
            kept.append(rule)
            defined.add(rule.head_name)
    return kept


def _drop_rules(case):
    for index in range(len(case.rules) - 1, -1, -1):
        candidate = case.copy()
        del candidate.rules[index]
        candidate.rules = _cascade(candidate.rules, candidate.relations)
        if not candidate.rules:
            continue
        yield candidate, "drop rule %d" % index
    # Unreferenced relations ride along for free once rules are gone.
    used = {atom.name for rule in case.rules for atom in rule.body}
    for index in range(len(case.relations) - 1, -1, -1):
        if case.relations[index].name in used:
            continue
        candidate = case.copy()
        del candidate.relations[index]
        yield candidate, "drop unused relation %d" % index


def _drop_atoms(case):
    for rule_index, rule in enumerate(case.rules):
        if len(rule.body) <= 1:
            continue
        for atom_index in range(len(rule.body) - 1, -1, -1):
            body = rule.body[:atom_index] + rule.body[atom_index + 1:]
            candidate = case.copy()
            candidate.rules[rule_index] = clone_rule(rule,
                                                     body=tuple(body))
            yield candidate, "drop atom %d of rule %d" % (atom_index,
                                                          rule_index)


def _simplify_assignments(case):
    for rule_index, rule in enumerate(case.rules):
        aggs = rule.aggregates
        if not aggs or isinstance(rule.assignment, Agg):
            continue
        candidate = case.copy()
        candidate.rules[rule_index] = clone_rule(rule,
                                                 assignment=aggs[0])
        yield candidate, "bare aggregate in rule %d" % rule_index


def _drop_annotations(case):
    for index, relation in enumerate(case.relations):
        if relation.annotations is None:
            continue
        candidate = case.copy()
        candidate.relations[index].annotations = None
        yield candidate, "drop annotations of %s" % relation.name


def _drop_tuples(case):
    for index, relation in enumerate(case.relations):
        n = len(relation.tuples)
        if n == 0:
            continue
        # Halves first (classic ddmin), then single tuples.
        spans = []
        if n >= 4:
            spans.append((0, n // 2))
            spans.append((n // 2, n))
        spans.extend((i, i + 1) for i in range(n - 1, -1, -1))
        for start, stop in spans:
            candidate = case.copy()
            target = candidate.relations[index]
            del target.tuples[start:stop]
            if target.annotations is not None:
                del target.annotations[start:stop]
                if not target.tuples:
                    target.annotations = None
            yield candidate, "drop tuples [%d:%d) of %s" \
                % (start, stop, relation.name)


def _shrink_domain(case):
    values = sorted({v for relation in case.relations
                     for row in relation.tuples for v in row})
    if len(values) < 2:
        return
    source = values[-1]
    for target in values[:-1]:
        candidate = case.copy()
        _remap_value(candidate, source, target)
        yield candidate, "rename value %r -> %r" % (source, target)


def _remap_value(case, source, target):
    for relation in case.relations:
        rows = []
        annotations = []
        seen = {}
        for position, row in enumerate(relation.tuples):
            row = tuple(target if v == source else v for v in row)
            value = relation.annotations[position] \
                if relation.annotations is not None else None
            if row in seen:  # merged duplicates keep the later value
                annotations[seen[row]] = value
                continue
            seen[row] = len(rows)
            rows.append(row)
            annotations.append(value)
        relation.tuples = rows
        relation.annotations = annotations \
            if relation.annotations is not None else None
    for index, rule in enumerate(case.rules):
        body = tuple(
            atom.__class__(atom.name, tuple(
                Constant(target) if isinstance(t, Constant)
                and t.value == source else t for t in atom.terms))
            for atom in rule.body)
        case.rules[index] = clone_rule(rule, body=body)
