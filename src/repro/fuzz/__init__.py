"""Differential query fuzzer: randomized datalog programs cross-checked
over every execution path.

The engine has four independently-built execution paths — interpreted vs
compiled, serial vs work-stealing parallel, optimizer passes on vs off —
multiplied by the set-layout levels.  They are provably equivalent on
paper (the GHD plan is equivalent to the logical query); this package
earns that confidence empirically:

* :mod:`repro.fuzz.gen` — a seeded random generator of schemas, data,
  and datalog programs (multi-way joins, self-joins, selections,
  projections, every semiring aggregate, multi-rule programs, bounded
  and fixpoint recursion);
* :mod:`repro.fuzz.oracle` — an independent brute-force evaluator of
  those programs over plain Python values;
* :mod:`repro.fuzz.runner` — the differential harness: each program
  runs across a config matrix (``enumerate_config_matrix``) plus a
  plan-cache warm re-run, and every result is compared against every
  other and against the oracle(s);
* :mod:`repro.fuzz.shrink` — a delta-debugging minimizer that reduces a
  mismatching program (fewer rules → fewer atoms → fewer tuples →
  smaller domain) while it keeps failing;
* :mod:`repro.fuzz.corpus` — persistence of minimized failures under
  ``tests/fuzz_corpus/``, replayed as regular pytest cases.

Run it from the command line::

    python -m repro.fuzz --seed 0 --budget 500 --shrink

See ``docs/testing.md`` for the full testing-oracle story.
"""

from .gen import FuzzCase, FuzzRelation, generate_case, validate_case
from .oracle import evaluate_case
from .runner import (CaseFailure, FuzzReport, case_seed, run_case,
                     run_fuzz)
from .shrink import shrink_case
from .corpus import corpus_dir, load_corpus, save_case

__all__ = [
    "FuzzCase", "FuzzRelation", "generate_case", "validate_case",
    "evaluate_case",
    "CaseFailure", "FuzzReport", "case_seed", "run_case", "run_fuzz",
    "shrink_case",
    "corpus_dir", "load_corpus", "save_case",
]
