"""Independent brute-force evaluator for fuzz cases.

This oracle shares *no* code with the engine: it evaluates programs by
backtracking over plain Python tuples (the engine joins dictionary-
encoded numpy tries; ``tests/reference.py`` enumerates cartesian
products — three implementations, one semantics).

Semantics implemented (matching the engine's semiring model):

* a rule's derivations are the distinct consistent bindings of all body
  variables; every body-atom occurrence contributes its matched tuple's
  annotation as a factor (unannotated atoms contribute ``1``), including
  fully-constant guard atoms;
* ``SUM``/``COUNT(*)`` add those products per head key, ``MIN``/``MAX``
  fold them, ``COUNT(v)`` counts distinct bindings of ``v`` per head key
  ignoring annotations;
* the assignment expression is applied to the folded value (``Ref``
  reads earlier 0-ary annotated heads);
* a 0-ary annotated head with no aggregate carries the assignment's
  value iff the body is satisfiable, else ``0.0``;
* recursion: union fixpoint (no aggregate), fixed-iteration replace
  (``*[i=k]``), and naive-improvement iteration for monotone MIN/MAX.

Results are normalized to ``(kind, value)`` pairs shared with the
runner: ``("set", frozenset)``, ``("map", dict)``, ``("scalar", float)``
or ``("exists", bool)``.
"""

import math

from ..query.ast import Agg, BinOp, Constant, Num, Ref, Variable

#: Fold start values per aggregate operator.
FOLD_ZERO = {"SUM": 0.0, "COUNT": 0.0, "MIN": math.inf, "MAX": -math.inf}

#: Round cap for oracle fixpoints; hitting it raises OracleDiverged.
MAX_ORACLE_ROUNDS = 5000


class OracleError(Exception):
    """The oracle could not evaluate the case (unsupported shape)."""


class OracleDiverged(OracleError):
    """A recursion did not converge within :data:`MAX_ORACLE_ROUNDS`."""


def eval_expr(expr, agg_value, env):
    """Evaluate an annotation expression over plain floats."""
    if isinstance(expr, Num):
        return float(expr.value)
    if isinstance(expr, Ref):
        if expr.name not in env:
            raise OracleError("unknown scalar %r" % expr.name)
        return env[expr.name]
    if isinstance(expr, Agg):
        if agg_value is None:
            raise OracleError("aggregate outside aggregation")
        return agg_value
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, agg_value, env)
        right = eval_expr(expr.right, agg_value, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
    raise OracleError("unknown expression node %r" % (expr,))


def _derivations(rule, catalog):
    """Yield ``(binding, annotation_product)`` for every consistent
    assignment of the body, by backtracking atom by atom."""
    atoms = rule.body
    tables = []
    for atom in atoms:
        if atom.name not in catalog:
            raise OracleError("unknown relation %r" % atom.name)
        tables.append(catalog[atom.name])

    def backtrack(index, binding, product):
        if index == len(atoms):
            yield dict(binding), product
            return
        atom = atoms[index]
        tuples, annotations = tables[index]
        for row in tuples:
            bound = []
            ok = True
            for term, value in zip(atom.terms, row):
                if isinstance(term, Constant):
                    if term.value != value:
                        ok = False
                        break
                elif isinstance(term, Variable):
                    existing = binding.get(term.name)
                    if existing is None:
                        binding[term.name] = value
                        bound.append(term.name)
                    elif existing != value:
                        ok = False
                        break
            if ok:
                factor = annotations[row] if annotations is not None \
                    else 1.0
                yield from backtrack(index + 1, binding,
                                     product * factor)
            for name in bound:
                del binding[name]

    yield from backtrack(0, {}, 1.0)


def _eval_rule(rule, catalog, env):
    """Evaluate one non-recursive rule body; returns a normalized
    ``(kind, value)`` result."""
    head = tuple(rule.head_vars)
    aggs = rule.aggregates
    if len(aggs) > 1:
        raise OracleError("more than one aggregate")
    agg = aggs[0] if aggs else None

    if agg is not None and agg.op == "COUNT" and agg.arg != "*":
        distinct = set()
        for binding, _ in _derivations(rule, catalog):
            distinct.add(tuple(binding[v] for v in head)
                         + (binding[agg.arg],))
        counts = {}
        for row in distinct:
            counts[row[:-1]] = counts.get(row[:-1], 0) + 1
        if not head:
            value = eval_expr(rule.assignment, float(counts.get((), 0)),
                              env)
            return "scalar", float(value)
        return "map", {key: float(eval_expr(rule.assignment,
                                            float(count), env))
                       for key, count in counts.items()}

    if agg is not None:
        op = agg.op
        folded = {}
        for binding, product in _derivations(rule, catalog):
            key = tuple(binding[v] for v in head)
            if op in ("SUM", "COUNT"):
                folded[key] = folded.get(key, 0.0) + product
            elif op == "MIN":
                folded[key] = min(folded.get(key, math.inf), product)
            else:
                folded[key] = max(folded.get(key, -math.inf), product)
        if not head:
            agg_value = folded.get((), FOLD_ZERO[op])
            return "scalar", float(eval_expr(rule.assignment, agg_value,
                                             env))
        return "map", {key: float(eval_expr(rule.assignment, value, env))
                       for key, value in folded.items()}

    # No aggregate: set semantics (optionally with a constant
    # annotation).
    keys = set()
    for binding, _ in _derivations(rule, catalog):
        keys.add(tuple(binding[v] for v in head))
    if rule.annotation is not None:
        value = float(eval_expr(rule.assignment, None, env))
        if not head:
            return "scalar", value if keys else 0.0
        return "map", {key: value for key in keys}
    if not head:
        return "exists", bool(keys)
    return "set", frozenset(keys)


def _as_table(kind, value):
    """Convert a normalized result into a catalog entry
    ``(tuples, {tuple: annotation} | None)``."""
    if kind == "set":
        return sorted(value), None
    if kind == "map":
        return sorted(value), dict(value)
    if kind == "scalar":
        return [], None  # 0-ary scalars join through env, not atoms
    if kind == "exists":
        return ([()] if value else []), None
    raise OracleError("unknown result kind %r" % kind)


def _eval_recursive(rule, catalog, env):
    """Run one recursive rule against the current catalog entry for its
    head (the base case) and return the normalized fixpoint."""
    name = rule.head_name
    if name not in catalog:
        raise OracleError("recursive rule %r lacks a base case" % name)
    aggs = rule.aggregates
    op = aggs[0].op if aggs else None

    if rule.iterations is not None:
        # Replace semantics: unroll, each round reading the previous
        # round's result.
        current = catalog[name]
        result = None
        for _ in range(rule.iterations):
            kind, value = _eval_rule(rule, catalog, env)
            result = (kind, value)
            current = _as_table(kind, value)
            catalog[name] = current
        if result is None:  # zero iterations: the base case stands
            tuples, annotations = catalog[name]
            result = ("map", dict(annotations)) if annotations is not None \
                else ("set", frozenset(tuples))
        return result

    if op is None:
        # Union fixpoint over set semantics.
        current = set(catalog[name][0])
        for _ in range(MAX_ORACLE_ROUNDS):
            catalog[name] = (sorted(current), None)
            kind, value = _eval_rule(rule, catalog, env)
            if kind != "set":
                raise OracleError("union recursion produced %r" % kind)
            merged = current | set(value)
            if len(merged) == len(current):
                return "set", frozenset(current)
            current = merged
        raise OracleDiverged("union recursion on %r" % name)

    if op not in ("MIN", "MAX"):
        raise OracleError("unbounded recursion with non-monotone %r" % op)
    better = (lambda new, old: new < old) if op == "MIN" \
        else (lambda new, old: new > old)
    tuples, annotations = catalog[name]
    if annotations is None:
        raise OracleError("monotone recursion needs an annotated base")
    best = dict(annotations)
    for _ in range(MAX_ORACLE_ROUNDS):
        catalog[name] = (sorted(best), dict(best))
        kind, value = _eval_rule(rule, catalog, env)
        if kind != "map":
            raise OracleError("monotone recursion produced %r" % kind)
        improved = False
        for key, produced in value.items():
            old = best.get(key)
            if old is None or better(produced, old):
                best[key] = produced
                improved = True
        if not improved:
            return "map", dict(best)
    raise OracleDiverged("monotone recursion on %r" % name)


def evaluate_case(case):
    """Evaluate a :class:`~repro.fuzz.gen.FuzzCase` from scratch.

    Returns ``{head_name: (kind, value)}`` with the *final* value of
    every derived head (a recursive pair reports its fixpoint).  Raises
    :class:`OracleError` for programs outside the supported shape and
    :class:`OracleDiverged` for non-terminating recursion.
    """
    catalog = {}
    env = {}
    for relation in case.relations:
        annotations = None
        if relation.annotations is not None:
            annotations = {tuple(row): float(a)
                           for row, a in zip(relation.tuples,
                                             relation.annotations)}
        catalog[relation.name] = ([tuple(row) for row in relation.tuples],
                                  annotations)
    results = {}
    for rule in case.rules:
        if rule.recursive:
            kind, value = _eval_recursive(rule, catalog, env)
        else:
            kind, value = _eval_rule(rule, catalog, env)
        results[rule.head_name] = (kind, value)
        catalog[rule.head_name] = _as_table(kind, value)
        if kind == "scalar":
            env[rule.head_name] = value
    return results
