"""Keyed result cache with surgical, version-stamped invalidation.

The cache key is the program's **canonical optimized-IR identity**:
the tuple of per-rule :meth:`~repro.lir.ir.LogicalRule.cache_key`
values (alpha-renaming invariant, catalog-resolved) plus the engine's
:func:`~repro.engine.plan_cache.config_signature` — two textually
different programs that optimize to the same logical plan under the
same config share one entry.  Programs the optimizer cannot resolve
standalone (e.g. a later rule reading an earlier rule's head, which is
not in the catalog at key time) fall back to a text-digest key; parse
failures are uncacheable.

Validity is **relation version stamps**: each entry records, for every
relation its program reads, the server's invalidation epoch at
execution time — and for every head it installs, the epoch right
after its own install bump.  ``Database.append`` / ``delete`` bump the
mutated relation's epoch (riding the PR 9 versioned-catalog signal),
so a mutation invalidates exactly the entries whose read set contains
the mutated relation — results over untouched relations stay warm.
The head stamps cover the catalog state a hit implicitly promises: a
*foreign* program installing the same head name bumps its epoch and
evicts the entry, so a hit always means the catalog still holds this
program's head content.  Read sets expand through materialized-view
dependencies: an entry reading view ``V`` also stamps ``V``'s base
relations, because mutating a base changes ``V``'s contents on its
next refresh.

The server (not this module) decides *when* lookups are safe: a query
admitted while a mutation is pending on one of its read relations
bypasses the cache and executes in admission order instead (snapshot
consistency; see ``docs/serving.md``).
"""

from collections import OrderedDict

from ..engine.plan_cache import config_signature
from ..lir import OptimizerOptions, optimize_rule
from ..obs.telemetry import key_digest, text_digest
from ..query.ast import expression_refs
from ..query.parser import parse


def program_identity(db, text):
    """Cache identity of one program against ``db``'s current catalog.

    Returns ``(key, read_set, head_names)``:

    * ``key`` — digest of the optimized-IR identity + config signature
      (or a text-digest fallback when rules cannot be resolved
      standalone);
    * ``read_set`` — frozenset of relation names the program reads
      (body atoms and expression refs, minus its own heads, expanded
      through materialized-view dependencies);
    * ``head_names`` — tuple of head relations the program installs.

    Raises whatever :func:`~repro.query.parser.parse` raises on a
    malformed program — callers treat that as "uncacheable" and let
    execution surface the real error.
    """
    program = parse(text)
    rules = list(program.rules)
    heads = []
    for rule in rules:
        if rule.head_name not in heads:
            heads.append(rule.head_name)
    head_set = set(heads)
    reads = set()
    for rule in rules:
        for atom in rule.body:
            reads.add(atom.name)
        if rule.assignment is not None:
            reads.update(expression_refs(rule.assignment))
    reads -= head_set
    # Expand through materialized views, transitively: mutating a base
    # relation changes the view's contents on its next refresh, so an
    # entry reading the view must also stamp the base.
    views = db.views
    stack = list(reads)
    while stack:
        name = stack.pop()
        view = views.get(name)
        if view is None:
            continue
        for dep in view.deps:
            if dep not in reads:
                reads.add(dep)
                stack.append(dep)
    signature = config_signature(db.config)
    options = OptimizerOptions.from_config(db.config)
    try:
        parts = tuple(optimize_rule(rule, db.catalog, options).cache_key()
                      for rule in rules)
    except Exception:
        # Multi-rule programs whose later rules read not-yet-installed
        # intermediate heads (or any other standalone-resolution
        # failure): key on the text instead.  Still correct — just a
        # coarser identity.
        parts = ("text", text_digest(text))
    return (key_digest((parts, signature)), frozenset(reads),
            tuple(heads))


class ResultCache:
    """LRU-bounded result cache stamped with invalidation epochs.

    Entries map ``key`` → ``{"payload", "rows", "stamps"}`` where
    ``stamps`` is ``{relation name: epoch at execution}`` covering the
    program's read set *and* its installed heads.  A lookup whose
    stamps disagree with the current epochs evicts the entry and
    misses.  All methods run on the server's event loop — no internal
    locking needed.
    """

    def __init__(self, capacity=256):
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.invalidations = 0

    def __len__(self):
        return len(self._entries)

    def lookup(self, key, epochs):
        """The entry for ``key`` if still valid under ``epochs``, else
        ``None`` (stale entries are evicted on the way out).  Updates
        the hit/miss counters."""
        entry = self._entries.get(key)
        if entry is not None:
            for name, stamp in entry["stamps"].items():
                if epochs.get(name, 0) != stamp:
                    del self._entries[key]
                    self.invalidations += 1
                    entry = None
                    break
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key, payload, rows, stamps):
        self._entries[key] = {"payload": payload, "rows": rows,
                              "stamps": dict(stamps)}
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate_names(self, names):
        """Evict every entry whose read set intersects ``names``;
        returns the eviction count."""
        names = set(names)
        doomed = [key for key, entry in self._entries.items()
                  if names & entry["stamps"].keys()]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self):
        evicted = len(self._entries)
        self._entries.clear()
        self.invalidations += evicted
        return evicted

    def snapshot(self):
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "bypasses": self.bypasses,
                "invalidations": self.invalidations,
                "capacity": self.capacity}
