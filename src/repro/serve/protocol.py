"""Wire protocol of the query service: newline-delimited JSON.

One request per line, one response per line, both UTF-8 JSON objects.
Requests carry ``op`` plus op-specific fields (and an optional ``id``
echoed back verbatim so clients can pipeline); responses carry
``status`` — ``"ok"``, ``"error"`` (with ``error``/``error_class``/
``code``), or ``"rejected"`` (backpressure, with ``retry_after``
seconds).

Ops
---
``query``
    ``text`` (program), optional ``timeout`` seconds.  Reply:
    ``rows``, ``elapsed_seconds``, ``cached`` (result-cache hit?), and
    ``result`` — the last head in the normalized payload form below.
``append`` / ``delete``
    ``name``, ``tuples`` (list of rows), optional ``annotations`` /
    ``combine``.  Reply: ``changed`` row count.
``add_relation``
    ``name``, ``tuples``, optional ``annotations`` / ``arity`` /
    ``combine``.
``materialize``
    ``name``, ``text`` — register a materialized view.
``relation``
    ``name`` — fetch a stored relation as a normalized payload
    (executed in admission order, so it reads post-mutation state).
``status`` / ``ping``
    Introspection; never admission-controlled.
``shutdown``
    Begin a graceful drain; the reply acknowledges before the drain
    completes.

Result payloads
---------------
Relations normalize to a JSON-safe ``kind``-tagged object mirroring
the fuzzer's engine-independent form, so differential comparison
against direct :class:`~repro.api.Database` execution is lossless:

* ``{"kind": "scalar", "value": float}`` — 0-ary annotated result;
* ``{"kind": "exists", "value": bool}`` — 0-ary set result;
* ``{"kind": "set", "rows": [[v, ...], ...]}`` — decoded tuples;
* ``{"kind": "map", "items": [[[v, ...], float], ...]}`` — decoded
  tuples with annotations.
"""

import json

#: Protocol version, reported by ``status``.
PROTOCOL_VERSION = 1

#: Hard ceiling on one request/response line (defends the daemon
#: against unframed garbage on the socket).
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Ops that go through admission control and the executor.
EXECUTED_OPS = ("query", "append", "delete", "add_relation",
                "materialize", "relation")

#: Ops answered immediately on the event loop.
IMMEDIATE_OPS = ("ping", "status", "shutdown")


def encode_message(message):
    """One JSON line, ready to write to the socket."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode_message(line):
    """Parse one request/response line; raises ``ValueError`` on
    garbage (non-JSON, or a non-object)."""
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


def _plain(value):
    """JSON-safe form of one decoded tuple element (numpy scalars
    collapse to their Python value; everything else passes through)."""
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (str, bytes)):
        return item()
    return value


def normalize_relation(relation, fallback_dictionary):
    """Collapse a stored :class:`~repro.storage.relation.Relation` to
    an engine-independent ``(kind, value)`` — decoded tuples, plain
    floats — matching the fuzzer's normalization."""
    if relation.arity == 0:
        if relation.annotations is not None:
            return "scalar", float(relation.annotations[0])
        return "exists", relation.cardinality > 0
    dictionaries = relation.dictionaries
    if dictionaries is None:
        dictionaries = [fallback_dictionary] * relation.arity
    rows = []
    for row in relation.data:
        rows.append(tuple(_plain(dictionaries[c].decode(v))
                          for c, v in enumerate(row)))
    if relation.annotations is not None:
        return "map", {row: float(a)
                       for row, a in zip(rows, relation.annotations)}
    return "set", frozenset(rows)


def payload_from_relation(relation, fallback_dictionary):
    """Normalized JSON payload of a relation (see module docstring)."""
    kind, value = normalize_relation(relation, fallback_dictionary)
    if kind == "scalar":
        return {"kind": "scalar", "value": value}
    if kind == "exists":
        return {"kind": "exists", "value": value}
    if kind == "set":
        return {"kind": "set",
                "rows": sorted((list(row) for row in value), key=repr)}
    return {"kind": "map",
            "items": sorted(([list(row), annotation]
                             for row, annotation in value.items()),
                            key=repr)}


def payload_to_outcome(payload):
    """Inverse of :func:`payload_from_relation`: reconstruct the
    fuzzer's normalized ``(kind, value)`` from a wire payload."""
    kind = payload["kind"]
    if kind == "scalar":
        return "scalar", float(payload["value"])
    if kind == "exists":
        return "exists", bool(payload["value"])
    if kind == "set":
        return "set", frozenset(tuple(row) for row in payload["rows"])
    return "map", {tuple(row): float(annotation)
                   for row, annotation in payload["items"]}
