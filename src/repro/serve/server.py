"""The asyncio query daemon: admission control, result cache, drain.

One :class:`QueryService` wraps one :class:`~repro.api.Database` and
serves the :mod:`repro.serve.protocol` over TCP.  Design:

**Single-writer execution.**  ``Database`` is not thread-safe (even a
read query installs intermediate heads into the catalog), so every
admitted op — queries, mutations, relation fetches — runs on a
one-thread executor in **admission order**.  That FIFO is the whole
consistency story: a query admitted before a mutation executes before
it and sees the pre-mutation catalog; a query admitted after it sees
the post-mutation catalog.  The event loop never touches the database
except through the pool.

**Admission control.**  At most ``max_inflight`` requests hold a slot
(admitted, response not yet sent).  Excess requests are rejected
immediately with ``status="rejected"`` and a ``retry_after`` estimate
(429 semantics) — the daemon never buffers unbounded work.  Per-query
timeouts cover queue wait + execution; a timed-out request gets a
structured error and releases its slot at once, while its (already
running) worker computation finishes in the background and still
applies its effects — a timeout is a response deadline, not an abort.

**Result cache.**  Cacheable queries are keyed by optimized-IR
identity (:func:`~repro.serve.cache.program_identity`); entries stamp
the invalidation epoch of every relation they read *and* every head
they install (so a foreign program reinstalling the same head name
invalidates them).  Program identity itself touches the live catalog,
so it is only ever *computed* on the worker thread — serialized with
every mutation; the event loop consults a memo and, when that memo is
cold, defers the whole decision to the worker, which probes the cache
at its FIFO position (where every earlier op has applied its effects
and nothing later has run — a hit there is trivially bit-identical to
serial replay).  Completed ops apply their *effects* on the event loop
in completion (= admission) order: mutations bump the mutated
relation's epoch and evict entries stamped with it; executed queries
bump their installed heads' epochs and store their payload.  A query
arriving while a mutation (or an overlapping execution) is pending on
one of its relations *bypasses* the memo fast path and executes FIFO
instead — a loop-side hit is only served when nothing that could
change its answer is in flight.

**Drain.**  ``shutdown`` (the op, SIGTERM, or SIGINT) stops admitting
(new requests are rejected with ``code="shutting_down"``), waits up to
``drain_timeout`` for in-flight work, closes the listener and every
client connection (Python ≥ 3.12 makes ``Server.wait_closed`` block
until all handlers exit, and an idle client holding its socket open
must not stall the drain), closes the telemetry hub (flight recorder
post-mortem + OpenMetrics flush), and stops the loop.

Telemetry plugs into the PR 8 pipeline: executed queries carry
``result_cache`` / ``queue_seconds`` in their query-log records via
``Database.query(_record_extra=...)``; cache hits synthesize a full
schema-valid record on the event loop (the hub is thread-safe).
"""

import asyncio
import concurrent.futures
import sys
import threading
import time

from ..engine.plan_cache import config_signature
from ..errors import EmptyHeadedError
from . import protocol
from .cache import ResultCache, program_identity

#: Pending-mark token for mutations (see ``QueryService._pending``).
_MUTATION = "__mutation__"


class QueryService:
    """A long-lived daemon wrapping one warm :class:`~repro.api.Database`.

    Parameters
    ----------
    db:
        The database to serve.  Its plan cache, trie cache, and arena
        stay warm across every request.
    host / port:
        Bind address; port 0 picks a free port (read ``service.port``
        after :meth:`start`).
    max_inflight:
        Admission-slot count: requests admitted but not yet answered.
        Excess requests are rejected with ``retry_after``.
    default_timeout:
        Per-query timeout (seconds) when the request carries none;
        ``None`` = no timeout.
    drain_timeout:
        Graceful-shutdown budget for in-flight work.
    cache_capacity:
        Result-cache entry bound (LRU).
    telemetry_dir:
        Enable continuous telemetry into this directory (query log,
        flight recorder, OpenMetrics) unless the database already has
        a hub.
    debug:
        Honor the ``debug_sleep`` request field (fault-injection
        hooks for tests); never enable in production.
    announce:
        Print ``repro serve listening on host:port`` once bound (the
        CLI sets this so subprocess harnesses can discover port 0).
    """

    def __init__(self, db, host="127.0.0.1", port=0, max_inflight=32,
                 default_timeout=None, drain_timeout=5.0,
                 cache_capacity=256, telemetry_dir=None, debug=False,
                 announce=False):
        self.db = db
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.default_timeout = default_timeout
        self.drain_timeout = drain_timeout
        self.debug = debug
        self.announce = announce
        if telemetry_dir is not None and db.telemetry is None:
            db.enable_telemetry(directory=telemetry_dir)
        self.hub = db.telemetry
        self.cache = ResultCache(cache_capacity)
        #: ``{relation name: invalidation epoch}`` — bumped by applied
        #: mutations and query head installs; result-cache validity.
        self._epochs = {}
        #: Coarse epoch for the program-identity memo: bumped by any
        #: op that can change name resolution or dictionary encodings.
        self._identity_epoch = 0
        self._identity_memo = {}  # text -> (identity_epoch, identity)
        #: ``{relation name: {token: count}}`` of admitted-but-
        #: unfinished ops that will mutate or install the relation.
        #: Mutations mark with :data:`_MUTATION`; query executions mark
        #: their heads with their own cache key, so a *same-program*
        #: request can still be served from the cache (its concurrent
        #: execution installs identical content) while foreign readers
        #: of the head bypass to FIFO execution.
        self._pending = {}
        self._pending_global = 0
        self._connections = set()  # open client writers, loop-owned
        self._inflight = 0
        self._outstanding = 0  # dispatched ops whose effects are unapplied
        self._draining = False
        self._ewma_seconds = 0.01
        self.requests = 0
        self.rejected = 0
        self.timeouts = 0
        self.started = time.time()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve")
        self._loop = None
        self._server = None
        self._stopped = None
        self._thread = None
        self._ready = None

    # -- lifecycle ----------------------------------------------------------

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.announce:
            print("repro serve listening on %s:%d"
                  % (self.host, self.port), flush=True)
        if self._ready is not None:
            self._ready.set()
        await self._stopped.wait()

    def serve_forever(self, install_signal_handlers=True):
        """Run the daemon on this thread until drained (the CLI path).

        SIGTERM/SIGINT begin a graceful drain whose flight-recorder
        dump is tagged with the signal name.
        """
        async def runner():
            if install_signal_handlers:
                import signal
                loop = asyncio.get_running_loop()
                for signum in (signal.SIGTERM, signal.SIGINT):
                    name = signal.Signals(signum).name.lower()
                    loop.add_signal_handler(
                        signum,
                        lambda reason=name: asyncio.ensure_future(
                            self._shutdown(reason)))
            await self._main()
        asyncio.run(runner())

    def start(self):
        """Run the daemon on a background thread; returns ``self`` once
        the port is bound (tests, the fuzz oracle, benchmarks)."""
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("query service failed to start")
        return self

    def stop(self, reason="stop"):
        """Drain and stop a :meth:`start`-ed daemon (idempotent)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown(reason), loop)
            future.result(timeout=self.drain_timeout + 30)
        if self._thread is not None:
            self._thread.join(timeout=30)

    async def _shutdown(self, reason):
        if self._draining:
            return
        self._draining = True
        deadline = self._loop.time() + self.drain_timeout
        while (self._inflight or self._outstanding) \
                and self._loop.time() < deadline:
            await asyncio.sleep(0.01)
        self._server.close()
        # Close every client connection explicitly: readline() in the
        # handlers returns EOF and they exit.  On Python >= 3.12.1,
        # Server.wait_closed() blocks until all handlers finish, so an
        # idle client holding its socket open would otherwise stall
        # the drain forever.  Responses already computed are flushed
        # before the transport sends FIN; a handler still waiting on
        # its worker past the drain deadline loses its reply — that is
        # the documented drain-deadline behavior.
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:  # pragma: no cover - already closing
                pass
        try:
            await asyncio.wait_for(self._server.wait_closed(),
                                   timeout=1.0)
        except asyncio.TimeoutError:  # pragma: no cover - zombie handler
            pass
        if self.hub is not None and not self.hub.closed:
            self.hub.close(dump_reason=reason)
        self._pool.shutdown(wait=False)
        self._stopped.set()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader, writer):
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode_message(
                        {"status": "error", "code": "oversized",
                         "error": "request line exceeds %d bytes"
                                  % protocol.MAX_LINE_BYTES}))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = protocol.decode_message(line)
                except ValueError as error:
                    writer.write(protocol.encode_message(
                        {"status": "error", "code": "bad_request",
                         "error": "unparseable request: %s" % error}))
                    await writer.drain()
                    continue
                try:
                    response = await self._dispatch(request)
                except Exception as error:
                    # An internal fault must produce an error reply,
                    # not kill the connection task with an unretrieved
                    # exception.
                    response = {"status": "error", "code": "internal",
                                "error": "%s: %s"
                                         % (type(error).__name__,
                                            error),
                                "error_class": type(error).__name__}
                    if "id" in request:
                        response["id"] = request["id"]
                writer.write(protocol.encode_message(response))
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request):
        op = request.get("op")
        base = {}
        if "id" in request:
            base["id"] = request["id"]
        self.requests += 1
        self.db.metrics.inc("serve.requests", labels={"op": str(op)})
        if op == "ping":
            return dict(base, status="ok", pong=True)
        if op == "status":
            return dict(base, status="ok", server=self._status_payload())
        if op == "shutdown":
            asyncio.ensure_future(self._shutdown(
                str(request.get("reason", "request"))))
            return dict(base, status="ok", draining=True)
        if op not in protocol.EXECUTED_OPS:
            return dict(base, status="error", code="unknown_op",
                        error="unknown op %r" % (op,))
        if self._draining:
            self.rejected += 1
            return dict(base, status="rejected", code="shutting_down",
                        error="server is draining", retry_after=None)
        if self._inflight >= self.max_inflight:
            self.rejected += 1
            self.db.metrics.inc("serve.rejected")
            return dict(base, status="rejected", code="overloaded",
                        error="admission queue is full "
                              "(%d in flight)" % self._inflight,
                        retry_after=self._retry_after())
        self._inflight += 1
        try:
            if op == "query":
                reply = await self._handle_query(request, base)
            else:
                reply = await self._handle_admitted(op, request, base)
        finally:
            self._inflight -= 1
        elapsed = reply.get("elapsed_seconds")
        if isinstance(elapsed, (int, float)):
            self._ewma_seconds = (0.8 * self._ewma_seconds
                                  + 0.2 * max(elapsed, 1e-4))
        self.db.metrics.inc("serve.responses",
                            labels={"op": str(op),
                                    "status": reply.get("status", "ok")})
        return reply

    def _retry_after(self):
        backlog = self._inflight + 1
        return round(max(0.05, self._ewma_seconds * backlog), 4)

    def _status_payload(self):
        for _ in range(4):
            try:
                relations = sorted(self.db.catalog)
                break
            except RuntimeError:
                # The worker thread added a relation mid-iteration;
                # the dict is never left inconsistent, so retry.
                continue
        else:  # pragma: no cover - needs a pathological mutation storm
            relations = []
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "inflight": self._inflight,
            "outstanding": self._outstanding,
            "max_inflight": self.max_inflight,
            "draining": self._draining,
            "uptime_seconds": time.time() - self.started,
            "requests": self.requests,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "pending_relations": {name: sum(tokens.values())
                                  for name, tokens
                                  in self._pending.items() if tokens},
            "result_cache": self.cache.snapshot(),
            "relations": relations,
        }

    # -- epochs and identity -------------------------------------------------

    def _bump_epochs(self, names):
        for name in names:
            self._epochs[name] = self._epochs.get(name, 0) + 1
        if names:
            self.cache.invalidate_names(names)

    def _call_on_loop(self, fn):
        """Run ``fn`` on the event loop from the worker thread and
        return its result, or ``None`` if the loop is gone or
        unresponsive (shutdown races) — callers fall back to plain
        uncached execution."""
        done = concurrent.futures.Future()

        def runner():
            try:
                done.set_result(fn())
            except BaseException as error:
                done.set_exception(error)
        try:
            self._loop.call_soon_threadsafe(runner)
        except RuntimeError:  # pragma: no cover - loop already closed
            return None
        try:
            return done.result(timeout=10)
        except Exception:  # pragma: no cover - loop died mid-probe
            return None

    # -- admitted-op plumbing -------------------------------------------------

    async def _run_on_worker(self, worker, timeout, base,
                             pending_marks=(), pending_global=False):
        """Dispatch ``worker`` to the executor; await with ``timeout``.

        ``pending_marks`` is a tuple of ``(relation name, token)``
        pairs taken *now* (admission) and released by :meth:`_finish`
        when the worker actually completes — which also applies the
        worker's effects on the loop, in completion order.  A timeout
        answers early but never cancels a running worker.
        """
        for name, token in pending_marks:
            bucket = self._pending.setdefault(name, {})
            bucket[token] = bucket.get(token, 0) + 1
        if pending_global:
            self._pending_global += 1
        self._outstanding += 1
        loop = asyncio.get_running_loop()
        future = self._pool.submit(worker)
        marks = tuple(pending_marks)

        def completed(f):
            try:
                loop.call_soon_threadsafe(
                    self._finish, f, marks, pending_global)
            except RuntimeError:  # pragma: no cover - loop closed
                pass  # post-drain zombie; nothing left to account for
        future.add_done_callback(completed)
        wrapped = asyncio.wrap_future(future, loop=loop)
        try:
            reply = await asyncio.wait_for(wrapped, timeout)
        except asyncio.TimeoutError:
            self.timeouts += 1
            self.db.metrics.inc("serve.timeouts")
            return dict(base, status="error", code="timeout",
                        error="request exceeded its %.3gs timeout "
                              "(the admission slot is released; the "
                              "operation may still complete "
                              "server-side)" % timeout)
        except concurrent.futures.CancelledError:
            return dict(base, status="error", code="cancelled",
                        error="request was cancelled before execution")
        except Exception as error:  # pragma: no cover - defensive
            return dict(base, status="error", code="internal",
                        error="%s: %s" % (type(error).__name__, error),
                        error_class=type(error).__name__)
        reply.pop("_effects", None)  # applied by _finish
        reply.update(base)
        return reply

    def _finish(self, future, pending_marks, pending_global):
        """Completion bookkeeping, on the event loop, in completion
        (= admission) order: release pending marks, then apply the
        worker's effects — epoch bumps, invalidation, cache stores."""
        self._outstanding -= 1
        for name, token in pending_marks:
            bucket = self._pending.get(name)
            if bucket is None:
                continue
            remaining = bucket.get(token, 0) - 1
            if remaining > 0:
                bucket[token] = remaining
            else:
                bucket.pop(token, None)
            if not bucket:
                self._pending.pop(name, None)
        if pending_global:
            self._pending_global -= 1
        if future.cancelled():
            return
        error = future.exception()
        if error is not None:
            return
        effects = future.result().get("_effects")
        if not effects:
            return
        if effects.get("identity"):
            self._identity_epoch += 1
        if effects.get("clear"):
            self.cache.clear()
        store = effects.get("store")
        if store is not None:
            # Read stamps are taken *here*, after every earlier op's
            # bumps and before any later op's — exactly the epochs the
            # query executed under.
            stamps = {name: self._epochs.get(name, 0)
                      for name in store["reads"]}
        self._bump_epochs(effects.get("bump", ()))
        if store is not None:
            # Heads are stamped *after* this query's own install bump:
            # the entry promises the catalog still holds this program's
            # head content, so a foreign program installing the same
            # head name later invalidates it.
            for name in store.get("heads", ()):
                stamps[name] = self._epochs.get(name, 0)
            self.cache.store(store["key"], store["payload"],
                             store["rows"], stamps)

    # -- query handling -------------------------------------------------------

    async def _handle_query(self, request, base):
        text = request.get("text")
        if not isinstance(text, str) or not text.strip():
            return dict(base, status="error", code="bad_request",
                        error="query op needs a 'text' string")
        timeout = request.get("timeout", self.default_timeout)
        debug_sleep = request.get("debug_sleep") if self.debug else None
        admitted = time.perf_counter()
        memo = self._identity_memo.get(text)
        if memo is None or memo[0] != self._identity_epoch:
            # Identity unknown (first sight, or invalidated by a
            # mutation).  program_identity parses and optimizes against
            # the live catalog, which the worker thread may be mutating
            # right now — so it must never run on the event loop.  The
            # worker computes it at this request's FIFO position
            # (serialized with every mutation), probes the cache there,
            # and executes on a miss.  Heads are unknown until then, so
            # a global pending mark blocks every fast-path hit for the
            # duration.
            worker = self._deferred_query_worker(text, admitted,
                                                 debug_sleep)
            return await self._run_on_worker(worker, timeout, base,
                                             pending_global=True)
        identity = memo[1]
        tier = "miss"
        if identity is not None and debug_sleep is None:
            key, reads, heads = identity
            if self._hit_blocked(key, reads, heads):
                tier = "bypass"
                self.cache.bypasses += 1
            else:
                entry = self.cache.lookup(key, self._epochs)
                if entry is not None:
                    elapsed = time.perf_counter() - admitted
                    self._record_cache_hit(text, key, entry, elapsed)
                    return dict(base, status="ok", cached=True,
                                rows=entry["rows"],
                                elapsed_seconds=elapsed,
                                result=entry["payload"])
        worker = self._query_worker(text, identity, tier, admitted,
                                    debug_sleep)
        marks = tuple((head, identity[0]) for head in identity[2]) \
            if identity is not None else ()
        return await self._run_on_worker(worker, timeout, base,
                                         pending_marks=marks)

    def _hit_blocked(self, key, reads, heads):
        """May a cache hit for this program be served right now?

        Blocked (→ bypass to FIFO execution) when anything that could
        change the answer — or the catalog state a hit implicitly
        promises — is pending: a materialize anywhere, any pending op
        on a relation the program *reads*, or a **foreign** program
        (different cache key) about to install one of this program's
        heads.  A pending execution of the *same* program does not
        block: its install is identical to what a re-execution of this
        request would produce, so the hit stays bit-identical to
        serial replay.
        """
        if self._pending_global:
            return True
        for name in reads:
            if self._pending.get(name):
                return True
        for name in heads:
            tokens = self._pending.get(name)
            if tokens and (len(tokens) > 1 or key not in tokens):
                return True
        return False

    def _deferred_query_worker(self, text, admitted, debug_sleep):
        """Worker for a query whose identity is not memoized.

        Runs on the pool thread: compute the identity (safe — every
        catalog mutation is serialized onto this same thread), memoize
        it and probe the cache on the event loop, then execute on a
        miss.  The probe happens at this request's FIFO position, so a
        hit there is bit-identical to serial replay: every op admitted
        earlier has completed and applied its effects, and nothing
        admitted later has run.
        """
        def run():
            try:
                identity = program_identity(self.db, text)
            except Exception:
                identity = None  # let execution surface the real error
            entry = self._call_on_loop(
                lambda: self._execution_probe(
                    text, identity, admitted, debug_sleep is not None))
            if entry is not None:
                return {"status": "ok", "cached": True,
                        "rows": entry["rows"],
                        "elapsed_seconds":
                            time.perf_counter() - admitted,
                        "result": entry["payload"]}
            return self._query_worker(text, identity, "miss", admitted,
                                      debug_sleep)()
        return run

    def _execution_probe(self, text, identity, admitted, skip_lookup):
        """On the event loop, at the calling worker job's FIFO
        position: memoize ``identity`` (the epoch is exact — every
        earlier op's effects are applied) and return a valid cache
        entry, if any, recording the hit in the query log."""
        if len(self._identity_memo) > 4 * self.cache.capacity:
            self._identity_memo.clear()
        self._identity_memo[text] = (self._identity_epoch, identity)
        if identity is None or skip_lookup:
            return None
        entry = self.cache.lookup(identity[0], self._epochs)
        if entry is not None:
            self._record_cache_hit(text, identity[0], entry,
                                   time.perf_counter() - admitted)
        return entry

    def _query_worker(self, text, identity, tier, admitted, debug_sleep):
        def run():
            queued = time.perf_counter() - admitted
            extra = None
            if self.hub is not None:
                extra = {"result_cache": tier, "queue_seconds": queued}
            if debug_sleep:
                original = self.db._query_plain

                def slow(query_text):
                    time.sleep(float(debug_sleep))
                    return original(query_text)
                self.db._query_plain = slow
            start = time.perf_counter()
            try:
                result = self.db.query(text, _record_extra=extra)
            except EmptyHeadedError as error:
                return {"status": "error", "code": "query_error",
                        "error": str(error),
                        "error_class": type(error).__name__,
                        "elapsed_seconds": time.perf_counter() - start}
            finally:
                if debug_sleep:
                    del self.db.__dict__["_query_plain"]
            elapsed = time.perf_counter() - start
            payload = protocol.payload_from_relation(result.relation,
                                                     self.db._dictionary)
            effects = {}
            reply = {"status": "ok", "cached": False,
                     "rows": int(result.count),
                     "elapsed_seconds": elapsed, "result": payload,
                     "_effects": effects}
            if identity is not None:
                key, reads, heads = identity
                effects["bump"] = list(heads)
                # Bypass executions may store too: stamps are read at
                # _finish in completion order, so the entry records
                # exactly the epochs this execution ran under and any
                # later-completing mutation still invalidates it.
                if tier in ("miss", "bypass"):
                    effects["store"] = {"key": key, "reads": reads,
                                        "heads": heads,
                                        "payload": payload,
                                        "rows": int(result.count)}
            return reply
        return run

    def _record_cache_hit(self, text, key, entry, elapsed):
        """Synthesize a schema-valid query-log record for a hit served
        straight off the event loop (no execution, no plan cache)."""
        hub = self.hub
        if hub is None:
            return
        import os

        from ..obs.telemetry import (QUERY_LOG_VERSION, key_digest,
                                     text_digest)
        signature = config_signature(self.db.config)
        digest = self.db._signature_memo.get(signature)
        if digest is None:
            digest = self.db._signature_memo[signature] = \
                key_digest(signature)
        record = {
            "schema_version": QUERY_LOG_VERSION,
            "query_id": hub.next_query_id(),
            "ts": time.time(),
            "pid": os.getpid(),
            "status": "ok",
            "text_sha": text_digest(text),
            "text": text if len(text) <= 2048 else text[:2048],
            "execution_mode": self.db.config.execution_mode,
            "config_signature": digest,
            "cache_key": key,
            "elapsed_seconds": elapsed,
            "rows": entry["rows"],
            # No plan_cache field: a served hit never touches the plan
            # cache, and inventing a sentinel tier would pollute the
            # telemetry.plan_cache counter series.
            "result_cache": "hit",
            "queue_seconds": 0.0,
        }
        hub.record_query(record)

    # -- mutation / catalog ops ----------------------------------------------

    async def _handle_admitted(self, op, request, base):
        timeout = request.get("timeout", self.default_timeout)
        name = request.get("name")
        if not isinstance(name, str):
            return dict(base, status="error", code="bad_request",
                        error="%s op needs a 'name' string" % op)
        marks = ((name, _MUTATION),)
        if op in ("append", "delete"):
            worker = self._mutation_worker(op, name, request)
            return await self._run_on_worker(worker, timeout, base,
                                             pending_marks=marks)
        if op == "add_relation":
            worker = self._add_relation_worker(name, request)
            return await self._run_on_worker(worker, timeout, base,
                                             pending_marks=marks)
        if op == "materialize":
            worker = self._materialize_worker(name, request)
            return await self._run_on_worker(worker, timeout, base,
                                             pending_marks=marks,
                                             pending_global=True)
        worker = self._relation_worker(name)  # op == "relation"
        return await self._run_on_worker(worker, timeout, base)

    def _mutation_worker(self, op, name, request):
        tuples = [tuple(row) for row in request.get("tuples", ())]
        annotations = request.get("annotations")
        combine = request.get("combine", "last")

        def run():
            start = time.perf_counter()
            try:
                if op == "append":
                    changed = self.db.append(name, tuples,
                                             annotations=annotations,
                                             combine=combine)
                else:
                    changed = self.db.delete(name, tuples)
            except EmptyHeadedError as error:
                return {"status": "error", "code": "mutation_error",
                        "error": str(error),
                        "error_class": type(error).__name__,
                        "elapsed_seconds": time.perf_counter() - start,
                        "_effects": {"identity": True}}
            return {"status": "ok", "changed": int(changed),
                    "elapsed_seconds": time.perf_counter() - start,
                    "_effects": {"identity": True,
                                 "bump": [name] if changed else []}}
        return run

    def _add_relation_worker(self, name, request):
        tuples = [tuple(row) for row in request.get("tuples", ())]
        annotations = request.get("annotations")
        arity = request.get("arity")
        combine = request.get("combine", "last")

        def run():
            start = time.perf_counter()
            try:
                relation = self.db.add_relation(
                    name, tuples, annotations=annotations,
                    combine=combine, arity=arity)
            except EmptyHeadedError as error:
                return {"status": "error", "code": "mutation_error",
                        "error": str(error),
                        "error_class": type(error).__name__,
                        "elapsed_seconds": time.perf_counter() - start,
                        "_effects": {"identity": True}}
            return {"status": "ok", "rows": int(relation.cardinality),
                    "elapsed_seconds": time.perf_counter() - start,
                    "_effects": {"identity": True, "bump": [name]}}
        return run

    def _materialize_worker(self, name, request):
        text = request.get("text", "")

        def run():
            start = time.perf_counter()
            try:
                result = self.db.materialize(name, text)
            except EmptyHeadedError as error:
                return {"status": "error", "code": "query_error",
                        "error": str(error),
                        "error_class": type(error).__name__,
                        "elapsed_seconds": time.perf_counter() - start,
                        "_effects": {"identity": True, "clear": True}}
            return {"status": "ok", "rows": int(result.count),
                    "elapsed_seconds": time.perf_counter() - start,
                    "_effects": {"identity": True, "clear": True,
                                 "bump": [name]}}
        return run

    def _relation_worker(self, name):
        def run():
            start = time.perf_counter()
            try:
                relation = self.db.relation(name)
            except EmptyHeadedError as error:
                return {"status": "error", "code": "unknown_relation",
                        "error": str(error),
                        "error_class": type(error).__name__,
                        "elapsed_seconds": time.perf_counter() - start}
            payload = protocol.payload_from_relation(relation,
                                                     self.db._dictionary)
            return {"status": "ok", "rows": int(relation.cardinality),
                    "elapsed_seconds": time.perf_counter() - start,
                    "result": payload}
        return run


def main(argv=None):
    """``python -m repro.serve`` — forwards to ``repro serve``."""
    from ..cli import main as cli_main
    argv = sys.argv[1:] if argv is None else argv
    return cli_main(["serve"] + list(argv))
