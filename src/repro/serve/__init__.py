"""Query service layer: a long-lived daemon wrapping one ``Database``.

EmptyHeaded's compiled-query design (parse → GHD → codegen amortized
across runs, §3.3) only pays off when plans and tries stay warm across
many requests.  This package keeps them warm: :class:`~repro.serve.
server.QueryService` holds a single :class:`~repro.api.Database` —
with its plan cache, trie cache, GHD band memo, and shared-memory
arena — behind a newline-delimited-JSON socket protocol
(:mod:`repro.serve.protocol`), adds an admission-controlled request
queue with per-query timeouts and 429-style backpressure, layers a
keyed **result cache** on top (:mod:`repro.serve.cache`, invalidated
surgically by the PR 9 versioned-catalog mutation path), and drains
gracefully on shutdown.  :class:`~repro.serve.client.ServeClient` is
the blocking client the tests, the fuzzer's ``--serve`` oracle, and
``benchmarks/bench_serve.py`` all use.

Start one from the CLI (``repro serve --dataset patents``), or
in-process::

    from repro import Database
    from repro.serve import QueryService, ServeClient

    db = Database()
    db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)])
    service = QueryService(db).start()
    with ServeClient(port=service.port) as client:
        reply = client.query("T(x,y) :- Edge(x,y).")
    service.stop()

See ``docs/serving.md`` for the protocol and the consistency contract.
"""

from .cache import ResultCache, program_identity
from .client import ServeClient
from .server import QueryService

__all__ = ["QueryService", "ServeClient", "ResultCache",
           "program_identity"]
