"""``python -m repro.serve`` — alias for ``repro serve``."""

import sys

from .server import main

if __name__ == "__main__":
    sys.exit(main())
