"""Blocking client for the query service (tests, fuzzer, benchmarks).

One :class:`ServeClient` is one TCP connection speaking the
newline-delimited-JSON protocol of :mod:`repro.serve.protocol`.  It is
deliberately synchronous — one request, one reply, in order — because
every consumer in this repo (the concurrency tests, the fuzzer's
``--serve`` oracle, ``bench_serve``) wants per-request latencies and
deterministic interleaving; concurrency comes from running many
clients, not from pipelining one.

Not thread-safe: share nothing, give each thread its own client.
"""

import socket
import time

from . import protocol


class ServeError(RuntimeError):
    """An ``error``/``rejected`` reply surfaced as an exception (only
    by :meth:`ServeClient.call` with ``check=True``)."""

    def __init__(self, reply):
        super().__init__(reply.get("error", reply.get("status")))
        self.reply = reply
        self.code = reply.get("code")


class ServeClient:
    """Blocking NDJSON client; usable as a context manager."""

    def __init__(self, host="127.0.0.1", port=None, timeout=30.0):
        if port is None:
            raise ValueError("ServeClient needs the daemon's port")
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def close(self):
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def call(self, op, check=False, **fields):
        """Send one request, return the decoded reply.

        ``check=True`` raises :class:`ServeError` on ``error`` /
        ``rejected`` replies instead of returning them.
        """
        request = dict(fields, op=op)
        self._sock.sendall(protocol.encode_message(request))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply = protocol.decode_message(line)
        if check and reply.get("status") != "ok":
            raise ServeError(reply)
        return reply

    # Convenience wrappers — thin, so tests can still reach call()
    # directly for malformed-request cases.

    def ping(self):
        return self.call("ping")

    def status(self):
        return self.call("status", check=True)["server"]

    def query(self, text, **fields):
        return self.call("query", text=text, **fields)

    def append(self, name, tuples, **fields):
        return self.call("append", name=name,
                         tuples=[list(row) for row in tuples], **fields)

    def delete(self, name, tuples, **fields):
        return self.call("delete", name=name,
                         tuples=[list(row) for row in tuples], **fields)

    def add_relation(self, name, tuples, **fields):
        return self.call("add_relation", name=name,
                         tuples=[list(row) for row in tuples], **fields)

    def materialize(self, name, text, **fields):
        return self.call("materialize", name=name, text=text, **fields)

    def relation(self, name, **fields):
        return self.call("relation", name=name, **fields)

    def shutdown(self, reason="request"):
        return self.call("shutdown", reason=reason)

    def call_with_retry(self, op, attempts=10, max_wait=5.0, **fields):
        """Honor backpressure: on ``rejected``, sleep the server's
        ``retry_after`` hint and retry (load generators use this)."""
        last = None
        for _ in range(attempts):
            reply = self.call(op, **fields)
            if reply.get("status") != "rejected":
                return reply
            last = reply
            wait = reply.get("retry_after") or 0.05
            time.sleep(min(float(wait), max_wait))
        return last
