"""A pairwise hash-join relational engine (the RDBMS-class baseline).

This is the "traditional join engine" the paper argues against: it
evaluates conjunctive queries with a left-deep sequence of pairwise hash
joins, which on cyclic patterns like the triangle is provably
``Ω(N^2)`` — asymptotically worse than worst-case optimal plans by a
``√N`` factor (§1).  The Experiments section's PostgreSQL / commercial-DB
comparisons (three orders of magnitude off) trace to exactly this plan
shape, which the asymptotic benchmark reproduces.
"""

import numpy as np


class PairwiseEngine:
    """Minimal relational engine: named relations + left-deep hash joins."""

    def __init__(self):
        self.relations = {}

    def add(self, name, data):
        """Register an ``(n, k)`` integer array as relation ``name``."""
        self.relations[name] = np.asarray(data, dtype=np.int64)

    def count_conjunctive(self, atoms, counter=None):
        """COUNT(*) of a conjunctive query.

        ``atoms`` is a list of ``(relation_name, variable_tuple)`` pairs;
        the join order is the given atom order (left-deep), each step a
        hash join — no join reordering smarts, as in the paper's naive
        baseline.  A supplied :class:`~repro.sets.cost.OpCounter` is
        charged one scalar op per tuple probed or produced, which is how
        the quadratic intermediate results show up in the op metric.
        """
        if not atoms:
            return 0
        name, variables = atoms[0]
        current = self._project(self.relations[name], variables)
        bound = list(dict.fromkeys(variables))
        work = int(current.shape[0])
        for name, variables in atoms[1:]:
            right = self._project(self.relations[name], variables)
            right_vars = list(dict.fromkeys(variables))
            current, bound = self._hash_join(current, bound, right,
                                             right_vars)
            work += int(right.shape[0]) + int(current.shape[0])
            if current.shape[0] == 0:
                break
        if counter is not None:
            counter.charge("pairwise_hash_join", scalar=work,
                           elements=work)
        return int(current.shape[0])

    def triangle_count(self, edges, counter=None):
        """Triangle count via ``R ⋈ S`` then ``⋈ T`` — the quadratic
        intermediate result the paper's Example bounds describe."""
        self.add("E", edges)
        return self.count_conjunctive([
            ("E", ("x", "y")), ("E", ("y", "z")), ("E", ("x", "z"))],
            counter=counter)

    @staticmethod
    def _project(data, variables):
        """Handle repeated variables within one atom by filtering."""
        data = np.asarray(data, dtype=np.int64)
        seen = {}
        keep = []
        mask = np.ones(data.shape[0], dtype=bool)
        for position, var in enumerate(variables):
            if var in seen:
                mask &= data[:, position] == data[:, seen[var]]
            else:
                seen[var] = position
                keep.append(position)
        return data[mask][:, keep]

    @staticmethod
    def _hash_join(left, left_vars, right, right_vars):
        shared = [v for v in left_vars if v in right_vars]
        left_keys = [left_vars.index(v) for v in shared]
        right_keys = [right_vars.index(v) for v in shared]
        right_extra = [i for i, v in enumerate(right_vars)
                       if v not in shared]
        table = {}
        for row in range(right.shape[0]):
            key = tuple(int(right[row, c]) for c in right_keys)
            table.setdefault(key, []).append(row)
        out = []
        for row in range(left.shape[0]):
            key = tuple(int(left[row, c]) for c in left_keys)
            for match in table.get(key, ()):
                out.append(tuple(left[row])
                           + tuple(right[match, c] for c in right_extra))
        out_vars = list(left_vars) + [right_vars[i] for i in right_extra]
        data = np.asarray(out, dtype=np.int64).reshape(-1, len(out_vars))
        return data, out_vars
