"""A SociaLite-style engine: high-level datalog without WCOJ plans.

SociaLite compiles datalog to bottom-up evaluation over tail-nested
tables, but joins remain *pairwise* — the paper shows this loses orders
of magnitude on cyclic pattern queries (Table 5/8) while staying within
an order of magnitude on PageRank/SSSP (Tables 6/7).  This class
reproduces that profile: pattern queries run through the pairwise join
engine; analytics run as interpreted per-tuple datalog iteration (no
vectorized kernels — SociaLite is JVM-interpreted per tuple).
"""

from .lowlevel import CSRGraph
from .pairwise import PairwiseEngine


class SociaLiteLike:
    """Datalog-style engine with pairwise joins and per-tuple loops."""

    def __init__(self):
        self._pairwise = PairwiseEngine()

    # -- pattern queries (pairwise joins) -----------------------------------

    def triangle_count(self, pruned_edges, counter=None):
        """Triangle count via pairwise hash joins (SociaLite's plan)."""
        return self._pairwise.triangle_count(pruned_edges,
                                             counter=counter)

    def count_conjunctive(self, edges, atoms, counter=None):
        """COUNT(*) of a pattern over a single edge relation."""
        self._pairwise.add("E", edges)
        return self._pairwise.count_conjunctive(
            [("E", vars_) for _, vars_ in atoms], counter=counter)

    # -- analytics (per-tuple datalog iteration) -----------------------------

    def pagerank(self, undirected_edges, iterations=5, damping=0.85,
                 n_nodes=None):
        """Rule-at-a-time PageRank: one pass over the edge *tuples* per
        iteration (SociaLite's relational update), not over CSR rows."""
        graph = CSRGraph(undirected_edges, n_nodes)
        n = graph.n_nodes
        degree = graph.out_degrees.tolist()
        active = sum(1 for d in degree if d)
        rank = [1.0 / active if degree[v] else 0.0 for v in range(n)]
        edge_list = []
        indices = graph.indices.tolist()
        indptr = graph.indptr.tolist()
        for u in range(n):
            for position in range(indptr[u], indptr[u + 1]):
                edge_list.append((u, indices[position]))
        for _ in range(iterations):
            acc = [0.0] * n
            for u, v in edge_list:
                if degree[v]:
                    acc[u] += rank[v] / degree[v]
            rank = [(1.0 - damping) + damping * a for a in acc]
        return {node: rank[node] for node in range(n) if degree[node]}

    def sssp(self, undirected_edges, source, n_nodes=None):
        """Seminaive datalog SSSP over tuples: joins the delta relation
        against the edge tuples each round."""
        graph = CSRGraph(undirected_edges, n_nodes)
        indices = graph.indices.tolist()
        indptr = graph.indptr.tolist()
        distance = {}
        delta = {}
        for position in range(indptr[source], indptr[source + 1]):
            neighbor = indices[position]
            distance[neighbor] = 1
            delta[neighbor] = 1
        while delta:
            produced = {}
            for w, dist in delta.items():
                for position in range(indptr[w], indptr[w + 1]):
                    x = indices[position]
                    candidate = dist + 1
                    if candidate < produced.get(x, float("inf")):
                        produced[x] = candidate
            delta = {}
            for x, dist in produced.items():
                if dist < distance.get(x, float("inf")):
                    distance[x] = dist
                    delta[x] = dist
        return distance
