"""Simulated competitor engines (the paper's §5 comparison targets).

Each class implements a competitor's *algorithmic strategy* so measured
gaps trace to the paper's claimed causes (plan shape, layouts, SIMD)
rather than incidental implementation quality:

================  ==========================================================
Engine            Strategy
================  ==========================================================
PairwiseEngine    left-deep pairwise hash joins (PostgreSQL / Grail class)
LogicBloxLike     single-bag WCOJ, uint-only, scalar (LogicBlox class)
SociaLiteLike     datalog over pairwise joins, per-tuple loops (SociaLite)
ScalarGraphEngine CSR + scalar loops (PowerGraph / Snap-R / CGT-X class)
TunedGraphEngine  CSR + vectorized kernels (Galois class)
================  ==========================================================
"""

from .logicblox import LogicBloxLike
from .lowlevel import (CSRGraph, HashSetGraphEngine, ScalarGraphEngine,
                       TunedGraphEngine, dijkstra_reference)
from .pairwise import PairwiseEngine
from .socialite import SociaLiteLike

__all__ = [
    "LogicBloxLike",
    "CSRGraph", "HashSetGraphEngine", "ScalarGraphEngine",
    "TunedGraphEngine", "dijkstra_reference",
    "PairwiseEngine", "SociaLiteLike",
]
