"""A LogicBlox-style engine: worst-case optimal, but no GHDs, no SIMD.

The paper identifies LogicBlox as the first commercial WCOJ engine and
attributes its gap to EmptyHeaded to three missing pieces (§1, §5):

* every plan is a single-node GHD (the generic algorithm with no early
  aggregation — Figure 3b);
* one homogeneous set representation (no density-skew layouts);
* scalar Leapfrog Triejoin intersections (min-property-preserving, but
  no SIMD).

This class wires exactly those choices into our own machinery, so the
gap measured against it is attributable to the paper's contributions
rather than to implementation quality differences.
"""

from ..api import Database
from ..engine.config import EngineConfig


class LogicBloxLike:
    """Database façade locked to the LogicBlox-style configuration."""

    def __init__(self, **overrides):
        config = EngineConfig(
            use_ghd=False,              # single-node GHD plans only
            push_selections=False,      # no selection push-down across bags
            eliminate_redundant_bags=False,
            layout_level="uint_only",   # one homogeneous layout
            simd=False,                 # scalar merge/leapfrog intersections
            adaptive_algorithms=True,   # LFTJ does obey the min property
        )
        self.db = Database(config=config, **overrides)

    def load_graph(self, name, edges, **kwargs):
        """Load a graph through the underlying Database."""
        return self.db.load_graph(name, edges, **kwargs)

    def query(self, text):
        """Run a query program under the LogicBlox-style configuration."""
        return self.db.query(text)

    @property
    def counter(self):
        """The engine's simulated-op counter."""
        return self.db.counter
