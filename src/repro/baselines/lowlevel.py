"""Low-level graph engines: scalar (PowerGraph/Snap-R class) and tuned
(Galois class) CSR implementations.

The paper's low-level baselines are hand-written C++ over adjacency
structures.  Two fidelity levels are simulated:

* :class:`ScalarGraphEngine` — per-node Python loops with scalar merge
  intersections and dict-based propagation.  This is the Snap-R /
  PowerGraph class: algorithmically sound (degree pruning, sorted
  adjacency merge) but no vectorization, plus per-vertex programming
  model overhead.
* :class:`TunedGraphEngine` — fully vectorized numpy CSR kernels
  (gather/scatter PageRank, frontier-array SSSP, vectorized adjacency
  intersections).  This is the Galois class that EmptyHeaded roughly
  ties on PageRank and trails by ≤3x on SSSP.
"""

import numpy as np


class CSRGraph:
    """Compressed-sparse-row adjacency over dense int node ids."""

    def __init__(self, edges, n_nodes=None):
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if n_nodes is None:
            n_nodes = int(edges.max()) + 1 if edges.size else 0
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        edges = edges[order]
        self.n_nodes = n_nodes
        self.n_edges = int(edges.shape[0])
        self.indptr = np.searchsorted(edges[:, 0], np.arange(n_nodes + 1))
        self.indices = np.ascontiguousarray(edges[:, 1])

    def neighbors(self, node):
        """Sorted neighbor array of ``node``."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    @property
    def out_degrees(self):
        """Out-degree of every node id."""
        return np.diff(self.indptr)


class ScalarGraphEngine:
    """PowerGraph / Snap-R class: scalar loops over sorted adjacency."""

    def triangle_count(self, pruned_edges, n_nodes=None, counter=None):
        """Count triangles on symmetrically filtered edges with a scalar
        two-pointer merge per edge — Snap-R's "custom scalar
        intersection over the sets".

        ``counter`` (an :class:`repro.sets.cost.OpCounter`) is charged
        one scalar op per merge step, so this engine's work is priced in
        the same currency as EmptyHeaded's simulated SIMD model.
        """
        graph = CSRGraph(pruned_edges, n_nodes)
        total = 0
        steps = 0
        indices = graph.indices.tolist()
        indptr = graph.indptr.tolist()
        for u in range(graph.n_nodes):
            begin_u, end_u = indptr[u], indptr[u + 1]
            for position in range(begin_u, end_u):
                v = indices[position]
                i, j = begin_u, indptr[v]
                end_v = indptr[v + 1]
                while i < end_u and j < end_v:
                    steps += 1
                    a, b = indices[i], indices[j]
                    if a == b:
                        total += 1
                        i += 1
                        j += 1
                    elif a < b:
                        i += 1
                    else:
                        j += 1
        if counter is not None:
            counter.charge("csr_scalar_merge", scalar=steps,
                           elements=steps)
        return total

    def pagerank(self, undirected_edges, iterations=5, damping=0.85,
                 n_nodes=None):
        """Dict-and-loop PageRank (vertex-program style)."""
        graph = CSRGraph(undirected_edges, n_nodes)
        n = graph.n_nodes
        degree = graph.out_degrees
        active = int(np.count_nonzero(degree))
        rank = [1.0 / active if degree[v] else 0.0 for v in range(n)]
        for _ in range(iterations):
            contribution = [rank[v] / degree[v] if degree[v] else 0.0
                            for v in range(n)]
            new_rank = [0.0] * n
            indices = graph.indices.tolist()
            indptr = graph.indptr.tolist()
            for u in range(n):
                acc = 0.0
                for position in range(indptr[u], indptr[u + 1]):
                    acc += contribution[indices[position]]
                new_rank[u] = (1.0 - damping) + damping * acc
            rank = new_rank
        return {node: rank[node] for node in range(n) if degree[node]}

    def sssp(self, undirected_edges, source, n_nodes=None):
        """Frontier BFS with Python sets (unit weights, paper semantics:
        distances start at 1 on the source's neighbors)."""
        graph = CSRGraph(undirected_edges, n_nodes)
        distance = {}
        frontier = set(int(v) for v in graph.neighbors(source))
        for node in frontier:
            distance[node] = 1
        level = 1
        while frontier:
            level += 1
            next_frontier = set()
            for node in frontier:
                for neighbor in graph.neighbors(node):
                    neighbor = int(neighbor)
                    if neighbor not in distance:
                        distance[neighbor] = level
                        next_frontier.add(neighbor)
            frontier = next_frontier
        return distance


class TunedGraphEngine:
    """Galois class: vectorized CSR kernels with tight inner loops."""

    def triangle_count(self, pruned_edges, n_nodes=None, counter=None):
        """Per-node vectorized adjacency intersections (the hand-tuned
        counterpart; the paper omits Galois here because it ships no
        triangle kernel — this is the Intel-style hand-coded variant).

        Charges SIMD shuffling-model ops (4 lanes per compare) when a
        counter is supplied: this engine is exactly EmptyHeaded's "-R"
        uint-only configuration, algorithmically.
        """
        graph = CSRGraph(pruned_edges, n_nodes)
        total = 0
        simd = 0
        for u in range(graph.n_nodes):
            adjacency_u = graph.neighbors(u)
            for v in adjacency_u.tolist():
                adjacency_v = graph.neighbors(v)
                if adjacency_v.size and adjacency_u.size:
                    total += np.intersect1d(
                        adjacency_u, adjacency_v,
                        assume_unique=True).size
                    simd += -(-(int(adjacency_u.size)
                                + int(adjacency_v.size)) // 4)
        if counter is not None:
            counter.charge("csr_simd_shuffle", simd=simd)
        return total

    def pagerank(self, undirected_edges, iterations=5, damping=0.85,
                 n_nodes=None):
        """Gather-based PageRank: one ``add.reduceat`` per iteration."""
        graph = CSRGraph(undirected_edges, n_nodes)
        n = graph.n_nodes
        degree = graph.out_degrees.astype(np.float64)
        safe_degree = np.where(degree > 0, degree, 1.0)
        nonempty = degree > 0
        active = int(np.count_nonzero(nonempty))
        rank = np.where(nonempty, 1.0 / active, 0.0)
        starts = graph.indptr[:-1]
        for _ in range(iterations):
            contribution = rank / safe_degree
            gathered = contribution[graph.indices]
            sums = np.zeros(n)
            if graph.indices.size:
                reduced = np.add.reduceat(
                    gathered, np.minimum(starts, graph.indices.size - 1))
                sums[nonempty] = reduced[nonempty]
            rank = (1.0 - damping) + damping * sums
        return {node: float(rank[node]) for node in range(n)
                if nonempty[node]}

    def sssp(self, undirected_edges, source, n_nodes=None):
        """Frontier-array BFS: neighbor expansion is one vectorized
        gather + unique per level."""
        graph = CSRGraph(undirected_edges, n_nodes)
        n = graph.n_nodes
        distance = np.full(n, -1, dtype=np.int64)
        frontier = graph.neighbors(source)
        frontier = np.unique(frontier)
        distance[frontier] = 1
        level = 1
        while frontier.size:
            level += 1
            spans = [graph.neighbors(int(node)) for node in frontier]
            if not spans:
                break
            candidates = np.unique(np.concatenate(spans)) \
                if spans else np.empty(0, dtype=np.int64)
            fresh = candidates[distance[candidates] < 0]
            distance[fresh] = level
            frontier = fresh
        return {int(node): int(d) for node, d in enumerate(distance)
                if d >= 0}


class HashSetGraphEngine:
    """PowerGraph's exact neighborhood strategy (paper Appendix D.1):
    degree > 64 neighborhoods live in a (cuckoo) hash set, smaller ones
    in a sorted vector; intersections probe the smaller structure into
    the larger.

    Hash probing gives O(min) intersections without sortedness, but
    loses SIMD entirely and pays hashing constants — the paper measures
    PowerGraph 3-10x behind EmptyHeaded on triangles.
    """

    #: Degree threshold above which PowerGraph switches to a hash set.
    HASH_THRESHOLD = 64

    #: Simulated scalar ops per hash probe: hash the key, locate the
    #: bucket (cuckoo hashing checks up to two locations), compare.
    #: Sorted-merge steps cost 1 op; hashing is several.
    HASH_PROBE_COST = 4

    def triangle_count(self, pruned_edges, n_nodes=None, counter=None):
        """Triangle count with PowerGraph's hybrid vector/hash-set neighborhoods."""
        graph = CSRGraph(pruned_edges, n_nodes)
        # Iteration views (vector below threshold, hash set above, as
        # PowerGraph stores them) plus hash views for probing.
        iteration_views = []
        probe_views = []
        for node in range(graph.n_nodes):
            adjacency = graph.neighbors(node).tolist()
            as_set = set(adjacency)
            probe_views.append(as_set)
            iteration_views.append(
                as_set if len(adjacency) > self.HASH_THRESHOLD
                else adjacency)
        total = 0
        probes = 0
        for u in range(graph.n_nodes):
            for v in iteration_views[u]:
                small, large = probe_views[u], probe_views[v]
                if len(large) < len(small):
                    small, large = large, small
                for candidate in small:
                    probes += 1
                    if candidate in large:
                        total += 1
        if counter is not None:
            counter.charge("hashset_probe",
                           scalar=probes * self.HASH_PROBE_COST,
                           elements=probes)
        return total


def dijkstra_reference(undirected_edges, source, n_nodes=None):
    """Textbook Dijkstra (heap) used as the tests' ground truth for SSSP.

    Follows the paper's program semantics: source neighbors start at
    distance 1 and the source itself is reached back through an edge.
    """
    import heapq
    graph = CSRGraph(undirected_edges, n_nodes)
    best = {}
    heap = []
    for neighbor in graph.neighbors(source):
        heapq.heappush(heap, (1, int(neighbor)))
    while heap:
        dist, node = heapq.heappop(heap)
        if node in best:
            continue
        best[node] = dist
        for neighbor in graph.neighbors(node):
            neighbor = int(neighbor)
            if neighbor not in best:
                heapq.heappush(heap, (dist + 1, neighbor))
    return best
