"""Flight recorder: a crash-surviving ring buffer of recent queries.

A long-lived engine needs to answer "what was it doing when it died?"
— after a crash, an OOM kill, or a stuck query — without having had
full tracing on.  The :class:`FlightRecorder` keeps two bounded ring
buffers (recent query records and recent spans), a write-ahead
*in-flight journal*, and a post-mortem dump:

* :meth:`FlightRecorder.begin` is called before a query executes and
  journals the in-flight record to ``<dir>/inflight.json``.  A process
  killed mid-query — even with ``SIGKILL``, which runs no handlers —
  leaves that journal behind, and :func:`post_mortem` folds it into a
  valid dump after the fact.  The journal is written through one
  persistent file descriptor (a single ``pwrite`` at offset 0 followed
  by ``ftruncate``) so the per-query cost is two syscalls rather than
  an open/rename pair; readers take only the *first line*, which stays
  a complete JSON record even if the process dies between the write
  and the truncate (small single writes are not torn at syscall
  granularity — a kill lands between syscalls, not inside one).
* :meth:`FlightRecorder.complete` moves the record into the ring and
  clears the journal (truncate to empty; empty means "nothing in
  flight").
* :meth:`FlightRecorder.dump` writes ``<dir>/postmortem.json`` with the
  ring contents, the in-flight record (if any), recent spans, and the
  reason (``atexit``, ``exception``, or caller-supplied).  The
  telemetry hub registers an atexit dump and dumps immediately on a
  query exception.

Everything is stdlib-only and bounded: the rings are ``deque`` with a
``maxlen``, the journal is one small JSON file rewritten per query.

Offline workflow (also ``python -m repro.obs.flight <dir>``)::

    from repro.obs.flight import post_mortem, validate_post_mortem
    payload = post_mortem("telemetry_dir")      # merges journal + dump
    assert not validate_post_mortem(payload)
"""

import json
import os
import sys
import time
from collections import deque

#: Journal file name of the currently executing query (write-ahead).
INFLIGHT_FILE = "inflight.json"

#: Post-mortem dump file name.
POSTMORTEM_FILE = "postmortem.json"

#: Schema version stamped into dumps.
FLIGHT_VERSION = 1


def _atomic_write(path, payload):
    """Write JSON atomically (tmp + rename) so a crash mid-write never
    leaves a torn dump behind.  Used for the (rare) post-mortem dump;
    the per-query journal goes through the cheaper persistent-fd path."""
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


def read_inflight(directory):
    """The surviving in-flight record under ``directory``, or ``None``.

    Parses only the journal's first line (see the module docstring for
    why that is always a complete record); an empty or missing journal
    means no query was in flight.
    """
    try:
        with open(os.path.join(directory, INFLIGHT_FILE), "rb") as handle:
            line = handle.readline().strip()
    except OSError:
        return None
    if not line:
        return None
    try:
        return json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None


class FlightRecorder:
    """Bounded in-memory flight data, optionally journaled to disk.

    Parameters
    ----------
    directory:
        Where the in-flight journal and post-mortem dumps live; ``None``
        keeps the recorder memory-only (rings still work, nothing
        survives the process).
    capacity:
        Ring size for completed query records.
    span_capacity:
        Ring size for recent spans (fed by traced queries).
    """

    def __init__(self, directory=None, capacity=64, span_capacity=256):
        self.directory = directory
        self.records = deque(maxlen=capacity)
        self.spans = deque(maxlen=span_capacity)
        self.inflight = None
        self.last_error = None
        self._journal_fd = None
        if directory is not None:
            if not os.path.isdir(directory):
                os.makedirs(directory)
            self._journal_fd = os.open(
                os.path.join(directory, INFLIGHT_FILE),
                os.O_RDWR | os.O_CREAT, 0o644)

    # -- query lifecycle ----------------------------------------------------

    def begin(self, record):
        """Journal ``record`` as the in-flight query (write-ahead).

        One ``pwrite`` at offset 0 — no truncate.  The journal is
        cleared (truncated to empty) on :meth:`complete`, so a stale
        tail can only exist after consecutive ``begin`` calls, and
        first-line-wins reading ignores it.
        """
        self.inflight = record
        if self._journal_fd is not None:
            data = (json.dumps(record) + "\n").encode("utf-8")
            os.pwrite(self._journal_fd, data, 0)

    def complete(self, record):
        """Move a completed query into the ring; clear the journal.

        The journal is only cleared when ``record`` *is* the journaled
        in-flight query: the query service completes out-of-band
        records (served cache hits) from its event loop while a journal
        query executes on the worker thread, and those must not erase
        the executing query's write-ahead entry.
        """
        self.records.append(record)
        if self.inflight is not None \
                and self.inflight.get("query_id") != record.get("query_id"):
            return
        self.inflight = None
        if self._journal_fd is not None:
            os.ftruncate(self._journal_fd, 0)

    def fail(self, record, error):
        """Complete an in-flight query that raised; remembers the error
        so the next dump carries it."""
        record = dict(record)
        record["status"] = "error"
        record["error"] = "%s: %s" % (type(error).__name__, error)
        self.last_error = record["error"]
        self.complete(record)
        return record

    def note_spans(self, spans, t0=0.0, limit=None):
        """Fold recent tracer spans into the span ring (newest last).

        ``spans`` are :class:`repro.obs.trace.SpanRecord` objects;
        timestamps are re-based on ``t0`` so dumps are relative to the
        tracer epoch, like the Chrome export.
        """
        batch = spans if limit is None else spans[-limit:]
        for span in batch:
            self.spans.append(span.to_dict(t0))

    # -- dumping ------------------------------------------------------------

    def payload(self, reason="manual"):
        """The post-mortem dump as a plain dict."""
        return {
            "version": FLIGHT_VERSION,
            "reason": reason,
            "dumped_at": time.time(),
            "pid": os.getpid(),
            "inflight": self.inflight,
            "last_error": self.last_error,
            "records": list(self.records),
            "spans": list(self.spans),
        }

    def dump(self, reason="manual", path=None):
        """Write the post-mortem dump; returns its path (or ``None``
        when the recorder is memory-only and no ``path`` was given)."""
        if path is None:
            if self.directory is None:
                return None
            path = os.path.join(self.directory, POSTMORTEM_FILE)
        _atomic_write(path, self.payload(reason))
        return path

    def close(self):
        """Release the journal file descriptor (idempotent)."""
        if self._journal_fd is not None:
            os.close(self._journal_fd)
            self._journal_fd = None


# ---------------------------------------------------------------------------
# offline post-mortem assembly + validation
# ---------------------------------------------------------------------------


def post_mortem(directory):
    """Assemble a post-mortem view from a telemetry directory.

    Prefers the recorder's own ``postmortem.json`` (written at exit or
    on an exception) and folds in a surviving in-flight journal — the
    ``SIGKILL`` case, where no handler ran but the write-ahead journal
    still names the query that was executing.  Returns ``None`` when
    the directory holds neither.
    """
    dump_path = os.path.join(directory, POSTMORTEM_FILE)
    payload = None
    if os.path.exists(dump_path):
        with open(dump_path) as handle:
            payload = json.load(handle)
    inflight = read_inflight(directory)
    if payload is None and inflight is None:
        return None
    if payload is None:
        payload = {
            "version": FLIGHT_VERSION,
            "reason": "killed",      # journal survived, no dump ran
            "dumped_at": None,
            "pid": inflight.get("pid"),
            "inflight": inflight,
            "last_error": None,
            "records": [],
            "spans": [],
        }
    elif inflight is not None and payload.get("inflight") is None:
        # A dump exists (e.g. from a previous clean exit) but a newer
        # journal was stranded: the journal is the fresher signal.
        payload["inflight"] = inflight
        payload["reason"] = "killed"
    return payload


def validate_post_mortem(payload):
    """Return a list of problems with a post-mortem payload (empty =
    valid).  Checked by the kill-mid-query test and the CI smoke job."""
    problems = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("version") != FLIGHT_VERSION:
        problems.append("bad version %r" % (payload.get("version"),))
    for key in ("reason", "records", "spans"):
        if key not in payload:
            problems.append("missing key %r" % key)
    if not isinstance(payload.get("records"), list):
        problems.append("records is not a list")
    if not isinstance(payload.get("spans"), list):
        problems.append("spans is not a list")
    inflight = payload.get("inflight")
    if inflight is not None:
        from .telemetry import validate_query_record
        problems.extend("inflight: %s" % p
                        for p in validate_query_record(
                            inflight, inflight=True))
    for position, record in enumerate(payload.get("records") or []):
        from .telemetry import validate_query_record
        problems.extend("record %d: %s" % (position, p)
                        for p in validate_query_record(record))
    return problems


def main(argv=None):
    """Render a directory's post-mortem:
    ``python -m repro.obs.flight <telemetry-dir>``."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    payload = post_mortem(argv[0])
    if payload is None:
        print("no flight data under %s" % argv[0], file=sys.stderr)
        return 1
    problems = validate_post_mortem(payload)
    for problem in problems:
        print("INVALID: %s" % problem, file=sys.stderr)
    inflight = payload.get("inflight")
    print("flight recorder dump (reason=%s, pid=%s)"
          % (payload.get("reason"), payload.get("pid")))
    if inflight is not None:
        print("  in-flight: %s (%s)" % (inflight.get("query_id"),
                                        inflight.get("text", "")[:60]))
    print("  %d completed record(s), %d span(s)"
          % (len(payload.get("records") or ()),
             len(payload.get("spans") or ())))
    if payload.get("last_error"):
        print("  last error: %s" % payload["last_error"])
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
