"""Continuous telemetry: query log, lifetime metrics, slow-query promotion.

PR 3's tracer/metrics/``ExecStats`` observe *one* query; this module
turns them into an operable, process-lifetime pipeline — the substrate
a long-lived query service runs on.  Four cooperating pieces:

* a **structured query log**: one JSON record per query (see
  :data:`QUERY_RECORD_FIELDS`) appended to a size-rotating JSONL sink
  (:class:`RotatingJsonlSink`) — grep-able, tail-able, schema-checked
  (:func:`validate_query_record`, CI runs ``python -m
  repro.obs.telemetry <log>`` over a smoke batch);
* a :class:`TelemetryHub` that aggregates every query's outcome into
  **labeled process-lifetime series** in a
  :class:`~repro.obs.metrics.MetricsRegistry` (latency histograms per
  execution mode, plan-cache tier counters, fused/steal counters) —
  exported as OpenMetrics text by :mod:`repro.obs.openmetrics`;
* a :class:`~repro.obs.flight.FlightRecorder` ring of recent records
  with a write-ahead in-flight journal and post-mortem dumps;
* **slow-query promotion**: a query whose latency exceeds
  ``slow_query_seconds`` flags its identity, its *next* execution runs
  fully traced, and the trace is archived next to the query log.

Enable through ``Database.enable_telemetry(directory)`` or the CLI's
``--telemetry DIR``; ``repro top`` renders a live dashboard from the
query log.  Telemetry off is free: the engine's hot paths never see
the hub (``Database.query`` takes its untouched fast path when
``_telemetry is None``).
"""

import hashlib
import json
import os
import sys
import threading
import time

from .flight import FlightRecorder
from .metrics import MetricsRegistry, TIME_BUCKETS

#: Query-log schema version, stamped into every record.
QUERY_LOG_VERSION = 1

#: Field name → (required?, allowed types) of one query record.
#: ``None`` is always allowed for optional fields.  The in-flight
#: journal form omits the post-execution fields (``elapsed_seconds``,
#: ``rows``); everything else is written up front.
QUERY_RECORD_FIELDS = {
    "schema_version": (True, (int,)),
    "query_id": (True, (str,)),
    "ts": (True, (int, float)),
    "pid": (True, (int,)),
    "status": (True, (str,)),
    "text_sha": (True, (str,)),
    "text": (False, (str,)),
    "execution_mode": (True, (str,)),
    "config_signature": (True, (str,)),
    "cache_key": (False, (str,)),
    "elapsed_seconds": (True, (int, float)),
    "rows": (True, (int,)),
    "plan_cache": (False, (str,)),
    "plan_cache_hits": (False, (int,)),
    "plan_cache_misses": (False, (int,)),
    "phases": (False, (dict,)),
    "mispredict_ratio": (False, (int, float)),
    "replans": (False, (int,)),
    "fused_blocks": (False, (int,)),
    "morsels": (False, (int,)),
    "steals": (False, (int,)),
    "workers": (False, (int,)),
    "promoted": (False, (bool,)),
    "trace_path": (False, (str,)),
    "error": (False, (str,)),
    # Query-service fields (repro.serve): which result-cache tier the
    # request took (hit / miss / bypass) and how long it waited for
    # admission + its executor slot before running.
    "result_cache": (False, (str,)),
    "queue_seconds": (False, (int, float)),
}

#: Statuses a record may carry; ``inflight`` only in the journal.
RECORD_STATUSES = ("ok", "error", "inflight")

#: Fields the in-flight (write-ahead) journal form may omit.
_POST_EXECUTION_FIELDS = ("elapsed_seconds", "rows")


def text_digest(text):
    """Stable short digest identifying a query text."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


def key_digest(value):
    """Short digest of a structural key (optimized-IR ``cache_key()``
    tuples, ``config_signature`` tuples) — stable within a schema
    version, JSON-safe, and small enough to log per query."""
    if value is None:
        return None
    return hashlib.sha1(repr(value).encode("utf-8")).hexdigest()[:16]


def validate_query_record(record, inflight=False):
    """Return a list of schema problems with one record (empty = valid)."""
    problems = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    for name, (required, types) in QUERY_RECORD_FIELDS.items():
        if name not in record or record[name] is None:
            if required and not (inflight
                                 and name in _POST_EXECUTION_FIELDS):
                problems.append("missing required field %r" % name)
            continue
        value = record[name]
        # bool is an int subclass; keep int fields honest.
        if isinstance(value, bool) and bool not in types:
            problems.append("field %r has bool value" % name)
        elif not isinstance(value, types):
            problems.append("field %r has type %s, expected %s"
                            % (name, type(value).__name__,
                               "/".join(t.__name__ for t in types)))
    for name in record:
        if name not in QUERY_RECORD_FIELDS:
            problems.append("unknown field %r" % name)
    if record.get("schema_version") not in (None, QUERY_LOG_VERSION):
        problems.append("unsupported schema_version %r"
                        % (record.get("schema_version"),))
    status = record.get("status")
    if status is not None and status not in RECORD_STATUSES:
        problems.append("unknown status %r" % (status,))
    if not inflight and status == "inflight":
        problems.append("completed record still marked inflight")
    elapsed = record.get("elapsed_seconds")
    if isinstance(elapsed, (int, float)) and elapsed < 0:
        problems.append("negative elapsed_seconds")
    return problems


def validate_query_log(path):
    """Validate a JSONL query log file.

    Returns ``(n_records, problems)`` where each problem is prefixed
    with its line number.  Unparseable lines are problems too.
    """
    problems = []
    count = 0
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                problems.append("line %d: not JSON (%s)"
                                % (line_number, error))
                continue
            count += 1
            problems.extend("line %d: %s" % (line_number, p)
                            for p in validate_query_record(record))
    return count, problems


class RotatingJsonlSink:
    """Append-only JSONL file with size-based rotation.

    When the active file would exceed ``max_bytes`` the chain rotates
    (``queries.jsonl`` → ``queries.jsonl.1`` → … → dropped past
    ``backups``), so a long-lived process holds a bounded window of
    history on disk.  Each append is one compact JSON line plus a
    flush — records survive a crash up to the last completed query.
    """

    def __init__(self, path, max_bytes=8 * 1024 * 1024, backups=3):
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        directory = os.path.dirname(os.path.abspath(path))
        if directory and not os.path.isdir(directory):
            os.makedirs(directory)
        self._handle = open(path, "a")
        self.written = 0

    def append(self, record):
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True) + "\n"
        if self._handle.tell() + len(line) > self.max_bytes \
                and self._handle.tell() > 0:
            self.rotate()
        self._handle.write(line)
        self._handle.flush()
        self.written += 1

    def rotate(self):
        """Shift the backup chain and start a fresh active file."""
        self._handle.close()
        for index in range(self.backups, 0, -1):
            source = self.path if index == 1 \
                else "%s.%d" % (self.path, index - 1)
            if os.path.exists(source):
                os.replace(source, "%s.%d" % (self.path, index))
        if self.backups == 0:
            os.replace(self.path, self.path + ".dropped")
            os.remove(self.path + ".dropped")
        self._handle = open(self.path, "a")

    def close(self):
        if not self._handle.closed:
            self._handle.close()


def read_query_log(path, limit=None):
    """Records from a (possibly rotated) query log, oldest first.

    Walks ``path.N`` (highest = oldest) before the active file; skips
    torn/blank lines (a crash can truncate the final line).  ``limit``
    keeps only the newest N records.
    """
    chain = []
    index = 1
    while os.path.exists("%s.%d" % (path, index)):
        chain.append("%s.%d" % (path, index))
        index += 1
    chain.reverse()  # highest suffix is oldest
    if os.path.exists(path):
        chain.append(path)
    records = []
    for entry in chain:
        with open(entry) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    if limit is not None and len(records) > limit:
        records = records[-limit:]
    return records


class TelemetryHub:
    """Process-lifetime telemetry: log sink + flight recorder + series.

    The hub owns (or shares) a :class:`~repro.obs.metrics.
    MetricsRegistry` and folds every completed query into labeled
    lifetime series:

    ================================  =======================================
    series                            labels
    ================================  =======================================
    ``telemetry.queries``             ``mode``, ``status``
    ``telemetry.query_seconds``       ``mode`` (histogram, time buckets)
    ``telemetry.rows``                —
    ``telemetry.plan_cache``          ``tier`` (``hit``/``partial``/…)
    ``telemetry.fused_blocks``        —
    ``telemetry.morsels``/``steals``  —
    ``telemetry.slow_queries``        —
    ``telemetry.replans``             —
    ``telemetry.result_cache``        ``tier`` (``hit``/``miss``/``bypass``)
    ``telemetry.queue_seconds``       — (histogram, time buckets)
    ================================  =======================================

    The hub is **thread-safe**: one re-entrant lock serializes the
    query lifecycle (id allocation, journal, sink, flight ring, series
    folds), because the query service records cache hits from its event
    loop while executed queries record from the executor thread.
    Series updates additionally hold ``registry.lock`` so the memoized
    instrument fast path cannot race direct ``registry.inc`` callers.

    Slow-query promotion: when a completed query's latency exceeds
    ``slow_query_seconds``, its ``text_sha`` is flagged; the caller
    (``Database.query``) checks :meth:`should_trace` before the next
    execution of the same text, runs it fully traced, and archives the
    trace via :meth:`archive_trace`.  Each identity is archived once.
    """

    def __init__(self, directory=None, registry=None,
                 log_name="queries.jsonl", rotate_bytes=8 * 1024 * 1024,
                 rotate_backups=3, flight_capacity=64,
                 slow_query_seconds=None, clock=time.time):
        self.directory = directory
        if directory is not None and not os.path.isdir(directory):
            os.makedirs(directory)
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.sink = RotatingJsonlSink(
            os.path.join(directory, log_name),
            max_bytes=rotate_bytes, backups=rotate_backups) \
            if directory is not None else None
        self.flight = FlightRecorder(directory, capacity=flight_capacity)
        self.slow_query_seconds = slow_query_seconds
        self.clock = clock
        self.started = clock()
        self._started_monotonic = time.perf_counter()
        self.queries = 0
        self._sequence = 0
        self._promoted = {}    # text_sha -> query_id that flagged it
        self._archived = set()  # text_shas already archived
        self._instruments = {}  # hot-path series memo (see _counter)
        self._lock = threading.RLock()  # serializes the query lifecycle
        self.closed = False

    # -- identity -----------------------------------------------------------

    def next_query_id(self):
        with self._lock:
            self._sequence += 1
            return "q%08d-%d" % (self._sequence, os.getpid())

    # -- query lifecycle ----------------------------------------------------

    def begin_query(self, record):
        """Journal the in-flight record (write-ahead, crash-visible)."""
        with self._lock:
            if not self.closed:
                self.flight.begin(record)

    # Per-query series updates are the telemetry hot path, so instrument
    # objects are memoized on fixed-shape keys instead of going through
    # ``registry.inc`` (which recomputes the canonical label key on
    # every call).  The memo is guarded on the registry's dict identity:
    # ``MetricsRegistry.reset()`` rebinds the dicts, which invalidates
    # every cached entry on the next lookup.

    def _counter(self, key, name, labels=None):
        entry = self._instruments.get(key)
        if entry is None or entry[0] is not self.registry.counters:
            entry = (self.registry.counters,
                     self.registry.counter(name, labels))
            self._instruments[key] = entry
        return entry[1]

    def _gauge(self, key, name, labels=None):
        entry = self._instruments.get(key)
        if entry is None or entry[0] is not self.registry.gauges:
            entry = (self.registry.gauges,
                     self.registry.gauge(name, labels))
            self._instruments[key] = entry
        return entry[1]

    def _histogram(self, key, name, buckets, labels=None):
        entry = self._instruments.get(key)
        if entry is None or entry[0] is not self.registry.histograms:
            entry = (self.registry.histograms,
                     self.registry.histogram(name, buckets, labels))
            self._instruments[key] = entry
        return entry[1]

    def record_query(self, record):
        """Fold one completed query record into every lifetime surface:
        the JSONL sink, the flight ring, and the labeled series."""
        with self._lock:
            if self.closed:
                # A timed-out query's worker can outlive the hub (the
                # service answers early and drains); drop its record
                # rather than writing to a closed sink.
                return record
            self.queries += 1
            self.flight.complete(record)
            if self.sink is not None:
                self.sink.append(record)
            if self.registry.enabled:
                with self.registry.lock:
                    self._fold_series(record)
            self._check_slow(record)
        return record

    def _fold_series(self, record):
        """Series updates for one record (registry lock held)."""
        mode = record.get("execution_mode", "unknown")
        status = record.get("status", "ok")
        self._counter(("queries", mode, status),
                      "telemetry.queries",
                      {"mode": mode, "status": status}).inc()
        elapsed = record.get("elapsed_seconds")
        if elapsed is not None:
            self._histogram(("seconds", mode),
                            "telemetry.query_seconds",
                            TIME_BUCKETS,
                            {"mode": mode}).observe(elapsed)
        rows = record.get("rows")
        if rows:
            self._counter("rows", "telemetry.rows").inc(rows)
        tier = record.get("plan_cache")
        if tier and tier != "n/a":
            # "n/a" is a record-level sentinel (no plan-cache activity
            # this query); folding it would invent a tier alongside the
            # real hit/partial/miss series.
            self._counter(("tier", tier), "telemetry.plan_cache",
                          {"tier": tier}).inc()
        result_tier = record.get("result_cache")
        if result_tier:
            self._counter(("result_cache", result_tier),
                          "telemetry.result_cache",
                          {"tier": result_tier}).inc()
        queued = record.get("queue_seconds")
        if queued is not None:
            self._histogram("queue_seconds", "telemetry.queue_seconds",
                            TIME_BUCKETS).observe(queued)
        for field, series in (
                ("fused_blocks", "telemetry.fused_blocks"),
                ("morsels", "telemetry.morsels"),
                ("steals", "telemetry.steals")):
            value = record.get(field)
            if value:
                self._counter(field, series).inc(value)
        replans = record.get("replans")
        if replans:
            self._gauge("replans", "telemetry.replans").set(replans)

    def fail_query(self, record, error):
        """Record a query that raised: flight ring + sink + series, and
        an immediate post-mortem dump."""
        with self._lock:
            if self.closed:
                return dict(record)
            record = self.flight.fail(record, error)
            record.setdefault("elapsed_seconds", 0.0)
            record.setdefault("rows", 0)
            failed = dict(record)
            self.queries += 1
            if self.sink is not None:
                self.sink.append(failed)
            self.registry.inc(
                "telemetry.queries",
                labels={"mode": failed.get("execution_mode", "unknown"),
                        "status": "error"})
            self.flight.dump(reason="exception")
        return failed

    # -- slow-query promotion -----------------------------------------------

    def _check_slow(self, record):
        budget = self.slow_query_seconds
        if budget is None:
            return
        elapsed = record.get("elapsed_seconds")
        if elapsed is None or elapsed <= budget:
            return
        self.registry.inc("telemetry.slow_queries")
        sha = record.get("text_sha")
        if sha and sha not in self._archived and sha not in self._promoted:
            self._promoted[sha] = record.get("query_id")

    def should_trace(self, text_sha):
        """True when this query identity was flagged slow and its traced
        re-execution has not happened yet."""
        with self._lock:
            return text_sha in self._promoted

    def archive_trace(self, tracer, record):
        """Archive a promoted query's trace next to the query log;
        returns the trace path (``None`` for memory-only hubs).  The
        identity is unflagged either way — one archive per promotion.
        """
        sha = record.get("text_sha")
        with self._lock:
            self._promoted.pop(sha, None)
            self._archived.add(sha)
            self.flight.note_spans(list(tracer.spans), tracer.t0)
        if self.directory is None:
            return None
        path = os.path.join(self.directory,
                            "slow-%s.trace.json" % record["query_id"])
        from .export import write_chrome_trace
        write_chrome_trace(tracer, path)
        self.registry.inc("telemetry.traces_archived")
        return path

    # -- inspection ---------------------------------------------------------

    def uptime(self):
        return time.perf_counter() - self._started_monotonic

    def qps(self):
        """Lifetime queries-per-second (``repro top`` computes windowed
        rates from the log's timestamps instead)."""
        uptime = self.uptime()
        return self.queries / uptime if uptime > 0 else 0.0

    def absorb_state(self, state, labels=None):
        """Merge a per-query registry state (``MetricsRegistry.
        to_state()``) into the lifetime series, optionally labeled —
        the aggregation seam a multi-database service feeds."""
        self.registry.merge_state(state, labels=labels)

    def snapshot(self):
        """JSON-safe summary: uptime, throughput, and every series."""
        # uptime is set at read time, not per query — it only needs to
        # be current when someone looks
        self.registry.set_gauge("telemetry.uptime_seconds",
                                self.uptime())
        return {
            "started": self.started,
            "uptime_seconds": self.uptime(),
            "queries": self.queries,
            "qps": self.qps(),
            "promoted": sorted(self._promoted),
            "metrics": self.registry.snapshot(),
        }

    def write_openmetrics(self, path=None):
        """Write the registry as OpenMetrics text; defaults to
        ``<directory>/metrics.prom``."""
        from .openmetrics import write_openmetrics
        if path is None:
            if self.directory is None:
                return None
            path = os.path.join(self.directory, "metrics.prom")
        self.registry.set_gauge("telemetry.uptime_seconds",
                                self.uptime())
        return write_openmetrics(self.registry, path)

    def close(self, dump_reason="atexit"):
        """Final flush: post-mortem dump, OpenMetrics file, sink close.
        Idempotent — registered with ``atexit`` by the database."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            self.flight.dump(reason=dump_reason)
            self.flight.close()
            if self.directory is not None:
                try:
                    self.write_openmetrics()
                except Exception:  # pragma: no cover - best-effort at exit
                    pass
            if self.sink is not None:
                self.sink.close()


# ---------------------------------------------------------------------------
# ``repro top`` rendering
# ---------------------------------------------------------------------------


def _quantile_sorted(values, q):
    if not values:
        return 0.0
    rank = q * (len(values) - 1)
    low = int(rank)
    high = min(low + 1, len(values) - 1)
    fraction = rank - low
    return values[low] * (1 - fraction) + values[high] * fraction


def render_top(records, now=None, window=60.0):
    """One frame of the ``repro top`` dashboard, from query records.

    QPS and quantiles come from the records inside the trailing
    ``window`` seconds (all records when timestamps predate the
    window); cache-tier and lane sections aggregate the same slice.
    """
    now = time.time() if now is None else now
    recent = [r for r in records
              if isinstance(r.get("ts"), (int, float))
              and r["ts"] >= now - window]
    scope = "last %.0fs" % window
    if not recent:
        recent = records
        scope = "all time"
    lines = ["repro top — %d quer%s (%s), %d total in log"
             % (len(recent), "y" if len(recent) == 1 else "ies",
                scope, len(records))]
    if not records:
        lines.append("  (query log is empty)")
        return "\n".join(lines)
    timestamps = sorted(r["ts"] for r in recent
                        if isinstance(r.get("ts"), (int, float)))
    if len(timestamps) >= 2 and timestamps[-1] > timestamps[0]:
        qps = (len(timestamps) - 1) / (timestamps[-1] - timestamps[0])
    else:
        qps = float(len(timestamps)) / window if window else 0.0
    latencies = sorted(r["elapsed_seconds"] for r in recent
                       if isinstance(r.get("elapsed_seconds"),
                                     (int, float)))
    lines.append(
        "  qps %.2f   latency p50 %.2fms  p95 %.2fms  p99 %.2fms  "
        "max %.2fms"
        % (qps,
           _quantile_sorted(latencies, 0.50) * 1e3,
           _quantile_sorted(latencies, 0.95) * 1e3,
           _quantile_sorted(latencies, 0.99) * 1e3,
           (latencies[-1] if latencies else 0.0) * 1e3))
    errors = sum(1 for r in recent if r.get("status") == "error")
    modes = {}
    for record in recent:
        mode = record.get("execution_mode", "?")
        modes[mode] = modes.get(mode, 0) + 1
    lines.append("  modes: %s   errors: %d"
                 % (", ".join("%s=%d" % item
                              for item in sorted(modes.items())), errors))
    tiers = {}
    for record in recent:
        tier = record.get("plan_cache")
        if tier:
            tiers[tier] = tiers.get(tier, 0) + 1
    total_tiers = sum(tiers.values())
    if total_tiers:
        lines.append("  plan cache: %s  (hit rate %.0f%%)"
                     % (", ".join("%s=%d" % item
                                  for item in sorted(tiers.items())),
                        100.0 * tiers.get("hit", 0) / total_tiers))
    morsels = sum(r.get("morsels") or 0 for r in recent)
    steals = sum(r.get("steals") or 0 for r in recent)
    fused = sum(r.get("fused_blocks") or 0 for r in recent)
    workers = max((r.get("workers") or 1 for r in recent), default=1)
    if morsels or fused:
        steal_rate = 100.0 * steals / morsels if morsels else 0.0
        lines.append("  lanes: workers<=%d  morsels %d  steals %d "
                     "(%.0f%%)  fused blocks %d"
                     % (workers, morsels, steals, steal_rate, fused))
    slow = sorted((r for r in recent
                   if isinstance(r.get("elapsed_seconds"), (int, float))),
                  key=lambda r: -r["elapsed_seconds"])[:3]
    if slow:
        lines.append("  slowest:")
        for record in slow:
            text = (record.get("text") or record.get("text_sha", ""))
            text = text.replace("\n", " ")[:48]
            lines.append("    %8.2fms  %-10s %s"
                         % (record["elapsed_seconds"] * 1e3,
                            record.get("plan_cache") or "-", text))
    return "\n".join(lines)


def main(argv=None):
    """Validate a query log:
    ``python -m repro.obs.telemetry queries.jsonl``."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    count, problems = validate_query_log(argv[0])
    if problems:
        for problem in problems:
            print("INVALID: %s" % problem, file=sys.stderr)
        return 1
    if count == 0:
        print("INVALID: query log holds no records", file=sys.stderr)
        return 1
    print("valid query log: %d record(s), schema v%d"
          % (count, QUERY_LOG_VERSION))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
