"""EXPLAIN ANALYZE: the GHD plan annotated with measured reality.

``Database.explain`` shows what the optimizer *decided*; this module
re-renders the same plan with what actually happened — per-phase wall
time from the span tracer, per-bag measured seconds and simulated lane
ops, the cost model's *predicted* lane ops with the prediction error,
the set layouts the optimizer chose, cache outcomes, and parallel
executor behaviour.

The prediction deliberately comes from
:func:`repro.sets.cost.predict_intersection_ops` — the same module whose
charge formulas produced the measured ops — accessed through the module
attribute so tests can monkeypatch it and prove EXPLAIN ANALYZE does not
re-derive the model ad hoc.  Predictions are cardinality-only upper
bounds (root cardinalities at trie depth 0, mean fanout below), so the
error ratio reads as *model pessimism*: large ratios flag bags where
actual data was much more selective than the AGM-flavored bound.
"""

from ..sets import cost as _cost
from .trace import CAT_CACHE, CAT_COMPILE

#: Compile-side phase names in lifecycle order, as instrumented by the
#: executor and ``Database``.
PHASE_ORDER = ("parse", "logical_rewrite", "ghd_search",
               "attribute_order", "codegen", "plan_cache.lookup")


# ---------------------------------------------------------------------------
# phase accounting
# ---------------------------------------------------------------------------

def phase_totals(tracer):
    """``{phase name: (count, total seconds)}`` over compile/cache spans."""
    totals = {}
    if tracer is None:
        return totals
    for span in tracer.spans:
        if span.cat in (CAT_COMPILE, CAT_CACHE):
            count, seconds = totals.get(span.name, (0, 0.0))
            totals[span.name] = (count + 1, seconds + span.seconds)
    return totals


def category_seconds(tracer, cat):
    """Total seconds of top-of-category spans with category ``cat``.

    Spans of one category may nest (a bag span around morsel spans);
    only depth-minimal spans per category are summed so nothing is
    double-counted.
    """
    if tracer is None:
        return 0.0
    spans = [s for s in tracer.spans if s.cat == cat]
    if not spans:
        return 0.0
    top = min(s.depth for s in spans)
    return sum(s.seconds for s in spans if s.depth == top)


# ---------------------------------------------------------------------------
# cost prediction
# ---------------------------------------------------------------------------

def _level_cards(attr, profiles):
    """Estimated cardinalities of the sets intersected at ``attr``.

    An input whose trie binds ``attr`` at depth 0 contributes its root
    cardinality exactly; deeper levels contribute the trie's mean
    fanout (``(tuples / root)^(1/(arity-1))``), the cardinality-only
    stand-in for the actual per-prefix set.
    """
    cards = []
    for profile in profiles:
        variables = profile["variables"]
        if attr not in variables:
            continue
        depth = variables.index(attr)
        root = max(1, int(profile["root_card"]))
        if depth == 0:
            cards.append(root)
        else:
            arity = len(variables)
            ratio = max(1.0, profile["cardinality"] / float(root))
            fanout = ratio ** (1.0 / max(1, arity - 1))
            cards.append(max(1, int(round(fanout))))
    return cards


def predict_bag_ops(eval_order, profiles, simd=True, crossover=None):
    """Predicted simulated lane ops for one bag's generic join.

    Walks the evaluation order like the join's loop nest: at each level
    the participating sets' estimated cardinalities price one multiway
    intersection (via ``repro.sets.cost.predict_intersection_ops``),
    multiplied by the estimated number of open prefixes; the prefix
    count then grows by the level's minimum cardinality (each
    intersection result is bounded by its smallest input).  An upper
    bound in the AGM spirit — compare against measured ops to read the
    model's pessimism per bag.
    """
    total = 0
    prefixes = 1
    for attr in eval_order:
        cards = _level_cards(attr, profiles)
        if not cards:
            continue
        if len(cards) >= 2:
            total += prefixes * _cost.predict_intersection_ops(
                cards, simd=simd, crossover=crossover)
        prefixes *= max(1, min(cards))
    return int(total)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _format_ms(seconds):
    return "%.3f ms" % (seconds * 1e3)


def _render_phases(lines, tracer):
    totals = phase_totals(tracer)
    if not totals:
        return
    lines.append("phases:")
    named = [name for name in PHASE_ORDER if name in totals]
    named += sorted(set(totals) - set(PHASE_ORDER))
    for name in named:
        count, seconds = totals[name]
        times = "  (x%d)" % count if count > 1 else ""
        lines.append("  %-18s %10s%s" % (name, _format_ms(seconds), times))
    from .trace import CAT_EXECUTE
    execute = category_seconds(tracer, CAT_EXECUTE)
    if execute:
        lines.append("  %-18s %10s" % ("execute", _format_ms(execute)))


def _render_bag(lines, index, bag, stats, simd):
    lines.append("  bag %d: %s" % (index, bag.describe()))
    if bag.input_profiles:
        layouts = ", ".join(
            "%s[%s, %d tuples]" % (p["name"], p["kind"], p["cardinality"])
            for p in bag.input_profiles)
        lines.append("      layouts: %s" % layouts)
    if bag.reused_from_signature:
        lines.append("      cache: reused an identical bag's result "
                     "(not re-evaluated)")
        return
    if bag.actual_seconds is None:
        lines.append("      actual: not evaluated")
        return
    actual_ops = bag.actual_ops or 0
    lines.append("      actual: %s, %d lane ops"
                 % (_format_ms(bag.actual_seconds), actual_ops))
    predicted = predict_bag_ops(bag.eval_order, bag.input_profiles,
                                simd=simd)
    lines.append("      predicted: %d lane ops (repro.sets.cost model)"
                 % predicted)
    if actual_ops > 0:
        lines.append("      cost-model error: %.2fx (predicted/actual)"
                     % (predicted / float(actual_ops)))
    else:
        lines.append("      cost-model error: n/a (no lane ops charged "
                     "— vectorized fast path)")
    if bag.predicted_ops:
        lines.append(
            "      planner estimate: %d lane ops, mispredict %.2fx "
            "(actual/estimate)"
            % (bag.predicted_ops, actual_ops / float(bag.predicted_ops)))
    if bag.parallelized and stats is not None and stats.morsels:
        lines.append(
            "      parallel: mode=%s, %d morsel(s), %d steal(s), "
            "busy ratio %.2f"
            % (stats.mode, stats.n_morsels, stats.steals,
               stats.busy_ratio()))


def render_explain_analyze(plan, stats, tracer, config, result=None,
                           logical=None, tuning=None):
    """Render the annotated plan; every input may be ``None``-ish.

    ``logical``, when given, is the optimized
    :class:`~repro.lir.ir.LogicalRule` of the last-executed rule; its
    pass trace is rendered as the pass-by-pass logical plan between the
    rule text and the physical plan.  ``tuning``, when given, is the
    adaptive-execution state dict (``profile``, ``replans``,
    ``mispredict_ratio``) rendered as a footer.
    """
    lines = ["EXPLAIN ANALYZE"]
    if plan is None:
        lines.append("(no plan recorded — the program produced its "
                     "result without a rule plan)")
        return "\n".join(lines)
    mode = stats.execution_mode if stats is not None \
        else config.execution_mode
    lines.append("rule: %s" % plan.rule)
    lines.append("execution mode: %s" % mode)
    if logical is not None and logical.trace is not None:
        lines.append(logical.trace.describe())
    _render_phases(lines, tracer)
    lines.append("GHD plan (width %.2f, %d bags), global order %s:"
                 % (plan.ghd.width(), plan.ghd.n_nodes,
                    list(plan.global_order)))
    for index, bag in enumerate(plan.bags):
        _render_bag(lines, index, bag, stats, simd=config.simd)
    lines.append("top-down pass: %s"
                 % ("ran" if plan.used_top_down else "elided (App. B.2)"))
    if stats is not None:
        lines.append(
            "caches: trie %d/%d hit/miss, level-0 memo %d/%d, "
            "plan %d/%d"
            % (stats.trie_cache_hits, stats.trie_cache_misses,
               stats.level0_cache_hits, stats.level0_cache_misses,
               stats.plan_cache_hits, stats.plan_cache_misses))
        if stats.execution_mode == "compiled":
            lines.append(
                "compiled pipeline: %d parse(s), %d GHD build(s), "
                "%d codegen run(s), %d source reuse(s), "
                "%d generated bag call(s)"
                % (stats.parses, stats.ghd_builds, stats.codegen_runs,
                   stats.bag_codegen_reuses, stats.compiled_bag_calls))
    if tuning is not None:
        profile = tuning.get("profile")
        lines.append("adaptive: %s"
                     % (profile if profile else "on (no tuning profile — "
                        "paper-default constants)"))
        lines.append("  tuning.replans: %d   tuning.mispredict_ratio: %.2fx"
                     % (tuning.get("replans", 0),
                        tuning.get("mispredict_ratio", 0.0)))
    if result is not None:
        cardinality = getattr(result, "cardinality", None)
        if cardinality is not None:
            lines.append("result: %d tuple(s)" % cardinality)
    return "\n".join(lines)
