"""OpenMetrics text exposition of a :class:`MetricsRegistry`.

Renders the registry in the OpenMetrics text format (the Prometheus
exposition format plus the stricter rules: ``_total`` sample suffix on
counters, cumulative ``le`` histogram buckets ending in ``+Inf``,
``# TYPE``/``# HELP`` metadata, and a final ``# EOF``), so a standard
scraper can consume a long-lived engine's telemetry:

* :func:`render_openmetrics` / :func:`write_openmetrics` — text out;
* :func:`validate_openmetrics` — a strict in-tree (promtool-style)
  parser used by tests and the CI telemetry smoke job, so the format
  stays honest without an external toolchain;
* :func:`serve_metrics` — a tiny stdlib HTTP scrape endpoint
  (``GET /metrics``) for live processes; ``port=0`` picks a free port.

Histogram families also export interpolated p50/p95/p99 as a separate
``<name>_quantile`` gauge family (label ``quantile``) — scrapers that
can't run ``histogram_quantile`` still get latency quantiles directly.

Metric names are sanitized into the ``repro_`` namespace
(``telemetry.query_seconds`` → ``repro_telemetry_query_seconds``);
structured labels come straight off the instruments, never parsed out
of series keys.
"""

import math
import re
import sys
import threading

#: Exported quantiles for every histogram family.
QUANTILES = (0.5, 0.95, 0.99)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$")
_LABEL_PAIR = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')

CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; " \
    "charset=utf-8"


def metric_name(name, prefix="repro"):
    """Sanitize an internal metric name (``cache.plan.hits``) into the
    exposition namespace (``repro_cache_plan_hits``)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if prefix:
        cleaned = "%s_%s" % (prefix, cleaned)
    return cleaned


def _escape(value):
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _labels_text(labels, extra=()):
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (re.sub(r"[^a-zA-Z0-9_]", "_",
                                                 str(key)),
                                          _escape(value))
                             for key, value in pairs)


def _format_value(value):
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _families(instruments):
    """Group instruments by metric name, preserving first-seen order."""
    families = {}
    for instrument in instruments.values():
        families.setdefault(instrument.name, []).append(instrument)
    return families


def render_openmetrics(registry, prefix="repro", help_text=None):
    """The registry as OpenMetrics text (ends with ``# EOF``).

    ``help_text`` optionally maps internal metric names to ``# HELP``
    strings; unknown names get a generated one.
    """
    help_text = help_text or {}
    lines = []

    def meta(name, exposed, kind):
        lines.append("# TYPE %s %s" % (exposed, kind))
        lines.append("# HELP %s %s"
                     % (exposed, _escape(help_text.get(
                         name, "repro engine metric %s" % name))))

    for name, counters in sorted(_families(registry.counters).items()):
        exposed = metric_name(name, prefix)
        meta(name, exposed, "counter")
        for counter in counters:
            lines.append("%s_total%s %s"
                         % (exposed, _labels_text(counter.labels),
                            _format_value(counter.value)))
    for name, gauges in sorted(_families(registry.gauges).items()):
        exposed = metric_name(name, prefix)
        meta(name, exposed, "gauge")
        for gauge in gauges:
            lines.append("%s%s %s"
                         % (exposed, _labels_text(gauge.labels),
                            _format_value(gauge.value)))
    histogram_families = sorted(_families(registry.histograms).items())
    for name, histograms in histogram_families:
        exposed = metric_name(name, prefix)
        meta(name, exposed, "histogram")
        for histogram in histograms:
            cumulative = 0
            for i, bound in enumerate(histogram.buckets + (math.inf,)):
                cumulative += histogram.counts[i]
                lines.append("%s_bucket%s %s"
                             % (exposed,
                                _labels_text(
                                    histogram.labels,
                                    (("le", _format_value(
                                        float(bound))),)),
                                _format_value(cumulative)))
            lines.append("%s_sum%s %s"
                         % (exposed, _labels_text(histogram.labels),
                            _format_value(histogram.total)))
            lines.append("%s_count%s %s"
                         % (exposed, _labels_text(histogram.labels),
                            _format_value(histogram.count)))
    # Interpolated quantiles as a separate gauge family per histogram —
    # emitted after the histograms so each family's samples stay
    # contiguous, as the format requires.
    for name, histograms in histogram_families:
        populated = [h for h in histograms if h.count]
        if not populated:
            continue
        exposed = metric_name(name, prefix) + "_quantile"
        lines.append("# TYPE %s gauge" % exposed)
        lines.append("# HELP %s interpolated quantiles of %s"
                     % (exposed, metric_name(name, prefix)))
        for histogram in populated:
            for q in QUANTILES:
                value = histogram.quantile(q)
                lines.append("%s%s %s"
                             % (exposed,
                                _labels_text(histogram.labels,
                                             (("quantile", "%g" % q),)),
                                _format_value(value)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(registry, path, prefix="repro", help_text=None):
    """Render to a file; returns ``path``."""
    text = render_openmetrics(registry, prefix=prefix,
                              help_text=help_text)
    with open(path, "w") as handle:
        handle.write(text)
    return path


# ---------------------------------------------------------------------------
# strict validation (promtool-style, in-tree)
# ---------------------------------------------------------------------------


def _parse_sample_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return float("nan")
    return float(text)


def validate_openmetrics(text):
    """Return a list of format violations (empty = valid).

    Stricter than a generic Prometheus scrape, matching what
    ``promtool check metrics`` and the OpenMetrics spec enforce:

    * every sample's family must be declared with ``# TYPE`` first;
    * families must be contiguous (no interleaving) and not repeated;
    * counter samples must use the ``_total`` suffix;
    * histogram families need cumulative (monotone) ``le`` buckets, a
      ``+Inf`` bucket, and ``_count`` equal to the ``+Inf`` bucket,
      with ``_sum``/``_count`` present per label set;
    * no duplicate series, valid names/labels/values throughout;
    * the exposition ends with exactly one ``# EOF``.
    """
    problems = []
    types = {}
    current_family = None
    closed_families = set()
    seen_series = set()
    # family -> labels-without-le -> list of (le, value), plus sums/counts
    histogram_state = {}
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        problems.append("exposition does not end with # EOF")
    eof_seen = False

    def family_of(sample_name):
        for family, kind in types.items():
            if kind == "counter" and sample_name == family + "_total":
                return family
            if kind == "histogram" and sample_name in (
                    family + "_bucket", family + "_sum",
                    family + "_count"):
                return family
            if sample_name == family:
                return family
        return None

    def enter_family(family, line_number):
        nonlocal current_family
        if family == current_family:
            return
        if family in closed_families:
            problems.append(
                "line %d: family %r interleaved (samples must be "
                "contiguous)" % (line_number, family))
        if current_family is not None:
            closed_families.add(current_family)
        current_family = family

    for line_number, line in enumerate(lines, 1):
        if line == "":
            problems.append("line %d: blank line" % line_number)
            continue
        if line == "# EOF":
            if eof_seen:
                problems.append("line %d: repeated # EOF" % line_number)
            eof_seen = True
            if line_number != len(lines):
                problems.append("line %d: content after # EOF"
                                % line_number)
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                problems.append("line %d: malformed TYPE" % line_number)
                continue
            _, _, family, kind = parts
            if not _NAME_OK.match(family):
                problems.append("line %d: bad metric name %r"
                                % (line_number, family))
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped", "info", "stateset"):
                problems.append("line %d: unknown type %r"
                                % (line_number, kind))
            if family in types:
                problems.append("line %d: duplicate TYPE for %r"
                                % (line_number, family))
            types[family] = kind
            enter_family(family, line_number)
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_OK.match(parts[2]):
                problems.append("line %d: malformed HELP" % line_number)
            continue
        if line.startswith("#"):
            problems.append("line %d: unknown comment %r"
                            % (line_number, line))
            continue
        match = _SAMPLE.match(line)
        if not match:
            problems.append("line %d: unparseable sample %r"
                            % (line_number, line))
            continue
        sample_name = match.group("name")
        labels_text = match.group("labels") or ""
        labels = {}
        if labels_text:
            pairs = list(_LABEL_PAIR.finditer(labels_text))
            rebuilt = ",".join(pair.group(0) for pair in pairs)
            if rebuilt != labels_text:
                problems.append("line %d: malformed labels %r"
                                % (line_number, labels_text))
            for pair in pairs:
                if pair.group("key") in labels:
                    problems.append("line %d: duplicate label %r"
                                    % (line_number, pair.group("key")))
                labels[pair.group("key")] = pair.group("value")
        try:
            value = _parse_sample_value(match.group("value"))
        except ValueError:
            problems.append("line %d: bad value %r"
                            % (line_number, match.group("value")))
            continue
        family = family_of(sample_name)
        if family is None:
            problems.append("line %d: sample %r has no # TYPE"
                            % (line_number, sample_name))
            continue
        enter_family(family, line_number)
        kind = types[family]
        if kind == "counter":
            if not sample_name.endswith("_total"):
                problems.append(
                    "line %d: counter sample %r must end in _total"
                    % (line_number, sample_name))
            if value < 0:
                problems.append("line %d: negative counter value"
                                % line_number)
        series = (sample_name,
                  tuple(sorted(labels.items())))
        if series in seen_series:
            problems.append("line %d: duplicate series %s%s"
                            % (line_number, sample_name,
                               dict(sorted(labels.items()))))
        seen_series.add(series)
        if kind == "histogram":
            state = histogram_state.setdefault(
                family, {"buckets": {}, "sums": {}, "counts": {}})
            base = tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le"))
            if sample_name == family + "_bucket":
                if "le" not in labels:
                    problems.append(
                        "line %d: histogram bucket without le label"
                        % line_number)
                else:
                    try:
                        bound = _parse_sample_value(labels["le"])
                    except ValueError:
                        problems.append("line %d: bad le value %r"
                                        % (line_number, labels["le"]))
                        bound = None
                    if bound is not None:
                        state["buckets"].setdefault(base, []).append(
                            (bound, value))
            elif sample_name == family + "_sum":
                state["sums"][base] = value
            elif sample_name == family + "_count":
                state["counts"][base] = value

    for family, state in sorted(histogram_state.items()):
        for base, buckets in sorted(state["buckets"].items()):
            bounds = [b for b, _ in buckets]
            if bounds != sorted(bounds):
                problems.append("histogram %s%s: le bounds not sorted"
                                % (family, dict(base)))
            values = [v for _, v in buckets]
            if any(later < earlier for earlier, later
                   in zip(values, values[1:])):
                problems.append(
                    "histogram %s%s: bucket counts not cumulative"
                    % (family, dict(base)))
            if not bounds or bounds[-1] != math.inf:
                problems.append("histogram %s%s: missing +Inf bucket"
                                % (family, dict(base)))
            count = state["counts"].get(base)
            if count is None:
                problems.append("histogram %s%s: missing _count"
                                % (family, dict(base)))
            elif bounds and bounds[-1] == math.inf \
                    and values[-1] != count:
                problems.append(
                    "histogram %s%s: _count %g != +Inf bucket %g"
                    % (family, dict(base), count, values[-1]))
            if base not in state["sums"]:
                problems.append("histogram %s%s: missing _sum"
                                % (family, dict(base)))
    return problems


# ---------------------------------------------------------------------------
# stdlib scrape endpoint
# ---------------------------------------------------------------------------


def serve_metrics(registry, host="127.0.0.1", port=0, prefix="repro"):
    """Serve ``GET /metrics`` for ``registry`` on a daemon thread.

    Returns the ``ThreadingHTTPServer``; ``server.server_address``
    carries the bound port (useful with ``port=0``), and
    ``server.shutdown()`` stops it.  Rendering happens per scrape, so
    the endpoint always reflects the live registry.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):
            if self.path.split("?")[0] not in ("/metrics", "/"):
                self.send_response(404)
                self.end_headers()
                return
            body = render_openmetrics(registry,
                                      prefix=prefix).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # silence per-scrape stderr noise
            pass

    server = ThreadingHTTPServer((host, port), MetricsHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              name="repro-metrics-scrape")
    thread.start()
    server.scrape_thread = thread
    return server


def main(argv=None):
    """Validate an exposition file:
    ``python -m repro.obs.openmetrics metrics.prom``."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[0]) as handle:
        text = handle.read()
    problems = validate_openmetrics(text)
    if problems:
        for problem in problems:
            print("INVALID: %s" % problem, file=sys.stderr)
        return 1
    samples = sum(1 for line in text.splitlines()
                  if line and not line.startswith("#"))
    print("valid OpenMetrics exposition: %d sample(s)" % samples)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
