"""Chrome ``trace_event`` export and schema validation.

Converts a :class:`repro.obs.trace.Tracer`'s span records into the JSON
Array Format understood by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev): one ``"X"`` (complete) event per span with
microsecond timestamps relative to the tracer's epoch, one thread per
lane (``tid`` 0 is the main lane, forked workers get their own rows),
and ``"M"`` (metadata) events naming the process and threads.

:func:`validate_chrome_trace` checks a payload against the parts of the
trace-event schema the viewers actually enforce — required keys, known
phase letters, non-negative monotonic timestamps, non-negative
durations — plus per-lane span nesting (no partially-overlapping
spans).  CI runs it over a traced smoke query via::

    python -m repro.obs.export trace.json
"""

import json
import sys

from .trace import MAIN_LANE

#: Phase letters of the Chrome trace-event format we may emit or accept.
ALLOWED_PHASES = frozenset("BEXIiMsftPNODbne")

#: Keys every emitted event carries.
REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")

PROCESS_NAME = "repro-engine"


def lane_tids(lanes):
    """Stable lane → integer thread-id mapping; main lane is tid 0."""
    ordered = [MAIN_LANE] + sorted(set(lanes) - {MAIN_LANE})
    return {lane: tid for tid, lane in enumerate(ordered)}


def events_from_spans(spans, t0=0.0, pid=1):
    """Chrome trace events (metadata + ``"X"`` spans) from span records.

    Shared by :func:`to_chrome` and the telemetry layer's slow-query
    trace archiving; ``spans`` is any iterable of
    :class:`~repro.obs.trace.SpanRecord`.
    """
    spans = sorted(spans, key=lambda span: span.start)
    tids = lane_tids(span.lane for span in spans)
    if not tids:
        tids = {MAIN_LANE: 0}
    events = [{
        "name": "process_name", "ph": "M", "ts": 0, "pid": pid, "tid": 0,
        "args": {"name": PROCESS_NAME},
    }]
    for lane, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append({
            "name": "thread_name", "ph": "M", "ts": 0, "pid": pid,
            "tid": tid, "args": {"name": lane},
        })
    for span in spans:
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": max(0.0, (span.start - t0) * 1e6),
            "dur": max(0.0, (span.end - span.start) * 1e6),
            "pid": pid,
            "tid": tids[span.lane],
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    return events


def to_chrome(tracer, pid=1):
    """Render a tracer's spans as a Chrome trace-event payload (dict)."""
    return {
        "traceEvents": events_from_spans(tracer.spans, tracer.t0,
                                         pid=pid),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(tracer, path, pid=1):
    """Serialize :func:`to_chrome` output to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(to_chrome(tracer, pid=pid), handle, indent=1)
    return path


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def _events_of(payload):
    if isinstance(payload, list):
        return payload
    if isinstance(payload, dict):
        return payload.get("traceEvents")
    return None


def span_nesting_problems(events):
    """Check per-lane span trees are well formed.

    Within one ``(pid, tid)`` lane, any two ``"X"`` spans must either be
    disjoint or strictly nested — a pair that partially overlaps means
    an orphaned or mis-closed span.  Quadratic per lane, fine at trace
    scale.
    """
    problems = []
    by_lane = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        key = (event.get("pid"), event.get("tid"))
        by_lane.setdefault(key, []).append(event)
    for key, spans in sorted(by_lane.items()):
        intervals = [(e["ts"], e["ts"] + e.get("dur", 0), e["name"])
                     for e in spans]
        intervals.sort()
        for i, (s1, e1, n1) in enumerate(intervals):
            for s2, e2, n2 in intervals[i + 1:]:
                if s2 >= e1:
                    break
                if e2 > e1:
                    problems.append(
                        "lane %s: spans %r [%f, %f] and %r [%f, %f] "
                        "partially overlap" % (key, n1, s1, e1, n2, s2, e2))
    return problems


def validate_chrome_trace(payload):
    """Return a list of schema problems (empty = valid).

    ``payload`` is a parsed trace: either the JSON Object Format
    (``{"traceEvents": [...]}``) or the bare JSON Array Format.
    """
    events = _events_of(payload)
    if not isinstance(events, list):
        return ["payload has no traceEvents array"]
    if not events:
        return ["traceEvents is empty"]
    problems = []
    last_ts = None
    for position, event in enumerate(events):
        where = "event %d" % position
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        for key in REQUIRED_KEYS:
            if key not in event:
                problems.append("%s: missing required key %r" % (where, key))
        phase = event.get("ph")
        if not (isinstance(phase, str) and len(phase) == 1
                and phase in ALLOWED_PHASES):
            problems.append("%s: bad phase letter %r" % (where, phase))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: bad timestamp %r" % (where, ts))
        elif phase != "M":
            if last_ts is not None and ts < last_ts:
                problems.append(
                    "%s: timestamp %f goes backwards (previous %f)"
                    % (where, ts, last_ts))
            last_ts = ts
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append("%s: bad duration %r" % (where, duration))
    problems.extend(span_nesting_problems(
        [e for e in events if isinstance(e, dict)]))
    return problems


def main(argv=None):
    """Validate a trace file: ``python -m repro.obs.export trace.json``."""
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[0]) as handle:
        payload = json.load(handle)
    problems = validate_chrome_trace(payload)
    if problems:
        for problem in problems:
            print("INVALID: %s" % problem, file=sys.stderr)
        return 1
    events = _events_of(payload)
    names = {e["name"] for e in events if e.get("ph") == "X"}
    lanes = {e.get("tid") for e in events if e.get("ph") == "X"}
    print("valid Chrome trace: %d events, %d spans, %d lane(s), "
          "span names: %s"
          % (len(events), sum(1 for e in events if e.get("ph") == "X"),
             len(lanes), ", ".join(sorted(names))))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
