"""Hierarchical span tracing for the query lifecycle.

The paper reports only end-to-end runtimes; this module makes the
pipeline's internal anatomy observable.  A :class:`Tracer` records
*spans* — named, timed intervals arranged in a tree — covering the full
query lifecycle: parse → GHD search → attribute ordering → codegen →
plan-cache lookup → per-bag execution → per-morsel → (optionally)
per-intersection.  Spans on the main lane nest by context-manager
discipline; morsels executed by forked workers are attributed to
per-worker lanes from timestamps the workers ship back with their
results (``time.perf_counter`` is CLOCK_MONOTONIC on Linux, so child
timestamps are directly comparable with the parent's).

The recorded spans export to Chrome ``trace_event`` JSON
(:mod:`repro.obs.export`), loadable in ``chrome://tracing`` or Perfetto.

Tracing is off by default and must cost nothing when off: the engine's
hot paths hold a ``tracer`` that is ``None`` and go through
:func:`maybe_span`, which returns one shared no-op context manager
without allocating.
"""

import time

#: Lane name for spans recorded on the main (driver) thread of control.
MAIN_LANE = "main"

#: Span categories used by the engine's instrumentation points.
CAT_QUERY = "query"
CAT_COMPILE = "compile"
CAT_EXECUTE = "execute"
CAT_CACHE = "cache"
CAT_INTERSECT = "intersect"


class SpanRecord:
    """One finished span: a named interval on a lane, at a tree depth."""

    __slots__ = ("name", "cat", "start", "end", "lane", "depth", "args")

    def __init__(self, name, cat, start, end, lane=MAIN_LANE, depth=0,
                 args=None):
        self.name = name
        self.cat = cat
        self.start = start
        self.end = end
        self.lane = lane
        self.depth = depth
        self.args = args if args is not None else {}

    @property
    def seconds(self):
        return self.end - self.start

    def to_dict(self, t0=0.0):
        """JSON-safe form with timestamps re-based on ``t0`` (the
        tracer epoch) — what the flight recorder rings and dumps."""
        return {
            "name": self.name, "cat": self.cat,
            "start": self.start - t0, "end": self.end - t0,
            "lane": self.lane, "depth": self.depth,
        }

    def __repr__(self):
        return "SpanRecord(%s/%s, %.6fs, lane=%s, depth=%d)" % (
            self.cat, self.name, self.seconds, self.lane, self.depth)


class _NullSpan:
    """Shared no-op context manager: the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


#: The one null span every disabled call site shares — no allocation.
NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one main-lane span on its tracer."""

    __slots__ = ("tracer", "name", "cat", "args", "start", "depth")

    def __init__(self, tracer, name, cat, args):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        tracer = self.tracer
        self.depth = len(tracer._stack)
        tracer._stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        end = time.perf_counter()
        tracer = self.tracer
        tracer._stack.pop()
        tracer.spans.append(SpanRecord(self.name, self.cat, self.start,
                                       end, MAIN_LANE, self.depth,
                                       self.args))
        return False


class Tracer:
    """Collects the span tree of one or more query executions.

    Parameters
    ----------
    capture_intersections:
        Record one span per set intersection.  Off by default: the
        per-intersection volume dwarfs every other level and (under the
        parallel executor) would be paid inside forked children whose
        records are lost to copy-on-write anyway.  Morsel, bag, and
        compile-phase spans are always captured.
    """

    def __init__(self, capture_intersections=False):
        self.enabled = True
        self.capture_intersections = capture_intersections
        self.t0 = time.perf_counter()
        self.spans = []
        self._stack = []

    # -- recording ----------------------------------------------------------

    @staticmethod
    def now():
        """Timestamp on the tracer's clock (``time.perf_counter``)."""
        return time.perf_counter()

    def span(self, name, cat=CAT_QUERY, **args):
        """Context manager recording a nested span on the main lane."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, cat, args)

    def record(self, name, cat, start, end, lane=MAIN_LANE, args=None):
        """Record an already-timed interval (e.g. a worker's morsel).

        Main-lane records adopt the current nesting depth; other lanes
        are flat sequences of non-overlapping intervals.
        """
        if not self.enabled:
            return
        depth = len(self._stack) if lane == MAIN_LANE else 0
        self.spans.append(SpanRecord(name, cat, start, end, lane, depth,
                                     args))

    # -- inspection ---------------------------------------------------------

    def lanes(self):
        """Lane names, main lane first, others in sorted order."""
        seen = {span.lane for span in self.spans}
        ordered = [MAIN_LANE] if MAIN_LANE in seen else []
        ordered.extend(sorted(seen - {MAIN_LANE}))
        return ordered

    def find(self, name=None, cat=None):
        """Spans matching a name and/or category."""
        return [span for span in self.spans
                if (name is None or span.name == name)
                and (cat is None or span.cat == cat)]

    def phase_seconds(self, max_depth=1):
        """Seconds per pipeline phase, aggregated by span name.

        Covers main-lane spans from depth 1 (direct children of the
        root ``query`` span: parse, rule, plan-cache lookup, per-bag
        execution) down to ``max_depth``; the telemetry query log
        stores this as the record's ``phases`` field.
        """
        phases = {}
        for span in self.spans:
            if span.lane != MAIN_LANE or not 0 < span.depth <= max_depth:
                continue
            phases[span.name] = phases.get(span.name, 0.0) + span.seconds
        return phases

    def reset(self):
        """Drop every recorded span and restart the clock."""
        self.spans = []
        self._stack = []
        self.t0 = time.perf_counter()

    def __len__(self):
        return len(self.spans)


def maybe_span(tracer, name, cat=CAT_QUERY, **args):
    """Span on ``tracer``, or the shared no-op when tracing is off.

    The engine's instrumentation points call this with the config's
    ``tracer`` attribute, which is ``None`` unless the user enabled
    tracing — the disabled path is one ``is None`` check plus a shared
    object, so instrumented code costs nothing in normal runs.
    """
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    return _Span(tracer, name, cat, args)
