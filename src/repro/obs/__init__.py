"""Observability for the query pipeline: tracing, metrics, EXPLAIN ANALYZE.

Three cooperating pieces, all optional and all free when disabled:

* :mod:`repro.obs.trace` — hierarchical span tracer over the query
  lifecycle (parse → GHD search → attribute ordering → codegen →
  plan-cache lookup → bags → morsels → intersections), with per-worker
  lane attribution.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON export
  (``chrome://tracing`` / Perfetto) and schema validation.
* :mod:`repro.obs.metrics` — cross-query counters/gauges/histograms
  superseding the scattered per-query ``ExecStats`` counters.
* :mod:`repro.obs.explain` — EXPLAIN ANALYZE rendering with
  predicted-vs-actual cost-model error per GHD bag.

Entry points: ``Database.enable_tracing()`` / ``Database.enable_metrics()``
/ ``Database.explain_analyze()``, the CLI flags ``--trace`` /
``--metrics`` / ``--explain-analyze``, and the ``REPRO_TRACE``
environment variable.
"""

from .metrics import MetricsRegistry
from .trace import Tracer, maybe_span

__all__ = ["MetricsRegistry", "Tracer", "maybe_span"]
