"""Observability for the query pipeline: tracing, metrics, telemetry.

Cooperating pieces, all optional and all free when disabled:

* :mod:`repro.obs.trace` — hierarchical span tracer over the query
  lifecycle (parse → GHD search → attribute ordering → codegen →
  plan-cache lookup → bags → morsels → intersections), with per-worker
  lane attribution.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON export
  (``chrome://tracing`` / Perfetto) and schema validation.
* :mod:`repro.obs.metrics` — cross-query counters/gauges/histograms
  (with an optional labels dimension) superseding the scattered
  per-query ``ExecStats`` counters.
* :mod:`repro.obs.explain` — EXPLAIN ANALYZE rendering with
  predicted-vs-actual cost-model error per GHD bag.
* :mod:`repro.obs.telemetry` — process-lifetime pipeline for
  long-lived operation: structured JSONL query log with rotation, the
  :class:`~repro.obs.telemetry.TelemetryHub` lifetime aggregation, and
  slow-query promotion.
* :mod:`repro.obs.flight` — flight recorder: bounded rings of recent
  queries/spans, a write-ahead in-flight journal, post-mortem dumps.
* :mod:`repro.obs.openmetrics` — OpenMetrics/Prometheus text
  exposition, strict in-tree validation, and a stdlib scrape endpoint.

Entry points: ``Database.enable_tracing()`` / ``enable_metrics()`` /
``enable_telemetry()`` / ``explain_analyze()``, the CLI flags
``--trace`` / ``--metrics`` / ``--telemetry`` and the ``repro top``
monitor, and the ``REPRO_TRACE`` environment variable.
"""

from .metrics import MetricsRegistry
from .trace import Tracer, maybe_span

__all__ = ["MetricsRegistry", "Tracer", "maybe_span"]
