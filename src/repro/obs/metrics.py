"""Metrics registry: counters, gauges, and histograms for the engine.

Absorbs and supersedes the scattered per-query counters in
:mod:`repro.engine.stats`: a :class:`MetricsRegistry` accumulates
*across* queries (``ExecStats`` stays the per-query snapshot behind
``Database.last_stats``).  The engine feeds it from two directions:

* ``Database`` calls :meth:`MetricsRegistry.record_exec_stats` after
  every query, folding the ExecStats counters plus morsel-latency and
  lane-ops histograms into the registry, along with layout-dispatch
  counts derived from the simulated-SIMD :class:`repro.sets.cost.OpCounter`.
* hot paths (interpretation's intersection loop, the compiled runtime
  helpers) hold ``config.metrics`` — ``None`` unless enabled, so the
  disabled cost is one ``is not None`` check — and observe
  intersection sizes directly.

Everything is process-local and allocation-light; no external
dependencies.
"""

import math

#: Power-of-four upper bounds for size-like histograms (set
#: cardinalities, lane ops): 1, 4, 16, ... ~1.07e9.
SIZE_BUCKETS = tuple(4 ** i for i in range(16))

#: Upper bounds (seconds) for latency histograms: 1 µs .. ~100 s.
TIME_BUCKETS = tuple(1e-6 * (10 ** (i / 2.0)) for i in range(17))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """Last-set value (e.g. cache sizes, worker counts)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in an implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name, buckets=SIZE_BUCKETS):
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value):
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": {
                ("<=%g" % bound if i < len(self.buckets) else "inf"):
                    self.counts[i]
                for i, bound in enumerate(self.buckets + (math.inf,))
                if self.counts[i]
            },
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first use.

    ``enabled`` gates every mutation so a disabled registry can stay
    attached without cost; the engine additionally keeps
    ``config.metrics`` as ``None`` when disabled so hot paths pay only
    an ``is not None`` check.
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    # -- instrument access --------------------------------------------------

    def counter(self, name):
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name):
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name, buckets=SIZE_BUCKETS):
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, buckets)
        return histogram

    # -- recording ----------------------------------------------------------

    def inc(self, name, amount=1):
        if not self.enabled:
            return
        self.counter(name).inc(amount)

    def set_gauge(self, name, value):
        if not self.enabled:
            return
        self.gauge(name).set(value)

    def observe(self, name, value, buckets=SIZE_BUCKETS):
        if not self.enabled:
            return
        self.histogram(name, buckets).observe(value)

    def record_exec_stats(self, stats):
        """Fold one query's :class:`repro.engine.stats.ExecStats` in."""
        if not self.enabled or stats is None:
            return
        self.inc("cache.trie.hits", stats.trie_cache_hits)
        self.inc("cache.trie.misses", stats.trie_cache_misses)
        self.inc("cache.level0.hits", stats.level0_cache_hits)
        self.inc("cache.level0.misses", stats.level0_cache_misses)
        self.inc("cache.plan.hits", stats.plan_cache_hits)
        self.inc("cache.plan.misses", stats.plan_cache_misses)
        self.inc("pipeline.parses", stats.parses)
        self.inc("pipeline.ghd_builds", stats.ghd_builds)
        self.inc("pipeline.codegen_runs", stats.codegen_runs)
        self.inc("pipeline.bag_codegen_reuses", stats.bag_codegen_reuses)
        self.inc("pipeline.compiled_bag_calls", stats.compiled_bag_calls)
        if stats.morsels:
            self.inc("parallel.morsels", stats.n_morsels)
            self.inc("parallel.steals", stats.steals)
            self.inc("parallel.stranded_workers", stats.stranded_workers)
            self.set_gauge("parallel.workers", stats.workers)
            for morsel in stats.morsels:
                self.observe("morsel.seconds", morsel.seconds, TIME_BUCKETS)
                self.observe("morsel.lane_ops", morsel.lane_ops)

    def record_counter_delta(self, before, after):
        """Fold an :class:`~repro.sets.cost.OpCounter` snapshot delta in.

        ``before``/``after`` are ``OpCounter.snapshot()`` dicts; the
        per-algorithm call deltas give layout-dispatch counts.
        """
        if not self.enabled:
            return
        self.inc("ops.simd", after["simd_ops"] - before["simd_ops"])
        self.inc("ops.scalar", after["scalar_ops"] - before["scalar_ops"])
        previous = before["by_algorithm"]
        for algorithm, stat in after["by_algorithm"].items():
            prior = previous.get(algorithm, {"calls": 0})
            calls = stat["calls"] - prior["calls"]
            if calls:
                self.inc("intersect.calls.%s" % algorithm, calls)

    # -- inspection ---------------------------------------------------------

    def snapshot(self):
        """Plain-dict view of every instrument (JSON-serializable)."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self.histograms.items())},
        }

    def reset(self):
        """Drop every instrument (names re-create lazily)."""
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def describe(self):
        """Human-readable dump, one instrument per line."""
        lines = ["metrics:"]
        for name, counter in sorted(self.counters.items()):
            lines.append("  %-32s %d" % (name, counter.value))
        for name, gauge in sorted(self.gauges.items()):
            lines.append("  %-32s %g (gauge)" % (name, gauge.value))
        for name, histogram in sorted(self.histograms.items()):
            if not histogram.count:
                continue
            lines.append(
                "  %-32s count=%d mean=%.3g min=%.3g max=%.3g" % (
                    name, histogram.count, histogram.mean,
                    histogram.minimum, histogram.maximum))
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)
