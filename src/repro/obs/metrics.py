"""Metrics registry: counters, gauges, and histograms for the engine.

Absorbs and supersedes the scattered per-query counters in
:mod:`repro.engine.stats`: a :class:`MetricsRegistry` accumulates
*across* queries (``ExecStats`` stays the per-query snapshot behind
``Database.last_stats``).  The engine feeds it from two directions:

* ``Database`` calls :meth:`MetricsRegistry.record_exec_stats` after
  every query, folding the ExecStats counters plus morsel-latency and
  lane-ops histograms into the registry, along with layout-dispatch
  counts derived from the simulated-SIMD :class:`repro.sets.cost.OpCounter`.
* hot paths (interpretation's intersection loop, the compiled runtime
  helpers) hold ``config.metrics`` — ``None`` unless enabled, so the
  disabled cost is one ``is not None`` check — and observe
  intersection sizes directly.

Every instrument optionally carries a **labels** dimension
(``registry.inc("queries", labels={"mode": "compiled"})``): one logical
metric fans out into one series per distinct label set, the way the
telemetry hub (:mod:`repro.obs.telemetry`) and the OpenMetrics
exposition (:mod:`repro.obs.openmetrics`) expect, without mangling
label values into metric names.  Unlabeled calls are unchanged and
keep their plain-name series.

Registries serialize to a plain-data form (:meth:`MetricsRegistry.
to_state`) that merges losslessly into another registry
(:meth:`MetricsRegistry.merge_state`) — how forked morsel workers ship
their observations back to the parent (``repro.engine.parallel``) and
how the telemetry hub folds per-query snapshots into process-lifetime
series.

Registries are **thread-safe**: a single re-entrant ``lock`` guards
instrument creation and every mutator, because the query service
(:mod:`repro.serve`) updates one registry from both its event loop and
its executor thread.  Callers holding memoized instrument objects (the
telemetry hub's hot path) must take ``registry.lock`` around direct
instrument mutation — ``Counter.inc`` itself stays lock-free so the
single-threaded engine paths pay nothing extra.

Everything is process-local and allocation-light; no external
dependencies.
"""

import math
import threading

#: Power-of-four upper bounds for size-like histograms (set
#: cardinalities, lane ops): 1, 4, 16, ... ~1.07e9.
SIZE_BUCKETS = tuple(4 ** i for i in range(16))

#: Upper bounds (seconds) for latency histograms: 1 µs .. ~100 s.
TIME_BUCKETS = tuple(1e-6 * (10 ** (i / 2.0)) for i in range(17))


def labels_key(labels):
    """Canonical tuple form of a labels mapping (sorted ``(k, v)``
    pairs with string values); ``None``/empty becomes ``()``."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_key(name, labels=()):
    """Display key of one series: the bare name, or
    ``name{k=v,...}`` for labeled series.  Used only for dict keys in
    snapshots and ``describe()`` — structured labels stay available on
    the instrument itself (``instrument.labels``)."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % pair for pair in labels))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = tuple(labels)
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """Last-set value (e.g. cache sizes, worker counts)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = tuple(labels)
        self.value = 0

    def set(self, value):
        self.value = value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in an implicit overflow bucket.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name, buckets=SIZE_BUCKETS, labels=()):
        self.name = name
        self.labels = tuple(labels)
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value):
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Interpolated quantile (0 < q < 1) from the bucket counts.

        Linear interpolation inside the winning bucket, the way
        Prometheus' ``histogram_quantile`` estimates from cumulative
        ``le`` buckets — exact min/max clamp the ends, so p0/p100
        degenerate gracefully.  Returns ``None`` on an empty histogram.
        """
        if not self.count:
            return None
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.buckets[i - 1] if i > 0 else \
                    min(self.minimum, self.buckets[0] if self.buckets
                        else self.minimum)
                upper = self.buckets[i] if i < len(self.buckets) \
                    else self.maximum
                lower = max(lower, self.minimum) if i == 0 else lower
                upper = min(upper, self.maximum)
                if upper <= lower:
                    return float(upper)
                fraction = (rank - cumulative) / bucket_count
                return float(lower + (upper - lower) * fraction)
            cumulative += bucket_count
        return float(self.maximum)

    def merge(self, counts, total, count, minimum, maximum, buckets=None):
        """Fold another histogram's raw state in.

        With matching bucket bounds counts add elementwise; mismatched
        bounds re-bucket each foreign bucket's count at its upper bound
        (the overflow bucket lands at the foreign maximum).
        """
        if not count:
            return
        if buckets is None or tuple(buckets) == self.buckets:
            for i, c in enumerate(counts):
                self.counts[i] += c
        else:
            bounds = tuple(buckets) + (maximum,)
            for bound, c in zip(bounds, counts):
                if not c:
                    continue
                index = 0
                for own in self.buckets:
                    if bound <= own:
                        break
                    index += 1
                self.counts[index] += c
        self.count += count
        self.total += total
        if minimum < self.minimum:
            self.minimum = minimum
        if maximum > self.maximum:
            self.maximum = maximum

    def snapshot(self):
        """Plain-dict view.  The bucket list always has the *full*,
        stable shape — one entry per configured bound plus the overflow
        bucket — so snapshots of the same histogram diff cleanly and
        exposition formats get every cumulative bucket (empty buckets
        included)."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": {
                ("<=%g" % bound if i < len(self.buckets) else "inf"):
                    self.counts[i]
                for i, bound in enumerate(self.buckets + (math.inf,))
            },
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first use.

    ``enabled`` gates every mutation so a disabled registry can stay
    attached without cost; the engine additionally keeps
    ``config.metrics`` as ``None`` when disabled so hot paths pay only
    an ``is not None`` check.

    Instruments live in plain dicts keyed by :func:`series_key` — the
    bare metric name for unlabeled series, ``name{k=v}`` for labeled
    ones — and each instrument keeps its structured ``name`` and
    ``labels`` so downstream consumers never parse keys.
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        #: Guards instrument creation and every mutator.  Re-entrant:
        #: ``record_exec_stats`` funnels through ``inc``/``observe``.
        self.lock = threading.RLock()
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    # -- instrument access --------------------------------------------------

    def counter(self, name, labels=None):
        key = series_key(name, labels_key(labels))
        with self.lock:
            counter = self.counters.get(key)
            if counter is None:
                counter = self.counters[key] = Counter(name,
                                                       labels_key(labels))
        return counter

    def gauge(self, name, labels=None):
        key = series_key(name, labels_key(labels))
        with self.lock:
            gauge = self.gauges.get(key)
            if gauge is None:
                gauge = self.gauges[key] = Gauge(name, labels_key(labels))
        return gauge

    def histogram(self, name, buckets=SIZE_BUCKETS, labels=None):
        key = series_key(name, labels_key(labels))
        with self.lock:
            histogram = self.histograms.get(key)
            if histogram is None:
                histogram = self.histograms[key] = Histogram(
                    name, buckets, labels_key(labels))
        return histogram

    # -- recording ----------------------------------------------------------

    def inc(self, name, amount=1, labels=None):
        if not self.enabled:
            return
        with self.lock:
            self.counter(name, labels).inc(amount)

    def set_gauge(self, name, value, labels=None):
        if not self.enabled:
            return
        with self.lock:
            self.gauge(name, labels).set(value)

    def observe(self, name, value, buckets=SIZE_BUCKETS, labels=None):
        if not self.enabled:
            return
        with self.lock:
            self.histogram(name, buckets, labels).observe(value)

    def record_exec_stats(self, stats):
        """Fold one query's :class:`repro.engine.stats.ExecStats` in."""
        if not self.enabled or stats is None:
            return
        with self.lock:
            self._record_exec_stats_locked(stats)

    def _record_exec_stats_locked(self, stats):
        self.inc("cache.trie.hits", stats.trie_cache_hits)
        self.inc("cache.trie.misses", stats.trie_cache_misses)
        self.inc("cache.level0.hits", stats.level0_cache_hits)
        self.inc("cache.level0.misses", stats.level0_cache_misses)
        self.inc("cache.plan.hits", stats.plan_cache_hits)
        self.inc("cache.plan.misses", stats.plan_cache_misses)
        self.inc("pipeline.parses", stats.parses)
        self.inc("pipeline.ghd_builds", stats.ghd_builds)
        self.inc("pipeline.codegen_runs", stats.codegen_runs)
        self.inc("pipeline.bag_codegen_reuses", stats.bag_codegen_reuses)
        self.inc("pipeline.compiled_bag_calls", stats.compiled_bag_calls)
        if stats.morsels:
            self.inc("parallel.morsels", stats.n_morsels)
            self.inc("parallel.steals", stats.steals)
            self.inc("parallel.stranded_workers", stats.stranded_workers)
            self.set_gauge("parallel.workers", stats.workers)
            for morsel in stats.morsels:
                self.observe("morsel.seconds", morsel.seconds, TIME_BUCKETS)
                self.observe("morsel.lane_ops", morsel.lane_ops)

    def record_counter_delta(self, before, after):
        """Fold an :class:`~repro.sets.cost.OpCounter` snapshot delta in.

        ``before``/``after`` are ``OpCounter.snapshot()`` dicts; the
        per-algorithm call deltas give layout-dispatch counts.
        """
        if not self.enabled:
            return
        with self.lock:
            self.inc("ops.simd", after["simd_ops"] - before["simd_ops"])
            self.inc("ops.scalar",
                     after["scalar_ops"] - before["scalar_ops"])
            previous = before["by_algorithm"]
            for algorithm, stat in after["by_algorithm"].items():
                prior = previous.get(algorithm, {"calls": 0})
                calls = stat["calls"] - prior["calls"]
                if calls:
                    self.inc("intersect.calls.%s" % algorithm, calls)

    # -- state transport ----------------------------------------------------

    def to_state(self):
        """Lossless plain-data form of every instrument.

        Pickle/JSON-safe (lists, dicts, numbers, strings only): forked
        workers ship it over a result queue, the telemetry hub folds
        per-query states into lifetime series.  Merge with
        :meth:`merge_state`.
        """
        with self.lock:
            return {
                "counters": [
                    {"name": c.name, "labels": list(c.labels),
                     "value": c.value}
                    for c in self.counters.values()],
                "gauges": [
                    {"name": g.name, "labels": list(g.labels),
                     "value": g.value}
                    for g in self.gauges.values()],
                "histograms": [
                    {"name": h.name, "labels": list(h.labels),
                     "buckets": list(h.buckets), "counts": list(h.counts),
                     "count": h.count, "sum": h.total,
                     "min": h.minimum if h.count else None,
                     "max": h.maximum if h.count else None}
                    for h in self.histograms.values()],
            }

    def merge_state(self, state, labels=None):
        """Fold a :meth:`to_state` payload in (respects ``enabled``).

        ``labels``, when given, are added to every merged series (the
        hub labels per-query states by e.g. execution mode); a label
        already present on the incoming series wins.
        """
        if not self.enabled or not state:
            return
        with self.lock:
            self._merge_state_locked(state, labels)

    def _merge_state_locked(self, state, labels):
        extra = labels_key(labels)

        def merged_labels(own):
            own = tuple(tuple(pair) for pair in own)
            if not extra:
                return dict(own)
            out = dict(extra)
            out.update(dict(own))
            return out
        for item in state.get("counters", ()):
            if item["value"]:
                self.inc(item["name"], item["value"],
                         labels=merged_labels(item.get("labels", ())))
        for item in state.get("gauges", ()):
            self.set_gauge(item["name"], item["value"],
                           labels=merged_labels(item.get("labels", ())))
        for item in state.get("histograms", ()):
            if not item["count"]:
                continue
            histogram = self.histogram(
                item["name"], buckets=tuple(item["buckets"]),
                labels=merged_labels(item.get("labels", ())))
            histogram.merge(item["counts"], item["sum"], item["count"],
                            item["min"], item["max"],
                            buckets=item["buckets"])

    # -- inspection ---------------------------------------------------------

    def snapshot(self):
        """Plain-dict view of every instrument (JSON-serializable).

        Keys are :func:`series_key` strings; labeled series appear as
        ``name{k=v}`` entries next to their unlabeled siblings.
        """
        with self.lock:
            return {
                "counters": {
                    key: c.value
                    for key, c in sorted(self.counters.items())},
                "gauges": {
                    key: g.value
                    for key, g in sorted(self.gauges.items())},
                "histograms": {
                    key: h.snapshot()
                    for key, h in sorted(self.histograms.items())},
            }

    def reset(self):
        """Drop every instrument (names re-create lazily)."""
        with self.lock:
            self.counters = {}
            self.gauges = {}
            self.histograms = {}

    def describe(self):
        """Human-readable dump, one instrument per line."""
        lines = ["metrics:"]
        for key, counter in sorted(self.counters.items()):
            lines.append("  %-32s %d" % (key, counter.value))
        for key, gauge in sorted(self.gauges.items()):
            lines.append("  %-32s %g (gauge)" % (key, gauge.value))
        for key, histogram in sorted(self.histograms.items()):
            if not histogram.count:
                continue
            lines.append(
                "  %-32s count=%d mean=%.3g min=%.3g max=%.3g" % (
                    key, histogram.count, histogram.mean,
                    histogram.minimum, histogram.maximum))
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)
