"""Public API: the :class:`Database` façade.

A :class:`Database` holds named relations and executes datalog-like
query programs through the full EmptyHeaded pipeline: parser → GHD
compiler → worst-case optimal execution engine.

>>> from repro import Database
>>> db = Database()
>>> _ = db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)])
>>> db.query("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
...          "w=<<COUNT(*)>>.").scalar
6.0
"""

import os
import time

import numpy as np

from .engine.config import EngineConfig
from .engine.executor import RuleExecutor, TrieCache
from .engine.incremental import (MaterializedView, mark_stale,
                                 refresh_stale_views)
from .engine.memo import BagMemo
from .engine.plan_cache import PlanCache, config_signature
from .engine.recursion import execute_recursive
from .engine.stats import ExecStats
from .errors import SchemaError, UnknownRelationError
from .obs.metrics import MetricsRegistry, TIME_BUCKETS
from .obs.trace import Tracer, maybe_span
from .query.parser import parse
from .storage.dictionary import Dictionary
from .storage.ordering import apply_order, order_nodes
from .storage.relation import Relation


class Result:
    """Outcome of a query: the last rule's output relation, decodable.

    Attributes
    ----------
    relation:
        The raw (dictionary-encoded) result
        :class:`~repro.storage.relation.Relation`.
    """

    def __init__(self, relation):
        self.relation = relation

    @property
    def count(self):
        """Number of result tuples."""
        return self.relation.cardinality

    @property
    def scalar(self):
        """The single annotation of a 0-ary (aggregate-to-scalar) result."""
        return self.relation.scalar_value

    @property
    def annotations(self):
        """Annotation array parallel to :meth:`tuples` (or ``None``)."""
        return self.relation.annotations

    def tuples(self):
        """Result tuples with dictionary decoding applied."""
        return list(self.relation.decoded_tuples())

    def to_dict(self):
        """``{decoded key tuple: annotation}`` for annotated results.

        Unary keys collapse to bare values for convenience.
        """
        if self.relation.annotations is None:
            raise SchemaError("result carries no annotations")
        out = {}
        for key, value in zip(self.relation.decoded_tuples(),
                              self.relation.annotations):
            out[key[0] if len(key) == 1 else key] = float(value)
        return out

    def __len__(self):
        return self.relation.cardinality

    def __iter__(self):
        return iter(self.relation.decoded_tuples())

    def top(self, k=10):
        """The ``k`` highest-annotated tuples as ``(key, value)`` pairs,
        keys decoded (convenience for ranking queries like PageRank)."""
        if self.relation.annotations is None:
            raise SchemaError("result carries no annotations")
        order = np.argsort(-self.relation.annotations)[:k]
        keys = list(self.relation.decoded_tuples())
        return [(keys[i][0] if len(keys[i]) == 1 else keys[i],
                 float(self.relation.annotations[i])) for i in order]

    def __repr__(self):
        return "Result(%r)" % (self.relation,)


class Database:
    """An in-memory EmptyHeaded database instance.

    Parameters
    ----------
    config:
        Optional :class:`~repro.engine.config.EngineConfig`; keyword
        overrides (``layout_level=...``, ``simd=...``) are applied on
        top, so ``Database(layout_level="uint_only")`` is the "-R"
        ablated engine.
    ordering:
        Default node-ordering scheme for :meth:`load_graph`
        (paper Appendix A.1.1); ``"degree"`` is the standard.
    """

    def __init__(self, config=None, ordering="degree", seed=0, **overrides):
        self.config = config if config is not None else EngineConfig()
        if overrides:
            self.config = self.config.ablated(**overrides)
        self.default_ordering = ordering
        self.seed = seed
        self.catalog = {}
        self._env = {}
        self._dictionary = Dictionary()  # shared by add_relation calls
        self._trie_cache = TrieCache()
        self._arena = None
        if self.config.shared_tries:
            from .storage.arena import (SharedTrieArena,
                                        shared_memory_available)
            if shared_memory_available():
                self._arena = SharedTrieArena()
                self._trie_cache.attach_arena(self._arena)
        self._plan_cache = PlanCache()
        #: Materialized views by head name
        #: (:class:`~repro.engine.incremental.MaterializedView`).
        self._views = {}
        self._refreshing = False
        self._executor = RuleExecutor(self.catalog, self.config,
                                      self._trie_cache, self._env,
                                      plan_cache=self._plan_cache)
        self._metrics = MetricsRegistry(enabled=False)
        self._tracer = None
        self._trace_path = None
        self._telemetry = None
        # telemetry hot-path memos: plan-cache hits reuse the same
        # LogicalRule object, and the config signature rarely changes,
        # so both digests are computed once per identity
        self._cache_key_memo = (None, None)
        self._signature_memo = {}
        trace_env = os.environ.get("REPRO_TRACE")
        if trace_env:
            # REPRO_TRACE=1 enables in-memory tracing; any other value
            # is the Chrome trace path rewritten after every query.
            path = None if trace_env.lower() in ("1", "true", "on") \
                else trace_env
            self.enable_tracing(path=path)
        telemetry_env = os.environ.get("REPRO_TELEMETRY")
        if telemetry_env:
            # REPRO_TELEMETRY=1 keeps the hub memory-only; any other
            # value is the telemetry directory (query log + dumps).
            directory = None if telemetry_env.lower() in ("1", "true",
                                                          "on") \
                else telemetry_env
            self.enable_telemetry(directory=directory)
        tuning_env = os.environ.get("REPRO_TUNING_PROFILE")
        if tuning_env and self.config.tuning is None:
            # A saved calibration profile; unreadable or stale files
            # load as None, leaving the engine on paper defaults.
            from .tune.profile import load_profile
            profile = load_profile(tuning_env)
            if profile is not None:
                self.config.tuning = profile
                self.config.adaptive = True

    # -- loading --------------------------------------------------------------

    def add_relation(self, name, tuples, annotations=None,
                     combine="last", arity=None):
        """Register a relation from raw tuples (any hashable values).

        All relations registered this way share one *database-wide*
        dictionary, so the same value encodes to the same id everywhere
        and cross-relation joins are correct (``load_graph`` keeps its
        own per-graph dictionary because node ordering permutes its
        ids).  Use :meth:`add_encoded` when the data is already dense
        ``uint32``.  Duplicate key tuples merge their annotations per
        ``combine`` (``"last"``, ``"sum"``, ``"min"``, or ``"max"`` —
        relations are sets, so pick the policy that matches the data's
        meaning, e.g. ``"max"`` for parallel edges keeping the best
        reliability).  ``arity`` pins the column count of an empty
        relation.
        """
        relation = Relation.from_tuples(name, tuples,
                                        annotations=annotations,
                                        dictionary=self._dictionary,
                                        arity=arity)
        dictionaries = relation.dictionaries
        relation = relation.deduplicated(combine)
        relation.dictionaries = dictionaries
        self._install(name, relation)
        return relation

    def add_encoded(self, name, data, annotations=None,
                    dictionaries=None, combine="last"):
        """Register an already-encoded relation (``uint32`` matrix).

        See :meth:`add_relation` for the duplicate ``combine`` policy.
        """
        relation = Relation(name, np.asarray(data, dtype=np.uint32),
                            annotations, dictionaries)
        relation = relation.deduplicated(combine)
        relation.dictionaries = dictionaries
        self._install(name, relation)
        return relation

    def add_scalar(self, name, value):
        """Register a 0-ary scalar relation usable in expressions."""
        relation = Relation.scalar(name, value)
        self._install(name, relation)
        return relation

    def load_graph(self, name, edges, undirected=True, ordering=None,
                   prune=False, seed=None):
        """Load a graph as a binary edge relation.

        Parameters
        ----------
        edges:
            Iterable of (src, dst) pairs of arbitrary hashable node ids.
        undirected:
            Store both directions of every edge (the paper's setting for
            PageRank/SSSP/Lollipop/Barbell).
        ordering:
            Node-ordering scheme (Appendix A.1.1); defaults to the
            database's ``ordering``.
        prune:
            Apply symmetric filtering — keep only ``src_id < dst_id``
            under the chosen ordering (the standard preprocessing for
            triangle/4-clique counting, §5.2.1).
        """
        scheme = ordering if ordering is not None else self.default_ordering
        seed = self.seed if seed is None else seed
        dictionary = Dictionary()
        pairs = []
        for src, dst in edges:
            pairs.append((dictionary.encode(src), dictionary.encode(dst)))
        data = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        n_nodes = len(dictionary)
        permutation = order_nodes(data, n_nodes, scheme=scheme, seed=seed)
        dictionary.remap(permutation)
        if self._arena is not None and not self._arena.closed:
            dictionary.share_into(self._arena)
        data = apply_order(data, permutation)
        if undirected:
            data = np.concatenate([data, data[:, ::-1]])
        if prune:
            data = data[data[:, 0] < data[:, 1]]
        relation = Relation(name, data.astype(np.uint32),
                            dictionaries=[dictionary, dictionary])
        relation = relation.deduplicated()
        relation.dictionaries = [dictionary, dictionary]
        self._install(name, relation)
        return relation

    def _install(self, name, relation):
        old = self.catalog.get(name)
        if old is not None:
            self._trie_cache.invalidate(old)
        self.catalog[name] = relation
        if relation.is_scalar() and relation.annotations is not None:
            self._env[name] = relation.scalar_value
        if self._views:
            mark_stale(self._views, name)

    # -- mutation -------------------------------------------------------------

    #: Retired arena-pinned trie bytes must exceed this fraction of the
    #: arena's placed bytes — and the absolute floor below — before a
    #: mutation triggers whole-arena compaction.
    _COMPACT_WASTE_RATIO = 0.5
    _COMPACT_MIN_WASTE = 1 << 20

    def append(self, name, tuples, annotations=None, combine="last"):
        """Append tuples to a stored relation *in place*.

        Values encode through the relation's own column dictionaries
        (new values extend them); columns without a dictionary take raw
        ``uint32`` ids.  Returns the number of rows that actually
        changed the relation — re-appending an existing row is a no-op
        (and leaves every cache warm) unless the relation is annotated
        and ``combine`` (``"last"``/``"sum"``/``"min"``/``"max"``,
        against the stored value) produces a different annotation.

        A real change bumps ``relation.version``: cached plans and
        tries for queries over this relation are surgically invalidated
        (everything else stays warm), the change batch is journalled
        for delta-patched trie rebuilds, and materialized views reading
        the relation are marked stale for refresh on their next use.
        """
        if name in self._views:
            raise SchemaError(
                "%s is a materialized view; mutate its base relations "
                "instead" % name)
        relation = self.relation(name)
        if relation.is_scalar():
            raise SchemaError("cannot append to scalar relation %s"
                              % name)
        rows = self._encode_rows(relation, tuples, skip_unknown=False)
        changed = relation.apply_append(rows, annotations, combine)
        if changed:
            self._note_mutation(name, relation, "append")
        return changed

    def delete(self, name, tuples):
        """Delete tuples from a stored relation *in place*.

        Tuples whose values never entered the relation's dictionaries
        (or are absent from the relation) are ignored.  Returns the
        number of rows removed; a real removal has the same cache /
        journal / view-staleness effects as :meth:`append`.
        """
        if name in self._views:
            raise SchemaError(
                "%s is a materialized view; mutate its base relations "
                "instead" % name)
        relation = self.relation(name)
        if relation.is_scalar():
            raise SchemaError("cannot delete from scalar relation %s"
                              % name)
        rows = self._encode_rows(relation, tuples, skip_unknown=True)
        changed = relation.apply_delete(rows)
        if changed:
            self._note_mutation(name, relation, "delete")
        return changed

    def materialize(self, name, query):
        """Run ``query`` and register its last head as a materialized view.

        The defining program's last rule must define ``name``.  The
        view's result stays installed in the catalog; mutations to the
        relations it reads mark it stale, and the next :meth:`query` or
        :meth:`relation` call refreshes it — by semi-naive delta
        evaluation when the rule shape and mutation history allow it
        (see :mod:`repro.engine.incremental`), by re-running the
        program otherwise.  Returns the view's initial
        :class:`Result`.
        """
        program = parse(query)
        rules = list(program.rules)
        if not rules:
            raise SchemaError("materialize needs at least one rule")
        if rules[-1].head_name != name:
            raise SchemaError(
                "the last rule of a materialized view must define %r "
                "(got %r)" % (name, rules[-1].head_name))
        view = MaterializedView(name, query, rules)
        result = self.query(query)
        view.capture(self.catalog)
        self._views[name] = view
        return result

    @property
    def views(self):
        """Registered materialized views by name (read-only mapping)."""
        return dict(self._views)

    def _encode_rows(self, relation, tuples, skip_unknown):
        """Encode raw tuples against a relation's column dictionaries.

        ``skip_unknown`` (the delete path) drops rows containing values
        the dictionaries never saw — such rows cannot be stored, so
        deleting them is a no-op.  The append path *extends* the
        dictionaries instead.
        """
        dictionaries = relation.dictionaries
        rows = []
        for index, record in enumerate(tuples):
            record = tuple(record)
            if len(record) != relation.arity:
                raise SchemaError(
                    "expected arity %d, got %d-tuple at row %d"
                    % (relation.arity, len(record), index))
            row = []
            known = True
            for column, value in enumerate(record):
                dictionary = None if dictionaries is None \
                    else dictionaries[column]
                if dictionary is None:
                    code = int(value)
                    if not 0 <= code < 2 ** 32:
                        if skip_unknown:
                            known = False
                            break
                        raise SchemaError(
                            "raw key %r out of uint32 range" % (value,))
                elif skip_unknown:
                    try:
                        code = dictionary.lookup(value)
                    except KeyError:
                        known = False
                        break
                else:
                    code = dictionary.encode(value)
                row.append(code)
            if known:
                rows.append(row)
        return np.asarray(rows, dtype=np.uint32).reshape(
            -1, relation.arity)

    def _note_mutation(self, name, relation, kind):
        """Post-mutation bookkeeping: views, metrics, arena hygiene."""
        if self._views:
            mark_stale(self._views, name)
        metrics = self.config.metrics
        if metrics is not None:
            metrics.inc("mutation.batches", labels={"kind": kind})
        self._maybe_compact_arena()

    def _maybe_compact_arena(self):
        """Compact the shared arena once retired-trie waste dominates.

        The arena is a bump allocator — retiring a version-stale trie
        cannot free its pages individually, so the trie cache charges
        them to ``arena_waste``.  When waste crosses the ratio (and the
        absolute floor), every live trie and integer dictionary decode
        column is re-placed into a fresh arena and the old one is
        released.  Only called from mutation paths, never while forked
        workers hold the old segments.
        """
        arena = self._arena
        cache = self._trie_cache
        if arena is None or arena.closed:
            return
        waste = cache.arena_waste
        if waste < self._COMPACT_MIN_WASTE \
                or waste < self._COMPACT_WASTE_RATIO * arena.nbytes:
            return
        from .storage.arena import SharedTrieArena
        replacement = SharedTrieArena()
        for trie in cache._tries.values():
            trie.share_into(replacement)
        shared = set()
        for relation in self.catalog.values():
            for dictionary in (relation.dictionaries or ()):
                if dictionary is None or id(dictionary) in shared:
                    continue
                shared.add(id(dictionary))
                if dictionary._id_array is not None:
                    dictionary.share_into(replacement)
        cache.attach_arena(replacement)  # resets arena_waste
        # The level-0 memo may hold intersections aliasing old pages.
        cache._level0.clear()
        self._arena = replacement
        arena.close()

    # -- querying -------------------------------------------------------------

    def query(self, text, _record_extra=None):
        """Execute a query program; returns the last rule's result.

        Intermediate heads (e.g. ``N`` and ``InvDeg`` in the paper's
        PageRank program) are installed into the database and remain
        available to later queries.

        With ``execution_mode="compiled"`` the program runs through the
        code-generating pipeline: parsed programs, compiled rules, and
        generated bag sources are all cached, so a repeated query skips
        parse → GHD → codegen entirely (verifiable through the counters
        on :attr:`last_stats`).

        When tracing (:meth:`enable_tracing` / ``REPRO_TRACE``),
        metrics (:meth:`enable_metrics`), or telemetry
        (:meth:`enable_telemetry` / ``REPRO_TELEMETRY``) are on, the
        run is recorded; all are off by default and cost nothing when
        off — the telemetry check is a single ``is None`` test here,
        never inside the execution loops.

        ``_record_extra`` merges additional (schema-registered) fields
        into the telemetry record — the seam the query service uses to
        stamp ``result_cache`` / ``queue_seconds`` onto executed
        queries.  Ignored when telemetry is off.
        """
        if self._views and not self._refreshing:
            refresh_stale_views(self)
        telemetry = self.config.telemetry
        if telemetry is None:
            return self._query_plain(text)
        return self._query_telemetry(telemetry, text,
                                     extra=_record_extra)

    def _query_plain(self, text):
        """One query through the engine plus the per-query observers
        (tracer/metrics); the pre-telemetry ``query`` body."""
        tracer = self.config.tracer
        metrics = self.config.metrics
        marks = self.config.counter.snapshot() \
            if metrics is not None else None
        start = time.perf_counter()
        with maybe_span(tracer, "query", "query",
                        mode=self.config.execution_mode):
            if self.config.execution_mode == "compiled":
                result = self._query_compiled(text)
            else:
                result = self._query_interpreted(text)
        if metrics is not None:
            self._record_query_metrics(metrics, marks,
                                       time.perf_counter() - start)
        if tracer is not None and tracer.enabled and self._trace_path:
            from .obs.export import write_chrome_trace
            write_chrome_trace(tracer, self._trace_path)
        return result

    def _query_telemetry(self, hub, text, extra=None):
        """Telemetry-wrapped execution: write-ahead journal, structured
        query record, lifetime aggregation, slow-query promotion.

        The in-flight record is journaled *before* execution (a process
        killed mid-query leaves it for :func:`repro.obs.flight.
        post_mortem`); on completion the record gains timings, cache
        tiers, and counters from the executor and is folded into the
        hub.  A query whose identity was flagged slow runs under a
        private tracer (the ``explain_analyze`` pattern) and its trace
        is archived next to the query log.
        """
        from .obs.telemetry import (QUERY_LOG_VERSION, key_digest,
                                    text_digest)
        sha = text_digest(text)
        signature = config_signature(self.config)
        signature_digest = self._signature_memo.get(signature)
        if signature_digest is None:
            signature_digest = self._signature_memo[signature] = \
                key_digest(signature)
        record = {
            "schema_version": QUERY_LOG_VERSION,
            "query_id": hub.next_query_id(),
            "ts": time.time(),
            "pid": os.getpid(),
            "status": "inflight",
            "text_sha": sha,
            "text": text if len(text) <= 2048 else text[:2048],
            "execution_mode": self.config.execution_mode,
            "config_signature": signature_digest,
        }
        if extra:
            record.update(extra)
        promoted = hub.should_trace(sha)
        own_tracer = None
        previous_tracer = self.config.tracer
        if promoted:
            record["promoted"] = True
            if previous_tracer is None:
                own_tracer = Tracer(capture_intersections=False)
                self.config.tracer = own_tracer
        hub.begin_query(record)
        start = time.perf_counter()
        try:
            result = self._query_plain(text)
        except Exception as error:
            record["elapsed_seconds"] = time.perf_counter() - start
            hub.fail_query(record, error)
            raise
        finally:
            if own_tracer is not None:
                self.config.tracer = previous_tracer
        record["elapsed_seconds"] = time.perf_counter() - start
        record["status"] = "ok"
        record["rows"] = int(result.count)
        logical = self._executor.last_logical
        if logical is not None:
            memo_logical, memo_digest = self._cache_key_memo
            if logical is not memo_logical:
                memo_digest = key_digest(logical.cache_key())
                self._cache_key_memo = (logical, memo_digest)
            record["cache_key"] = memo_digest
        stats = self._executor.last_stats
        if stats is not None:
            hits = stats.plan_cache_hits
            misses = stats.plan_cache_misses
            if hits and not misses:
                record["plan_cache"] = "hit"
            elif misses and not hits:
                record["plan_cache"] = "miss"
            elif hits and misses:
                record["plan_cache"] = "partial"
            else:
                record["plan_cache"] = "n/a"
            record["plan_cache_hits"] = hits
            record["plan_cache_misses"] = misses
            record["fused_blocks"] = stats.fused_blocks
            if stats.morsels:
                record["morsels"] = stats.n_morsels
                record["steals"] = stats.steals
                record["workers"] = stats.workers
        else:
            record["plan_cache"] = "n/a"
        if self.config.adaptive:
            record["replans"] = self._executor.replans
            record["mispredict_ratio"] = \
                float(self._executor.last_mispredict_ratio)
        tracer = own_tracer if own_tracer is not None else previous_tracer
        if tracer is not None and tracer.enabled and len(tracer):
            record["phases"] = tracer.phase_seconds()
        if own_tracer is not None:
            path = hub.archive_trace(own_tracer, record)
            if path is not None:
                record["trace_path"] = path
        hub.record_query(record)
        return result

    def _program_memo(self):
        """A fresh cross-rule bag memo, or ``None`` when disabled.

        Installed on the executor for one program's duration so a bag
        that reappears in a later rule (same relations, same pattern,
        same selections and aggregation) reuses the earlier rule's
        result instead of re-joining.
        """
        if self.config.eliminate_redundant_bags \
                and self.config.cross_rule_cse:
            return BagMemo()
        return None

    def _query_interpreted(self, text):
        tracer = self.config.tracer
        with maybe_span(tracer, "parse", "compile", chars=len(text)):
            program = parse(text)
        result_relation = None
        self._executor.program_memo = self._program_memo()
        try:
            for rule in program.rules:
                # Resolve decode dictionaries against the pre-execution
                # catalog: a recursive rule replaces its own head
                # relation mid-flight, which would otherwise lose them.
                head_dictionaries = self._head_dictionaries(rule)
                with maybe_span(tracer, "rule:%s" % rule.head_name,
                                "query"):
                    if rule.recursive:
                        result_relation = execute_recursive(rule,
                                                            self._executor)
                    else:
                        result_relation = self._executor.execute(rule)
                if head_dictionaries is not None and result_relation.arity:
                    result_relation.dictionaries = head_dictionaries
                self._install(rule.head_name, result_relation)
        finally:
            self._record_memo_metrics(self._executor.program_memo)
            self._executor.program_memo = None
        return Result(result_relation)

    def _query_compiled(self, text):
        """Program-tier driver of the compiled pipeline.

        One :class:`~repro.engine.stats.ExecStats` accumulates across
        every rule of the program, so multi-rule programs (PageRank's
        three rules) report their compilation work as a whole.
        Recursive rules delegate to the recursion driver, whose
        per-round executions recompile against each round's catalog —
        relation identity guards make that correct by construction.
        """
        stats = ExecStats(execution_mode="compiled",
                          strategy=self.config.parallel_strategy,
                          workers=self.config.parallel_workers)
        tracer = self.config.tracer
        key = (text, config_signature(self.config))
        rules = self._plan_cache.get_program(key)
        if rules is None:
            stats.parses += 1
            with maybe_span(tracer, "parse", "compile", chars=len(text)):
                rules = tuple(parse(text).rules)
            self._plan_cache.put_program(key, rules)
        result_relation = None
        self._executor.program_memo = self._program_memo()
        try:
            for rule in rules:
                head_dictionaries = self._head_dictionaries(rule)
                with maybe_span(tracer, "rule:%s" % rule.head_name,
                                "query"):
                    if rule.recursive:
                        result_relation = execute_recursive(rule,
                                                            self._executor)
                    else:
                        result_relation = \
                            self._executor.execute_compiled_mode(rule,
                                                                 stats)
                if head_dictionaries is not None and result_relation.arity:
                    result_relation.dictionaries = head_dictionaries
                self._install(rule.head_name, result_relation)
        finally:
            self._record_memo_metrics(self._executor.program_memo)
            self._executor.program_memo = None
        # Recursion rounds install their own per-round stats; the
        # program-level counters are what the caller sees.
        self._executor.last_stats = stats
        return Result(result_relation)

    def _record_memo_metrics(self, memo):
        metrics = self.config.metrics
        if memo is None or metrics is None:
            return
        metrics.inc("cse.bag_hits", memo.hits)
        metrics.inc("cse.bag_misses", memo.misses)

    def plan(self, text):
        """Compile the last rule of a program without executing it.

        Returns a :class:`~repro.engine.plan.PhysicalPlan`.  Earlier
        rules in the program are *not* run, so intermediate relations
        they would create must already exist for the last rule to
        compile.
        """
        program = parse(text)
        return self._executor.compile(program.rules[-1])

    def explain(self, text):
        """Compile-only plan description for a program's last rule:
        chosen GHD, widths, global attribute order, per-bag orders."""
        return self.plan(text).describe()

    def explain_logical(self, text):
        """Pass-by-pass logical plan of every rule in a program.

        Runs the frontend, rewrite, and plan phases of the
        :mod:`repro.lir` optimizer (no tuples are joined) and renders
        each pass's trace: what constant folding folded, what pruning
        projected away, the GHD choice with its cardinalities, pushed
        selections, and the global attribute order.  Like :meth:`plan`,
        rules are compiled against the current catalog, so intermediate
        heads from earlier rules must already exist.
        """
        from .lir import OptimizerOptions, optimize_rule, plan_rule
        options = OptimizerOptions.from_config(self.config)
        sections = []
        for rule in parse(text).rules:
            logical = optimize_rule(rule, self.catalog, options)
            try:
                plan_rule(logical, options)
            except Exception as error:  # pragma: no cover - diagnostics
                logical.trace.record("plan", False,
                                     ["failed: %s" % error])
            sections.append(logical.trace.describe())
        return "\n\n".join(sections)

    def relation(self, name):
        """Fetch a stored relation by name (refreshing stale views)."""
        if self._views and not self._refreshing \
                and any(view.stale for view in self._views.values()):
            refresh_stale_views(self)
        if name not in self.catalog:
            raise UnknownRelationError(name, self.catalog.keys())
        return self.catalog[name]

    # -- persistence --------------------------------------------------------

    def save(self, path):
        """Persist every stored relation to a ``.npz`` file.

        A calibrated tuning profile on the config rides along in the
        manifest, so :meth:`load` restarts warm (already tuned).
        """
        from .storage.persistence import save_catalog
        save_catalog(path, self.catalog, tuning=self.config.tuning)

    @classmethod
    def load(cls, path, **kwargs):
        """Reconstruct a database saved with :meth:`save`.

        Engine configuration is *not* persisted (pass the usual
        constructor keywords), with one exception: a tuning profile
        saved alongside the relations is restored onto the config —
        it only engages when ``adaptive=True``.  A stale or
        missing profile is silently ignored (paper defaults apply).
        """
        from .storage.persistence import load_catalog, load_tuning
        db = cls(**kwargs)
        for name, relation in load_catalog(path).items():
            db._install(name, relation)
        if db.config.tuning is None:
            db.config.tuning = load_tuning(path)
        return db

    # -- adaptive tuning ----------------------------------------------------

    def calibrate(self, seed=None, quick=True, save=None, timer=None,
                  use_dataset=True):
        """Calibrate the engine's dispatch constants on this machine.

        Runs the :mod:`repro.tune` microbenchmarks (galloping
        crossover, layout density threshold, parallel fork threshold,
        fused block budget, fused probe crossover), installs the
        resulting :class:`~repro.tune.profile.TuningProfile` on the
        config, and switches ``adaptive`` on so every dispatch site
        reads the calibrated constants.

        Parameters
        ----------
        seed:
            Seed for the synthetic microbenchmark inputs (defaults to
            the database seed).
        quick:
            Fewer repetitions per timed point (default; pass
            ``False`` for the full fit).
        save:
            Optional path to also write the profile as JSON
            (loadable via ``REPRO_TUNING_PROFILE`` or ``--tuning-profile``).
        timer:
            Injectable clock for deterministic tests.
        use_dataset:
            Also sample loaded relations' root sets and re-fit the
            galloping crossover on the dataset's real skew.
        """
        from .tune.calibrate import calibrate as run_calibration
        dataset_sets = None
        if use_dataset and self.catalog:
            dataset_sets = [
                np.unique(relation.data[:, 0]).astype(np.uint32)
                for relation in self.catalog.values()
                if relation.arity and relation.cardinality]
            dataset_sets = dataset_sets or None
        profile = run_calibration(
            seed=self.seed if seed is None else seed, timer=timer,
            quick=quick, dataset_sets=dataset_sets)
        self.config.tuning = profile
        self.config.adaptive = True
        if save is not None:
            profile.save(save)
        return profile

    @property
    def tuning(self):
        """The installed tuning profile, or ``None`` (paper defaults)."""
        return self.config.tuning

    def set_cardinality_hint(self, name, cardinality):
        """Override the planner's cardinality estimate for relation
        ``name`` (GHD costing and the adaptive mispredict baseline).
        With ``adaptive=True`` a hint that proves badly wrong at run
        time triggers re-planning from observed cardinalities."""
        self._executor.card_hints[name] = int(cardinality)

    def clear_cardinality_hints(self):
        """Drop all cardinality hints and accumulated re-planning
        feedback; the planner reverts to catalog cardinalities."""
        self._executor.card_hints.clear()
        self._executor.card_feedback.clear()

    @property
    def arena(self):
        """The shared-memory trie arena (``None`` unless the database
        was created with ``shared_tries=True``)."""
        return self._arena

    def close(self):
        """Release held OS resources — today, the shared-memory arena.

        Safe to call on any database (no-op without an arena) and
        idempotent.  The arena also self-releases at interpreter exit,
        so calling this is only needed for deterministic reclamation of
        ``/dev/shm`` space mid-process.  After closing, shared tries
        become invalid: the trie cache is cleared so later queries
        rebuild private tries.
        """
        if self._arena is None or self._arena.closed:
            return
        for relation in self.catalog.values():
            self._trie_cache.invalidate(relation)
            for dictionary in (relation.dictionaries or ()):
                if dictionary is not None:
                    dictionary._id_array = None
        self._trie_cache.attach_arena(None)
        self._arena.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    @property
    def counter(self):
        """The engine's simulated-SIMD op counter."""
        return self.config.counter

    @property
    def last_stats(self):
        """Execution statistics of the latest query that engaged the
        parallel executor (``config.parallel_workers > 1`` or
        :func:`~repro.engine.parallel.parallel_count`); ``None`` after a
        purely serial query.  See
        :class:`~repro.engine.stats.ExecStats` for the recorded
        per-morsel timings, steal counts, and cache hit rates.
        """
        return self._executor.last_stats

    # -- observability -------------------------------------------------------

    def enable_tracing(self, path=None, capture_intersections=False):
        """Turn on query-lifecycle span tracing.

        ``path``, when given, names a Chrome ``trace_event`` JSON file
        rewritten after every query (load it at ``chrome://tracing`` or
        https://ui.perfetto.dev).  ``capture_intersections=True`` also
        records one span per set intersection — detailed, but with
        measurable per-call cost, so it is off by default.  Returns the
        live :class:`~repro.obs.trace.Tracer`.
        """
        if self._tracer is None:
            self._tracer = Tracer(
                capture_intersections=capture_intersections)
        else:
            self._tracer.enabled = True
            self._tracer.capture_intersections = capture_intersections
        self.config.tracer = self._tracer
        self._trace_path = path
        return self._tracer

    def disable_tracing(self):
        """Stop tracing.  The tracer object and its recorded spans are
        kept, so :meth:`write_trace` still works afterwards."""
        self.config.tracer = None
        self._trace_path = None

    @property
    def tracer(self):
        """The span tracer, or ``None`` if tracing was never enabled."""
        return self._tracer

    def write_trace(self, path):
        """Export the recorded spans as Chrome trace-event JSON."""
        if self._tracer is None:
            raise ValueError(
                "tracing was never enabled; call enable_tracing() first")
        from .obs.export import write_chrome_trace
        write_chrome_trace(self._tracer, path)

    def enable_metrics(self):
        """Turn on the metrics registry (counters, gauges, histograms
        accumulated across queries).  Returns the live
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        self._metrics.enabled = True
        self.config.metrics = self._metrics
        return self._metrics

    def disable_metrics(self):
        """Stop recording metrics; accumulated values are kept."""
        self.config.metrics = None

    @property
    def metrics(self):
        """The metrics registry (disabled until
        :meth:`enable_metrics` or :meth:`enable_telemetry`)."""
        return self._metrics

    def enable_telemetry(self, directory=None, slow_query_seconds=None,
                         **hub_options):
        """Turn on continuous telemetry for this database.

        Installs a :class:`~repro.obs.telemetry.TelemetryHub`: every
        query appends one structured record to ``<directory>/
        queries.jsonl`` (rotating), feeds the flight recorder's rings
        and write-ahead in-flight journal, and aggregates into labeled
        process-lifetime series in the database's metrics registry
        (shared with :meth:`enable_metrics`, so one OpenMetrics
        exposition carries both).  ``directory=None`` keeps everything
        in memory — rings and series work, nothing hits disk.

        ``slow_query_seconds`` (default: the config's
        ``slow_query_seconds``) arms slow-query promotion: a query
        exceeding the budget re-runs fully traced on its next execution
        and the trace is archived under ``directory``.

        A post-mortem dump and a final OpenMetrics file are written at
        interpreter exit (and immediately when a query raises).
        Returns the live hub.
        """
        if self._telemetry is None or self._telemetry.closed:
            from .obs.telemetry import TelemetryHub
            if slow_query_seconds is None:
                slow_query_seconds = self.config.slow_query_seconds
            self._metrics.enabled = True
            self._telemetry = TelemetryHub(
                directory=directory, registry=self._metrics,
                slow_query_seconds=slow_query_seconds, **hub_options)
            import atexit
            atexit.register(self._telemetry.close)
        self.config.telemetry = self._telemetry
        return self._telemetry

    def disable_telemetry(self):
        """Stop recording telemetry and flush (post-mortem dump +
        OpenMetrics file for directory-backed hubs).  The hub and its
        accumulated state remain readable via :attr:`telemetry`."""
        hub = self._telemetry
        self.config.telemetry = None
        if hub is not None:
            hub.close(dump_reason="disable")

    @property
    def telemetry(self):
        """The telemetry hub, or ``None`` if never enabled."""
        return self._telemetry

    def write_metrics(self, path):
        """Export the metrics registry as OpenMetrics text (the format
        Prometheus scrapes; see :mod:`repro.obs.openmetrics`)."""
        from .obs.openmetrics import write_openmetrics
        return write_openmetrics(self._metrics, path)

    def serve_metrics(self, host="127.0.0.1", port=0):
        """Serve ``GET /metrics`` (OpenMetrics) for this database on a
        daemon thread; returns the HTTP server (``server_address``
        carries the bound port, ``shutdown()`` stops it)."""
        from .obs.openmetrics import serve_metrics
        return serve_metrics(self._metrics, host=host, port=port)

    def _record_query_metrics(self, metrics, marks, elapsed):
        metrics.inc("queries")
        metrics.observe("query.seconds", elapsed, TIME_BUCKETS)
        metrics.record_exec_stats(self._executor.last_stats)
        metrics.record_counter_delta(marks,
                                     self.config.counter.snapshot())
        for tier, size in self._plan_cache.sizes().items():
            metrics.set_gauge("plan_cache.%s" % tier, size)
        metrics.set_gauge("trie_cache.entries", len(self._trie_cache))
        metrics.set_gauge("trie_cache.patches", self._trie_cache.patches)
        metrics.set_gauge("trie_cache.arena_waste_bytes",
                          self._trie_cache.arena_waste)

    def explain_analyze(self, text):
        """Run the query under a private tracer and render the GHD plan
        annotated with actuals: per-bag wall time and lane-ops,
        predicted vs actual cost-model error, chosen set layouts,
        cache outcomes, and phase timings.  Returns the report string.
        """
        from .obs.explain import render_explain_analyze
        own = Tracer(capture_intersections=False)
        previous = self.config.tracer
        self.config.tracer = own
        try:
            result = self.query(text)
        finally:
            self.config.tracer = previous
        tuning_state = None
        if self.config.adaptive:
            profile = self.config.tuning
            tuning_state = {
                "profile": ("on (tuning profile: source=%s, version=%d)"
                            % (profile.source, profile.version)
                            if profile is not None else None),
                "replans": self._executor.replans,
                "mispredict_ratio": self._executor.last_mispredict_ratio,
            }
        return render_explain_analyze(
            self._executor.last_plan, self._executor.last_stats, own,
            self.config, result=result.relation,
            logical=self._executor.last_logical, tuning=tuning_state)

    def _head_dictionaries(self, rule):
        """Column dictionaries for the head, looked up from the body
        relations' columns, so results decode back to the user's original
        values.  Returns ``None`` when any column has no dictionary."""
        if not rule.head_vars:
            return None
        dictionaries = []
        for var in rule.head_vars:
            found = None
            for atom in rule.body:
                source = self.catalog.get(atom.name)
                if source is None or source.dictionaries is None:
                    continue
                for position, term in enumerate(atom.terms):
                    if getattr(term, "name", None) == var:
                        found = source.dictionaries[position]
                        break
                if found is not None:
                    break
            dictionaries.append(found)
        if all(d is not None for d in dictionaries):
            return dictionaries
        return None
