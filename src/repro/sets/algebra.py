"""Set union and difference over the physical layouts.

Intersection is the engine's core operation (§4), but a usable set
library also needs union and difference — the recursion driver's
delta maintenance and downstream users both want them.  Kernels follow
the same pattern as :mod:`repro.sets.intersect`: vectorized numpy for
uint pairs, word-wise OR / AND-NOT for aligned bitset pairs, decode for
everything else, with cost-model charges in the same currency.
"""

import numpy as np

from .base import SetLayout
from .bitset import BitSet
from .cost import SIMD_REGISTER_BITS, SIMD_UINT32_LANES, get_counter
from .uint import UintSet


def _as_array(layout):
    return layout.values if isinstance(layout, UintSet) \
        else layout.to_array()


def union(x, y, counter=None):
    """Set union; returns a :class:`BitSet` for bitset pairs (the result
    is at least as dense as the denser input) and a :class:`UintSet`
    otherwise."""
    if not isinstance(x, SetLayout) or not isinstance(y, SetLayout):
        raise TypeError("union expects SetLayout operands")
    counter = get_counter(counter)
    if x.kind == "bitset" and y.kind == "bitset":
        return _union_bitsets(x, y, counter)
    a, b = _as_array(x), _as_array(y)
    out = np.union1d(a, b)
    counter.charge("union",
                   simd=-(-(int(a.size) + int(b.size))
                          // SIMD_UINT32_LANES),
                   elements=int(a.size + b.size))
    return UintSet.from_sorted(out.astype(np.uint32))


def _union_bitsets(x, y, counter):
    offsets = np.union1d(x.offsets, y.offsets).astype(np.uint32)
    words = np.zeros((offsets.size, x.words.shape[1] if x.words.size
                      else 4), dtype=np.uint64)
    position_x = np.searchsorted(offsets, x.offsets)
    position_y = np.searchsorted(offsets, y.offsets)
    if x.offsets.size:
        words[position_x] |= x.words
    if y.offsets.size:
        words[position_y] |= y.words
    counter.charge("bitset_or",
                   simd=3 * int(offsets.size),
                   elements=int(offsets.size) * SIMD_REGISTER_BITS)
    return BitSet.from_blocks(offsets, words)


def difference(x, y, counter=None):
    """Elements of ``x`` not in ``y``; result layout follows ``x``'s
    sparsity (uint unless both operands are bitsets)."""
    if not isinstance(x, SetLayout) or not isinstance(y, SetLayout):
        raise TypeError("difference expects SetLayout operands")
    counter = get_counter(counter)
    if x.kind == "bitset" and y.kind == "bitset":
        return _difference_bitsets(x, y, counter)
    a, b = _as_array(x), _as_array(y)
    out = np.setdiff1d(a, b, assume_unique=True)
    counter.charge("difference",
                   simd=-(-(int(a.size) + int(b.size))
                          // SIMD_UINT32_LANES),
                   elements=int(a.size + b.size))
    return UintSet.from_sorted(out.astype(np.uint32))


def _difference_bitsets(x, y, counter):
    if x.offsets.size == 0:
        return BitSet([])
    words = x.words.copy()
    common, ix, iy = np.intersect1d(x.offsets, y.offsets,
                                    assume_unique=True,
                                    return_indices=True)
    if common.size:
        words[ix] &= ~y.words[iy]
    counter.charge("bitset_andnot",
                   simd=3 * int(max(common.size, 1)),
                   elements=int(common.size) * SIMD_REGISTER_BITS)
    return BitSet.from_blocks(x.offsets.copy(), words)


def union_many(sets, counter=None):
    """Fold :func:`union` over an iterable of layouts."""
    sets = list(sets)
    if not sets:
        raise ValueError("union_many requires at least one set")
    acc = sets[0]
    for other in sets[1:]:
        acc = union(acc, other, counter)
    return acc
