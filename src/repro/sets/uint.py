"""The ``uint`` layout: a sorted array of 32-bit unsigned integers.

This is the paper's sparse workhorse layout (Section 4.1).  It is the
cheapest layout to build and decode and the best choice for sparse sets,
at the cost of offering only four SIMD lanes per 128-bit comparison
(footnote 7 in the paper).
"""

import numpy as np

from .base import SetLayout, as_sorted_uint32


class UintSet(SetLayout):
    """Sorted ``uint32`` array layout.

    Parameters
    ----------
    values:
        Any iterable of integers; deduplicated and sorted on construction.

    Examples
    --------
    >>> s = UintSet([5, 1, 3, 3])
    >>> list(s)
    [1, 3, 5]
    >>> s.cardinality
    3
    """

    kind = "uint"

    __slots__ = ("_values",)

    def __init__(self, values):
        if isinstance(values, np.ndarray) and values.dtype == np.uint32 \
                and values.ndim == 1:
            # Fast path for internal callers that guarantee sortedness.
            if values.size > 1 and not np.all(values[1:] > values[:-1]):
                values = as_sorted_uint32(values)
        else:
            values = as_sorted_uint32(values)
        self._values = values

    @classmethod
    def from_sorted(cls, arr):
        """Wrap an already-sorted, duplicate-free ``uint32`` array without
        validation.  Internal fast path for intersection results."""
        out = cls.__new__(cls)
        out._values = arr
        return out

    @property
    def values(self):
        """The backing sorted ``uint32`` array (do not mutate)."""
        return self._values

    @property
    def cardinality(self):
        return int(self._values.size)

    def to_array(self):
        return self._values

    @property
    def min_value(self):
        return int(self._values[0]) if self._values.size else None

    @property
    def max_value(self):
        return int(self._values[-1]) if self._values.size else None

    def contains(self, value):
        idx = np.searchsorted(self._values, np.uint32(value))
        return bool(idx < self._values.size
                    and self._values[idx] == np.uint32(value))

    def rank(self, value):
        idx = int(np.searchsorted(self._values, np.uint32(value)))
        if idx >= self._values.size or self._values[idx] != np.uint32(value):
            raise KeyError(value)
        return idx

    @property
    def nbytes(self):
        return int(self._values.nbytes)
