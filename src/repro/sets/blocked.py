"""Block-level composite layout (paper Section 4.3, "Block Level").

The domain is cut into fixed-size blocks; each block independently picks
the uint layout (sparse block) or the bitset layout (dense block).  This
is the finest granularity at which the paper's layout optimizer can act:
it handles *internal* density skew — e.g. a set with a long sparse region
followed by a dense run — that set-level decisions cannot express.
"""

import numpy as np

from .base import SetLayout, as_sorted_uint32
from .bitset import BLOCK_BITS, BitSet
from .uint import UintSet

#: Values per composite block.  Matches the bitset block size so a dense
#: composite block is exactly one bitset block.
BLOCK_SPAN = BLOCK_BITS

#: A block is stored dense when it holds at least this fraction of its
#: span; below that, 32-bit values are cheaper than the bitvector.
DENSE_THRESHOLD = 1.0 / 8.0


class BlockedSet(SetLayout):
    """Composite layout: per-256-value block, uint or bitset as density
    dictates.

    Parameters
    ----------
    values:
        Iterable of integers to encode.
    dense_threshold:
        Minimum in-block density at which a block is stored as a bitset.
    """

    kind = "block"

    __slots__ = ("_block_ids", "_blocks", "_cardinality", "_min", "_max",
                 "dense_threshold")

    def __init__(self, values, dense_threshold=DENSE_THRESHOLD):
        arr = as_sorted_uint32(values)
        self.dense_threshold = dense_threshold
        self._cardinality = int(arr.size)
        self._min = int(arr[0]) if arr.size else None
        self._max = int(arr[-1]) if arr.size else None
        if arr.size == 0:
            self._block_ids = np.empty(0, dtype=np.uint32)
            self._blocks = []
            return
        ids = (arr // BLOCK_SPAN).astype(np.uint32)
        block_ids, starts = np.unique(ids, return_index=True)
        bounds = np.append(starts, arr.size)
        blocks = []
        for i in range(block_ids.size):
            chunk = arr[bounds[i]:bounds[i + 1]]
            if chunk.size >= dense_threshold * BLOCK_SPAN:
                blocks.append(BitSet(chunk))
            else:
                blocks.append(UintSet(chunk))
        self._block_ids = block_ids
        self._blocks = blocks

    @property
    def block_ids(self):
        """Sorted ``uint32`` array of non-empty block indices."""
        return self._block_ids

    @property
    def blocks(self):
        """Per-block layout objects, parallel to :attr:`block_ids`."""
        return self._blocks

    @property
    def cardinality(self):
        return self._cardinality

    def to_array(self):
        if self._cardinality == 0:
            return np.empty(0, dtype=np.uint32)
        return np.concatenate([b.to_array() for b in self._blocks])

    @property
    def min_value(self):
        return self._min

    @property
    def max_value(self):
        return self._max

    def contains(self, value):
        block = int(value) // BLOCK_SPAN
        idx = int(np.searchsorted(self._block_ids, np.uint32(block)))
        if idx >= self._block_ids.size or self._block_ids[idx] != block:
            return False
        return self._blocks[idx].contains(value)

    @property
    def nbytes(self):
        header = 4 * self._block_ids.size
        return int(header + sum(b.nbytes for b in self._blocks))

    def block_kinds(self):
        """Return the kind string of each block, for introspection/tests."""
        return [b.kind for b in self._blocks]
