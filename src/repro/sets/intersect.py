"""Set intersection kernels and the adaptive algorithm dispatcher.

This module implements the paper's Section 4.2 and Appendix C.2: five
uint∩uint algorithms (SIMDShuffling, V1, Galloping, SIMDGalloping, BMiss),
the bitset∩bitset and uint∩bitset kernels, the pshort kernels, and the
hybrid dispatcher (paper Algorithm 2) that switches to galloping when the
cardinality ratio exceeds 32:1 so the *min property* — running time
bounded by the smaller input — is preserved.

Each kernel does two things:

* computes the exact intersection with vectorized numpy operations (the
  SIMD analog of this reproduction), and
* charges a simulated SIMD/scalar instruction count to an
  :class:`repro.sets.cost.OpCounter` using the lane widths of the paper's
  hardware, which is what the micro-benchmarks report.

Setting ``simd=False`` on the entry points replaces the numpy kernels with
pure-Python scalar merge loops — the paper's "-S" ablation (Appendix
A.1.2, Table 11).
"""

import math

import numpy as np

from .base import SetLayout
from .bitset import BLOCK_BITS, BitSet, WORDS_PER_BLOCK
from .bitpacked import BitPackedSet
from . import cost as _cost
from .cost import (GALLOPING_CROSSOVER, SIMD_REGISTER_BITS,
                   SIMD_UINT16_LANES, SIMD_UINT32_LANES, get_counter)
from .uint import UintSet
from .variant import VariantSet


def _live_crossover():
    """The current galloping crossover, read from :mod:`repro.sets.cost`
    at *call* time so overrides (tests monkeypatching
    ``cost.GALLOPING_CROSSOVER``, tuned profiles installing a calibrated
    value) take effect without re-importing this module.  An import-time
    ``GALLOPING_THRESHOLD = GALLOPING_CROSSOVER`` snapshot silently froze
    the dispatch at 32 even when the model side moved."""
    return _cost.GALLOPING_CROSSOVER


def _config_crossover(config):
    """Effective crossover for a config object, or ``None`` for the
    module default.  Duck-typed: engine configs expose a
    ``galloping_crossover()`` accessor returning the tuned value when
    adaptive tuning is active."""
    accessor = getattr(config, "galloping_crossover", None)
    return accessor() if callable(accessor) else None


#: The paper's default 32:1 ratio, kept as a public alias for reporting
#: and tests.  Dispatch does **not** read this name — it calls
#: :func:`_live_crossover` (or takes an explicit ``crossover=``), so
#: overriding ``cost.GALLOPING_CROSSOVER`` or installing a tuned profile
#: changes kernel choice immediately.
GALLOPING_THRESHOLD = GALLOPING_CROSSOVER

#: Algorithm names accepted by the ``algorithm`` parameter.
UINT_ALGORITHMS = ("shuffling", "v1", "galloping", "simd_galloping", "bmiss")

#: Shared empty result.  :class:`UintSet` is immutable, so every empty
#: intersection can return this one object instead of allocating — the
#: zero-cardinality short-circuit in :func:`intersect_many` hits it
#: before paying for the cardinality sort.
_EMPTY_UINT = UintSet(np.empty(0, dtype=np.uint32))


def _log2_ceil(n):
    return max(1, math.ceil(math.log2(n))) if n > 1 else 1


# ---------------------------------------------------------------------------
# uint ∩ uint kernels.  All take sorted unique uint32 arrays and return the
# sorted intersection.
# ---------------------------------------------------------------------------

def _searchsorted_matches(small, large):
    """Positions of ``small``'s elements found in ``large`` via binary
    search; shared machinery for the galloping-family kernels."""
    idx = np.searchsorted(large, small)
    idx_clamped = np.minimum(idx, large.size - 1)
    mask = large[idx_clamped] == small
    return small[mask]


def uint_shuffling(a, b, counter=None):
    """SIMDShuffling: block-wise merge with SIMD shuffles [Katsov 2012].

    Runs in time proportional to ``|a| + |b|`` and therefore does *not*
    satisfy the min property, but has the best constants when the two
    sets have similar cardinalities.
    """
    counter = get_counter(counter)
    out = np.intersect1d(a, b, assume_unique=True)
    counter.charge(
        "shuffling",
        simd=-(-a.size // SIMD_UINT32_LANES) + -(-b.size // SIMD_UINT32_LANES),
        scalar=int(out.size),
        elements=int(a.size + b.size),
        nbytes=int(a.nbytes + b.nbytes))
    return out


def uint_v1(a, b, counter=None):
    """Lemire V1: iterate the smaller set, scanning the larger set in
    SIMD-register-sized blocks from a monotone cursor [Lemire et al.].

    Time is ``O(|small| + |large| / lanes)``: the cursor walks the larger
    set once, so the min property does not hold either.
    """
    counter = get_counter(counter)
    small, large = (a, b) if a.size <= b.size else (b, a)
    out = _searchsorted_matches(small, large)
    counter.charge(
        "v1",
        simd=-(-large.size // SIMD_UINT32_LANES),
        scalar=int(small.size),
        elements=int(a.size + b.size),
        nbytes=int(a.nbytes + b.nbytes))
    return out


def uint_galloping(a, b, counter=None):
    """Galloping: per element of the smaller set, a binary search over
    SIMD blocks of the larger set [Lemire et al.].

    Satisfies the min property: cost is ``O(|small| log |large|)``.
    """
    counter = get_counter(counter)
    small, large = (a, b) if a.size <= b.size else (b, a)
    out = _searchsorted_matches(small, large)
    counter.charge(
        "galloping",
        simd=int(small.size),
        scalar=int(small.size) * _log2_ceil(max(large.size, 2)),
        elements=int(a.size + b.size),
        nbytes=int(a.nbytes + b.nbytes))
    return out


def uint_simd_galloping(a, b, counter=None):
    """SIMDGalloping: scalar binary search down to one SIMD block of the
    larger set, then one vector comparison [Lemire et al.].

    Satisfies the min property with better constants than plain galloping
    because the last ``log2(lanes)`` search levels collapse into a single
    SIMD compare.
    """
    counter = get_counter(counter)
    small, large = (a, b) if a.size <= b.size else (b, a)
    out = _searchsorted_matches(small, large)
    blocks = max(1, -(-large.size // SIMD_UINT32_LANES))
    counter.charge(
        "simd_galloping",
        simd=2 * int(small.size),
        scalar=int(small.size) * _log2_ceil(max(blocks, 2)),
        elements=int(a.size + b.size),
        nbytes=int(a.nbytes + b.nbytes))
    return out


def uint_bmiss(a, b, counter=None):
    """BMiss: SIMD comparison of 16-bit prefixes filters candidates, then
    scalar confirmation of partial matches [Inoue et al.].

    Efficient when the output cardinality is low (most prefix groups miss);
    pays extra scalar confirmations when prefixes collide heavily.
    """
    counter = get_counter(counter)
    if a.size == 0 or b.size == 0:
        counter.charge("bmiss")
        return np.empty(0, dtype=np.uint32)
    high_a = (a >> np.uint32(16)).astype(np.uint32)
    high_b = (b >> np.uint32(16)).astype(np.uint32)
    prefixes_a, starts_a = np.unique(high_a, return_index=True)
    prefixes_b, starts_b = np.unique(high_b, return_index=True)
    bounds_a = np.append(starts_a, a.size)
    bounds_b = np.append(starts_b, b.size)
    common, ia, ib = np.intersect1d(
        prefixes_a, prefixes_b, assume_unique=True, return_indices=True)
    pieces = []
    confirmations = 0
    for pa, pb in zip(ia, ib):
        group_a = a[bounds_a[pa]:bounds_a[pa + 1]]
        group_b = b[bounds_b[pb]:bounds_b[pb + 1]]
        hit = np.intersect1d(group_a, group_b, assume_unique=True)
        confirmations += min(group_a.size, group_b.size)
        if hit.size:
            pieces.append(hit)
    out = (np.concatenate(pieces) if pieces
           else np.empty(0, dtype=np.uint32))
    counter.charge(
        "bmiss",
        simd=-(-a.size // SIMD_UINT32_LANES) + -(-b.size // SIMD_UINT32_LANES),
        scalar=int(confirmations),
        elements=int(a.size + b.size),
        nbytes=int(a.nbytes + b.nbytes))
    return out


def uint_scalar_merge(a, b, counter=None):
    """Pure-Python two-pointer merge: the "-S" (no SIMD) ablation kernel."""
    counter = get_counter(counter)
    out = []
    i = j = 0
    la, lb = a.tolist(), b.tolist()
    na, nb = len(la), len(lb)
    while i < na and j < nb:
        x, y = la[i], lb[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    counter.charge(
        "scalar_merge",
        scalar=int(a.size + b.size),
        elements=int(a.size + b.size),
        nbytes=int(a.nbytes + b.nbytes))
    return np.asarray(out, dtype=np.uint32)


def uint_scalar_galloping(a, b, counter=None):
    """Pure-Python galloping (per-element binary search): the scalar
    kernel that preserves the min property — what Leapfrog-Triejoin-style
    engines (LogicBlox) use, and what the "-S" ablation falls back to on
    cardinality-skewed inputs."""
    import bisect

    counter = get_counter(counter)
    small, large = (a, b) if a.size <= b.size else (b, a)
    large_list = large.tolist()
    out = []
    for value in small.tolist():
        position = bisect.bisect_left(large_list, value)
        if position < len(large_list) and large_list[position] == value:
            out.append(value)
    counter.charge(
        "scalar_galloping",
        scalar=int(small.size) * _log2_ceil(max(large.size, 2)),
        elements=int(a.size + b.size),
        nbytes=int(a.nbytes + b.nbytes))
    return np.asarray(out, dtype=np.uint32)


_UINT_KERNELS = {
    "shuffling": uint_shuffling,
    "v1": uint_v1,
    "galloping": uint_galloping,
    "simd_galloping": uint_simd_galloping,
    "bmiss": uint_bmiss,
    "scalar": uint_scalar_merge,
}


def choose_uint_algorithm(size_a, size_b, adaptive=True, crossover=None):
    """The paper's Algorithm 2: SIMDGalloping past the crossover ratio
    (32:1 by default, calibrated when a tuning profile is active), else
    SIMDShuffling.  With ``adaptive=False`` (the "-A" half of the "-RA"
    ablation) always returns shuffling."""
    if not adaptive:
        return "shuffling"
    if crossover is None:
        crossover = _live_crossover()
    small = max(1, min(size_a, size_b))
    large = max(size_a, size_b)
    if large / small > crossover:
        return "simd_galloping"
    return "shuffling"


def intersect_uint_arrays(a, b, counter=None, algorithm=None, adaptive=True,
                          simd=True, crossover=None):
    """Intersect two sorted ``uint32`` arrays, dispatching per the config.

    Parameters
    ----------
    algorithm:
        Force a specific kernel by name; ``None`` lets the hybrid
        dispatcher choose.
    adaptive:
        When ``algorithm`` is ``None``, whether cardinality-skew
        adaptivity (Algorithm 2) is enabled.
    simd:
        ``False`` routes to the scalar merge loop regardless of
        ``algorithm`` (the "-S" ablation).
    crossover:
        Optional tuned galloping crossover ratio; ``None`` reads the
        live ``cost.GALLOPING_CROSSOVER``.
    """
    if a.size == 0 or b.size == 0:
        return np.empty(0, dtype=np.uint32)
    if not simd:
        # Scalar engines still honor the min property through galloping
        # (Leapfrog Triejoin does) when adaptivity is on.
        if adaptive and choose_uint_algorithm(
                a.size, b.size, adaptive,
                crossover=crossover) == "simd_galloping":
            return uint_scalar_galloping(a, b, counter)
        return uint_scalar_merge(a, b, counter)
    if algorithm is None:
        algorithm = choose_uint_algorithm(a.size, b.size, adaptive,
                                          crossover=crossover)
    return _UINT_KERNELS[algorithm](a, b, counter)


# ---------------------------------------------------------------------------
# bitset kernels
# ---------------------------------------------------------------------------

def intersect_bitsets(x, y, counter=None, simd=True):
    """bitset ∩ bitset: intersect offsets with a uint kernel, then AND the
    matching 256-bit blocks (one simulated AVX op per common block)."""
    counter = get_counter(counter)
    if x.cardinality == 0 or y.cardinality == 0:
        return BitSet([])
    common, ix, iy = np.intersect1d(
        x.offsets, y.offsets, assume_unique=True, return_indices=True)
    counter.charge(
        "bitset_offsets",
        simd=-(-x.offsets.size // SIMD_UINT32_LANES)
             + -(-y.offsets.size // SIMD_UINT32_LANES),
        elements=int(x.offsets.size + y.offsets.size),
        nbytes=int(x.offsets.nbytes + y.offsets.nbytes))
    if common.size == 0:
        return BitSet([])
    if simd:
        words = x.words[ix] & y.words[iy]
    else:
        # Scalar ablation: AND word by word through Python ints.
        words = np.zeros((common.size, WORDS_PER_BLOCK), dtype=np.uint64)
        for row in range(common.size):
            for w in range(WORDS_PER_BLOCK):
                words[row, w] = np.uint64(
                    int(x.words[ix[row], w]) & int(y.words[iy[row], w]))
    # Per common block: two 256-bit register loads plus one AND.  The
    # load charges are what make sparse bitsets lose to uint arrays
    # (each block carries few values but still costs full-register
    # traffic) — the left side of the paper's Figure 5.
    counter.charge(
        "bitset_and",
        simd=3 * int(common.size) * (BLOCK_BITS // SIMD_REGISTER_BITS),
        elements=int(common.size) * BLOCK_BITS,
        nbytes=int(common.size) * BLOCK_BITS // 4)
    return BitSet.from_blocks(common, words)


def intersect_uint_bitset(uint_set, bit_set, counter=None, simd=True):
    """uint ∩ bitset: match uint values against block offsets, then probe
    the matching blocks bit by bit (paper Section 4.2).

    The result is returned as a uint array — "the intersection of two sets
    can be at most as dense as the sparser set".  Satisfies the min
    property with a constant determined by the block size.
    """
    counter = get_counter(counter)
    a = uint_set.values if isinstance(uint_set, UintSet) \
        else uint_set.to_array()
    if a.size == 0 or bit_set.cardinality == 0:
        return np.empty(0, dtype=np.uint32)
    blocks_of_a = (a >> np.uint32(8)).astype(np.uint32)
    idx = np.searchsorted(bit_set.offsets, blocks_of_a)
    idx_clamped = np.minimum(idx, bit_set.offsets.size - 1)
    in_present_block = bit_set.offsets[idx_clamped] == blocks_of_a
    candidates = a[in_present_block]
    if candidates.size == 0:
        counter.charge("uint_bitset",
                       simd=-(-a.size // SIMD_UINT32_LANES),
                       elements=int(a.size), nbytes=int(a.nbytes))
        return np.empty(0, dtype=np.uint32)
    rows = idx_clamped[in_present_block]
    in_block = candidates & np.uint32(BLOCK_BITS - 1)
    word_idx = (in_block >> np.uint32(6)).astype(np.intp)
    bit_idx = (in_block & np.uint32(63)).astype(np.uint64)
    words = bit_set.words[rows, word_idx]
    hit = ((words >> bit_idx) & np.uint64(1)).astype(bool)
    counter.charge(
        "uint_bitset",
        simd=-(-a.size // SIMD_UINT32_LANES),
        scalar=int(candidates.size),
        elements=int(a.size),
        nbytes=int(a.nbytes + candidates.size))
    return candidates[hit]


# ---------------------------------------------------------------------------
# pshort kernels
# ---------------------------------------------------------------------------

def intersect_pshorts(x, y, counter=None):
    """pshort ∩ pshort via common 16-bit prefixes and 8-lane 16-bit
    comparisons (the STTNI instruction of Appendix C.2.2)."""
    counter = get_counter(counter)
    if x.cardinality == 0 or y.cardinality == 0:
        return np.empty(0, dtype=np.uint32)
    common, ix, iy = np.intersect1d(
        x.prefixes, y.prefixes, assume_unique=True, return_indices=True)
    pieces = []
    lanes_work = 0
    for prefix, pa, pb in zip(common, ix, iy):
        ga, gb = x.groups[pa], y.groups[pb]
        lanes_work += ga.size + gb.size
        hit = np.intersect1d(ga, gb, assume_unique=True)
        if hit.size:
            pieces.append((np.uint32(prefix) << np.uint32(16))
                          | hit.astype(np.uint32))
    counter.charge(
        "pshort",
        simd=-(-lanes_work // SIMD_UINT16_LANES)
             + -(-(x.prefixes.size + y.prefixes.size) // SIMD_UINT16_LANES),
        elements=int(x.cardinality + y.cardinality),
        nbytes=int(x.nbytes + y.nbytes))
    if not pieces:
        return np.empty(0, dtype=np.uint32)
    return np.concatenate(pieces)


# ---------------------------------------------------------------------------
# blocked (composite) kernels
# ---------------------------------------------------------------------------

def intersect_blocked(x, y, counter=None, simd=True):
    """block-composite ∩ block-composite: intersect block id lists, then
    dispatch per common block on the (uint|bitset) pair stored there."""
    counter = get_counter(counter)
    if x.cardinality == 0 or y.cardinality == 0:
        return np.empty(0, dtype=np.uint32)
    common, ix, iy = np.intersect1d(
        x.block_ids, y.block_ids, assume_unique=True, return_indices=True)
    counter.charge(
        "block_offsets",
        simd=-(-x.block_ids.size // SIMD_UINT32_LANES)
             + -(-y.block_ids.size // SIMD_UINT32_LANES),
        elements=int(x.block_ids.size + y.block_ids.size),
        nbytes=int(x.block_ids.nbytes + y.block_ids.nbytes))
    pieces = []
    for pa, pb in zip(ix, iy):
        block_a, block_b = x.blocks[pa], y.blocks[pb]
        hit = _intersect_pair_arrays(block_a, block_b, counter, simd)
        if hit.size:
            pieces.append(hit)
    if not pieces:
        return np.empty(0, dtype=np.uint32)
    return np.concatenate(pieces)


# ---------------------------------------------------------------------------
# dispatcher
# ---------------------------------------------------------------------------

def _decode_charge(layout, counter):
    """Charge the sequential/unpack decode cost for compressed layouts."""
    counter = get_counter(counter)
    if isinstance(layout, VariantSet):
        counter.charge("variant_decode", scalar=2 * layout.cardinality,
                       elements=layout.cardinality, nbytes=layout.nbytes)
    elif isinstance(layout, BitPackedSet):
        counter.charge("bitpacked_decode",
                       simd=-(-layout.cardinality // SIMD_UINT32_LANES),
                       elements=layout.cardinality, nbytes=layout.nbytes)


def _intersect_pair_arrays(x, y, counter, simd, algorithm=None,
                           adaptive=True, crossover=None):
    """Intersect two layout objects, returning a sorted uint32 *array*."""
    kx, ky = x.kind, y.kind
    # Compressed layouts decode to uint first (paper Appendix C.2.2).
    if kx in ("variant", "bitpacked"):
        _decode_charge(x, counter)
        x = UintSet.from_sorted(x.to_array())
        kx = "uint"
    if ky in ("variant", "bitpacked"):
        _decode_charge(y, counter)
        y = UintSet.from_sorted(y.to_array())
        ky = "uint"

    if kx == "uint" and ky == "uint":
        return intersect_uint_arrays(x.values, y.values, counter,
                                     algorithm=algorithm, adaptive=adaptive,
                                     simd=simd, crossover=crossover)
    if kx == "bitset" and ky == "bitset":
        return intersect_bitsets(x, y, counter, simd=simd).to_array()
    if kx == "uint" and ky == "bitset":
        return intersect_uint_bitset(x, y, counter, simd=simd)
    if kx == "bitset" and ky == "uint":
        return intersect_uint_bitset(y, x, counter, simd=simd)
    if kx == "pshort" and ky == "pshort":
        return intersect_pshorts(x, y, counter)
    if kx == "block" and ky == "block":
        return intersect_blocked(x, y, counter, simd=simd)
    # Remaining mixed combinations (pshort/block against others) go
    # through the uint path on the sparser representation.
    ax = x.to_array() if kx != "uint" else x.values
    ay = y.to_array() if ky != "uint" else y.values
    return intersect_uint_arrays(ax, ay, counter, algorithm=algorithm,
                                 adaptive=adaptive, simd=simd,
                                 crossover=crossover)


def intersect(x, y, counter=None, algorithm=None, adaptive=True, simd=True,
              crossover=None):
    """Intersect two :class:`~repro.sets.base.SetLayout` objects.

    Returns a :class:`BitSet` when both inputs are bitsets (the result is
    at most as dense as either input but block-AND output is naturally a
    bitset) and a :class:`UintSet` otherwise, matching the paper's
    result-layout policy.

    Parameters
    ----------
    algorithm:
        Optional uint-kernel override (one of :data:`UINT_ALGORITHMS`).
    adaptive:
        Enable Algorithm 2's cardinality-skew switch (disabled by the
        "-RA" ablation).
    simd:
        Use vectorized kernels; ``False`` is the "-S" ablation.
    crossover:
        Optional tuned galloping crossover ratio; ``None`` reads the
        live ``cost.GALLOPING_CROSSOVER``.
    """
    if not isinstance(x, SetLayout) or not isinstance(y, SetLayout):
        raise TypeError("intersect expects SetLayout operands")
    if x.kind == "bitset" and y.kind == "bitset" and simd:
        return intersect_bitsets(x, y, counter, simd=simd)
    out = _intersect_pair_arrays(x, y, counter, simd, algorithm=algorithm,
                                 adaptive=adaptive, crossover=crossover)
    return UintSet.from_sorted(out)


def intersect_many(sets, counter=None, algorithm=None, adaptive=True,
                   simd=True, crossover=None):
    """Fold :func:`intersect` over ``sets``, smallest-first.

    Ordering by ascending cardinality keeps every intermediate result no
    larger than the smallest input, which is how the generic join keeps
    its per-level work within the AGM budget.
    """
    sets = list(sets)
    if not sets:
        raise ValueError("intersect_many requires at least one set")
    if len(sets) == 1:
        return sets[0]
    if any(s.cardinality == 0 for s in sets):
        # Short-circuit before the sort: any empty input forces an empty
        # result, and the shared singleton avoids an allocation.
        return _EMPTY_UINT
    sets.sort(key=lambda s: s.cardinality)
    acc = sets[0]
    for other in sets[1:]:
        acc = intersect(acc, other, counter, algorithm=algorithm,
                        adaptive=adaptive, simd=simd, crossover=crossover)
        if acc.cardinality == 0:
            return _EMPTY_UINT
    return acc


# ---------------------------------------------------------------------------
# compile-time kernel specialization
# ---------------------------------------------------------------------------
#
# The generic :func:`intersect` re-inspects ``x.kind``/``y.kind`` on every
# call.  When the code generator knows both layouts at compile time (the
# trie build already decided them), it asks for a *pair kernel* here and
# emits a direct call, removing the dispatch chain from the inner loop —
# the "baking the kernel choice into the compiled plan" idea of the GPU
# Datalog follow-up work.  Every pair kernel has the same contract as
# :func:`intersect`: ``kernel(x, y, config) -> SetLayout`` with results
# identical to the generic dispatcher under that config.


def _pair_uint_uint(x, y, config):
    return UintSet.from_sorted(intersect_uint_arrays(
        x.values, y.values, config.counter,
        algorithm=config.uint_algorithm,
        adaptive=config.adaptive_algorithms, simd=config.simd,
        crossover=_config_crossover(config)))


def _pair_bitset_bitset(x, y, config):
    if config.simd:
        return intersect_bitsets(x, y, config.counter, simd=True)
    return UintSet.from_sorted(
        intersect_bitsets(x, y, config.counter, simd=False).to_array())


def _pair_uint_bitset(x, y, config):
    return UintSet.from_sorted(
        intersect_uint_bitset(x, y, config.counter, simd=config.simd))


def _pair_bitset_uint(x, y, config):
    return _pair_uint_bitset(y, x, config)


def _pair_pshort_pshort(x, y, config):
    return UintSet.from_sorted(intersect_pshorts(x, y, config.counter))


def _pair_block_block(x, y, config):
    return UintSet.from_sorted(
        intersect_blocked(x, y, config.counter, simd=config.simd))


def _pair_mixed_uint(x, y, config):
    """Fallback pair kernel for mixed pairs (pshort/block against others):
    the same sparse-representation uint path the dispatcher takes."""
    ax = x.to_array() if x.kind != "uint" else x.values
    ay = y.to_array() if y.kind != "uint" else y.values
    return UintSet.from_sorted(intersect_uint_arrays(
        ax, ay, config.counter, algorithm=config.uint_algorithm,
        adaptive=config.adaptive_algorithms, simd=config.simd,
        crossover=_config_crossover(config)))


#: ``(kind_a, kind_b) -> pair kernel``.  Compressed layouts (variant /
#: bitpacked) are deliberately absent: they decode per call, so the
#: generic dispatcher's decode-and-recurse path stays in charge.
PAIR_KERNELS = {
    ("uint", "uint"): _pair_uint_uint,
    ("bitset", "bitset"): _pair_bitset_bitset,
    ("uint", "bitset"): _pair_uint_bitset,
    ("bitset", "uint"): _pair_bitset_uint,
    ("pshort", "pshort"): _pair_pshort_pshort,
    ("block", "block"): _pair_block_block,
    ("uint", "pshort"): _pair_mixed_uint,
    ("pshort", "uint"): _pair_mixed_uint,
    ("uint", "block"): _pair_mixed_uint,
    ("block", "uint"): _pair_mixed_uint,
    ("pshort", "block"): _pair_mixed_uint,
    ("block", "pshort"): _pair_mixed_uint,
    ("pshort", "bitset"): _pair_mixed_uint,
    ("bitset", "pshort"): _pair_mixed_uint,
    ("block", "bitset"): _pair_mixed_uint,
    ("bitset", "block"): _pair_mixed_uint,
}


def specialized_pair_kernel(kind_a, kind_b):
    """Direct kernel for a layout pair known at compile time, or ``None``.

    Returns a ``kernel(x, y, config) -> SetLayout`` whose result equals
    ``intersect(x, y, config.counter, ...)`` for inputs of exactly these
    kinds; ``None`` means the caller must keep the generic dispatcher
    (unknown or compressed layouts).
    """
    return PAIR_KERNELS.get((kind_a, kind_b))
