"""Layout optimizers: relation-, set-, and block-level, plus the oracle.

Section 4.3 of the paper studies three granularities at which the engine
can choose between the uint and bitset layouts, and Section 4.4 settles on
the *set-level* optimizer (their Algorithm 3: a set becomes a bitset when
each value consumes at most one SIMD register's worth of bits, i.e. when
``range / cardinality < 256``).  The brute-force *oracle* optimizer runs
every layout/algorithm combination per intersection and charges only the
best one, giving the unachievable lower bound of Table 4.
"""

import itertools
import time

import numpy as np

from .base import SetLayout
from .bitset import BitSet
from .blocked import BlockedSet
from .cost import OpCounter, SIMD_REGISTER_BITS
from .intersect import UINT_ALGORITHMS, intersect
from .uint import UintSet

#: Names accepted for the ``level`` parameter of :func:`build_set`.
LEVELS = ("relation", "set", "block", "uint_only", "bitset_only")


def choose_set_layout(values, density_threshold=None):
    """The paper's Algorithm 3, deciding uint vs bitset for one set.

    ``values`` may be a sorted array or any iterable; returns the kind
    string (``"uint"`` or ``"bitset"``).  ``density_threshold``
    overrides the ``SIMD_REGISTER_BITS`` inverse-density bar when a
    tuning profile has calibrated the real uint/bitset crossover.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return "uint"
    if density_threshold is None:
        density_threshold = SIMD_REGISTER_BITS
    span = int(arr.max()) - int(arr.min()) + 1
    inverse_density = span / arr.size
    return "bitset" if inverse_density < density_threshold else "uint"


def build_set(values, level="set", density_threshold=None):
    """Materialize ``values`` under the given optimizer granularity.

    Parameters
    ----------
    level:
        * ``"relation"`` / ``"uint_only"`` — every set is a uint array
          (the best homogeneous choice on sparse real data, Section 4.3).
        * ``"bitset_only"`` — every set is a bitset (homogeneous dense).
        * ``"set"`` — per-set Algorithm 3 decision (the engine default).
        * ``"block"`` — the composite block layout.
    density_threshold:
        Tuned inverse-density crossover for the ``"set"`` decision;
        ``None`` keeps the paper's ``SIMD_REGISTER_BITS`` bar.
    """
    if level in ("relation", "uint_only"):
        return UintSet(values)
    if level == "bitset_only":
        return BitSet(values)
    if level == "set":
        if choose_set_layout(values, density_threshold) == "bitset":
            return BitSet(values)
        return UintSet(values)
    if level == "block":
        return BlockedSet(values)
    raise ValueError("unknown optimizer level %r (expected one of %s)"
                     % (level, ", ".join(LEVELS)))


def layout_histogram(sets):
    """Count how many sets of an iterable landed in each layout kind.

    Used by the experiments to report facts like "41% of Google+
    neighborhoods became bitsets" (Section 5.2.1).
    """
    histogram = {}
    for s in sets:
        histogram[s.kind] = histogram.get(s.kind, 0) + 1
    return histogram


class SetOptimizer:
    """Stateful wrapper the trie builder calls for every set it stores.

    Tracks decision overhead (Table 15) and the layout histogram so the
    benchmarks can report both without re-walking the trie.
    """

    def __init__(self, level="set", density_threshold=None):
        if level not in LEVELS:
            raise ValueError("unknown optimizer level %r" % (level,))
        self.level = level
        self.density_threshold = density_threshold
        self.decision_seconds = 0.0
        self.histogram = {}

    def build(self, values):
        """Choose a layout for ``values`` and materialize it."""
        start = time.perf_counter()
        layout = build_set(values, self.level, self.density_threshold)
        self.decision_seconds += time.perf_counter() - start
        self.histogram[layout.kind] = self.histogram.get(layout.kind, 0) + 1
        return layout


#: Layout kinds the oracle may assign to one operand.
_ORACLE_LAYOUTS = ("uint", "bitset")


def oracle_intersection_cost(a_values, b_values):
    """Lower-bound cost of intersecting two value arrays (Section 4.4).

    Tries every (layout_a, layout_b, algorithm) combination, measuring the
    simulated-op cost of each, and returns the minimum cost together with
    the winning combination.  This "perfect knowledge" optimizer is the
    baseline Table 4 compares the practical optimizers against.
    """
    best = None
    for kind_a, kind_b in itertools.product(_ORACLE_LAYOUTS, repeat=2):
        set_a = UintSet(a_values) if kind_a == "uint" else BitSet(a_values)
        set_b = UintSet(b_values) if kind_b == "uint" else BitSet(b_values)
        if kind_a == "uint" and kind_b == "uint":
            algorithms = UINT_ALGORITHMS
        else:
            algorithms = (None,)
        for algorithm in algorithms:
            counter = OpCounter()
            intersect(set_a, set_b, counter, algorithm=algorithm)
            cost = counter.total_ops
            combo = (kind_a, kind_b, algorithm)
            if best is None or cost < best[0]:
                best = (cost, combo)
    return best


class OracleCounter:
    """Accumulates oracle lower-bound costs across a whole query.

    The execution engine can be run in "oracle audit" mode where every
    intersection it performs is also priced by the oracle; the ratio of
    actual simulated ops to oracle ops reproduces Table 4's columns.
    """

    def __init__(self):
        self.oracle_ops = 0
        self.intersections = 0

    def observe(self, a_layout: SetLayout, b_layout: SetLayout):
        """Price one intersection at the oracle's optimum."""
        cost, _ = oracle_intersection_cost(a_layout.to_array(),
                                           b_layout.to_array())
        self.oracle_ops += cost
        self.intersections += 1
