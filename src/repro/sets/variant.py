"""The ``variant`` layout: variable-byte delta encoding (Appendix C.1.2).

The sorted values are difference-encoded (``x1, x2-x1, x3-x2, ...``) and
each delta is stored in 7-bit groups with a continuation bit, the classic
Variable Byte encoding of Thiel and Heaps.  Intersections decode to a
uint array first, exactly as the paper does for this layout.
"""

import numpy as np

from .base import SetLayout, as_sorted_uint32


def encode_varint_deltas(arr):
    """Delta-encode a sorted ``uint32`` array into a varint byte buffer."""
    if arr.size == 0:
        return np.empty(0, dtype=np.uint8)
    deltas = np.empty(arr.size, dtype=np.uint64)
    deltas[0] = arr[0]
    deltas[1:] = arr[1:].astype(np.uint64) - arr[:-1].astype(np.uint64)
    out = bytearray()
    for delta in deltas.tolist():
        while True:
            byte = delta & 0x7F
            delta >>= 7
            if delta:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return np.frombuffer(bytes(out), dtype=np.uint8)


def decode_varint_deltas(buf, count):
    """Decode ``count`` values from a varint delta buffer."""
    values = np.empty(count, dtype=np.uint32)
    acc = 0
    pos = 0
    data = buf.tolist()
    for i in range(count):
        shift = 0
        delta = 0
        while True:
            byte = data[pos]
            pos += 1
            delta |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        acc += delta
        values[i] = acc
    return values


class VariantSet(SetLayout):
    """Variable-byte delta-encoded layout.

    Better compression than uint for clustered data, but every operation
    pays a sequential decode, which is why the paper finds it ~2x slower
    than uint on triangle counting despite the smaller footprint.
    """

    kind = "variant"

    __slots__ = ("_buffer", "_cardinality", "_min", "_max")

    def __init__(self, values):
        arr = as_sorted_uint32(values)
        self._buffer = encode_varint_deltas(arr)
        self._cardinality = int(arr.size)
        self._min = int(arr[0]) if arr.size else None
        self._max = int(arr[-1]) if arr.size else None

    @property
    def buffer(self):
        """The raw encoded ``uint8`` buffer."""
        return self._buffer

    @property
    def cardinality(self):
        return self._cardinality

    def to_array(self):
        if self._cardinality == 0:
            return np.empty(0, dtype=np.uint32)
        return decode_varint_deltas(self._buffer, self._cardinality)

    @property
    def min_value(self):
        return self._min

    @property
    def max_value(self):
        return self._max

    @property
    def nbytes(self):
        return int(self._buffer.nbytes)
