"""The ``pshort`` (Prefix Short) layout (paper Appendix C.1.1).

Values are grouped by their upper 16 bits; each group stores the common
prefix once plus the group's lower 16-bit halves.  On the paper's hardware
this enables the STTNI string-compare instruction to match eight 16-bit
values at once; here the lower halves are ``uint16`` numpy arrays so
vectorized comparisons play the same role.
"""

import numpy as np

from .base import SetLayout, as_sorted_uint32


class PShortSet(SetLayout):
    """Prefix-compressed layout: ``[(prefix, uint16 lower-half array)]``.

    The groups are stored in ascending prefix order and each group's lower
    halves are sorted, so global sorted order is groups-then-members.
    """

    kind = "pshort"

    __slots__ = ("_prefixes", "_groups", "_cardinality")

    def __init__(self, values):
        arr = as_sorted_uint32(values)
        if arr.size == 0:
            self._prefixes = np.empty(0, dtype=np.uint16)
            self._groups = []
            self._cardinality = 0
            return
        high = (arr >> 16).astype(np.uint16)
        low = (arr & 0xFFFF).astype(np.uint16)
        prefixes, starts = np.unique(high, return_index=True)
        bounds = np.append(starts, arr.size)
        self._prefixes = prefixes
        self._groups = [low[bounds[i]:bounds[i + 1]]
                        for i in range(prefixes.size)]
        self._cardinality = int(arr.size)

    @property
    def prefixes(self):
        """Sorted ``uint16`` array of 16-bit prefixes present."""
        return self._prefixes

    @property
    def groups(self):
        """List of sorted ``uint16`` arrays, parallel to :attr:`prefixes`."""
        return self._groups

    @property
    def cardinality(self):
        return self._cardinality

    def to_array(self):
        if self._cardinality == 0:
            return np.empty(0, dtype=np.uint32)
        parts = [
            (np.uint32(prefix) << np.uint32(16)) | group.astype(np.uint32)
            for prefix, group in zip(self._prefixes, self._groups)
        ]
        return np.concatenate(parts)

    @property
    def min_value(self):
        if self._cardinality == 0:
            return None
        return (int(self._prefixes[0]) << 16) | int(self._groups[0][0])

    @property
    def max_value(self):
        if self._cardinality == 0:
            return None
        return (int(self._prefixes[-1]) << 16) | int(self._groups[-1][-1])

    def contains(self, value):
        value = int(value)
        prefix = value >> 16
        idx = int(np.searchsorted(self._prefixes, np.uint16(prefix)))
        if idx >= self._prefixes.size or self._prefixes[idx] != prefix:
            return False
        group = self._groups[idx]
        low = np.uint16(value & 0xFFFF)
        pos = int(np.searchsorted(group, low))
        return bool(pos < group.size and group[pos] == low)

    @property
    def nbytes(self):
        # Each partition stores its prefix and length once (paper C.1.1).
        header = 4 * self._prefixes.size
        return int(header + sum(g.nbytes for g in self._groups))
