"""SIMD lane-op cost model for set operations.

The paper's engine exploits AVX SIMD registers: 128-bit lanes for 32-bit
integer comparisons (four ``uint32`` values per instruction, the paper's
footnote 7) and 256-bit registers for bitset AND operations (256 set
elements per instruction, Section 4.2).  Pure Python cannot issue SIMD
instructions, so this module provides the measurement substrate that the
benchmarks use instead of raw cycle counts: every intersection algorithm
*charges* the number of simulated SIMD instructions and scalar operations
it would execute on the paper's hardware.

The wall-clock behaviour of the numpy kernels tracks these counters closely
(numpy processes many lanes per interpreter operation, the same economics
as SIMD), but the counters are exact and deterministic, which lets the
benchmark harness reproduce the paper's crossover points — e.g. the 32:1
cardinality ratio where galloping overtakes shuffling — independent of
interpreter noise.
"""

from dataclasses import dataclass, field

#: Number of 32-bit integer lanes in one SIMD comparison (SSE, 128-bit).
SIMD_UINT32_LANES = 4

#: Number of bits processed by one SIMD AND over a 256-bit AVX register.
SIMD_REGISTER_BITS = 256

#: Number of 16-bit lanes compared by one STTNI string-compare instruction,
#: used by the pshort layout (Appendix C.2.2).
SIMD_UINT16_LANES = 8


@dataclass
class OpCounter:
    """Accumulates simulated hardware operations for one measured region.

    Attributes
    ----------
    simd_ops:
        Simulated wide instructions (comparisons, shuffles, ANDs).
    scalar_ops:
        Simulated scalar instructions (branches, scalar compares, probes).
    elements:
        Total input set elements touched, for throughput reporting.
    bytes_touched:
        Approximate bytes of set data read, for memory-traffic reporting.
    """

    simd_ops: int = 0
    scalar_ops: int = 0
    elements: int = 0
    bytes_touched: int = 0
    intersections: int = 0
    by_algorithm: dict = field(default_factory=dict)

    def charge(self, algorithm, simd=0, scalar=0, elements=0, nbytes=0):
        """Record one intersection's worth of simulated work."""
        self.simd_ops += simd
        self.scalar_ops += scalar
        self.elements += elements
        self.bytes_touched += nbytes
        self.intersections += 1
        per_algo = self.by_algorithm.setdefault(
            algorithm, {"simd": 0, "scalar": 0, "calls": 0})
        per_algo["simd"] += simd
        per_algo["scalar"] += scalar
        per_algo["calls"] += 1

    @property
    def total_ops(self):
        """Total simulated instruction count (wide + scalar)."""
        return self.simd_ops + self.scalar_ops

    def reset(self):
        """Zero every counter, keeping the object identity."""
        self.simd_ops = 0
        self.scalar_ops = 0
        self.elements = 0
        self.bytes_touched = 0
        self.intersections = 0
        self.by_algorithm.clear()

    def snapshot(self):
        """Return a plain dict copy of the counters for reporting."""
        return {
            "simd_ops": self.simd_ops,
            "scalar_ops": self.scalar_ops,
            "total_ops": self.total_ops,
            "elements": self.elements,
            "bytes_touched": self.bytes_touched,
            "intersections": self.intersections,
            "by_algorithm": {k: dict(v) for k, v in self.by_algorithm.items()},
        }


#: A shared counter used when callers do not pass their own.  Benchmarks
#: that care about attribution construct a private :class:`OpCounter`.
GLOBAL_COUNTER = OpCounter()


def get_counter(counter=None):
    """Return ``counter`` if given, else the module-level shared counter."""
    return GLOBAL_COUNTER if counter is None else counter
