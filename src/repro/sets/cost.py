"""SIMD lane-op cost model for set operations.

The paper's engine exploits AVX SIMD registers: 128-bit lanes for 32-bit
integer comparisons (four ``uint32`` values per instruction, the paper's
footnote 7) and 256-bit registers for bitset AND operations (256 set
elements per instruction, Section 4.2).  Pure Python cannot issue SIMD
instructions, so this module provides the measurement substrate that the
benchmarks use instead of raw cycle counts: every intersection algorithm
*charges* the number of simulated SIMD instructions and scalar operations
it would execute on the paper's hardware.

The wall-clock behaviour of the numpy kernels tracks these counters closely
(numpy processes many lanes per interpreter operation, the same economics
as SIMD), but the counters are exact and deterministic, which lets the
benchmark harness reproduce the paper's crossover points — e.g. the 32:1
cardinality ratio where galloping overtakes shuffling — independent of
interpreter noise.
"""

import math
from dataclasses import dataclass, field

#: Number of 32-bit integer lanes in one SIMD comparison (SSE, 128-bit).
SIMD_UINT32_LANES = 4

#: Cardinality ratio beyond which the hybrid dispatcher switches from
#: SIMDShuffling to SIMDGalloping (paper Section 4.2 / Algorithm 2).
#: :mod:`repro.sets.intersect` re-exports this as ``GALLOPING_THRESHOLD``;
#: it lives here so the *predictive* side of the model below stays in
#: lock-step with the dispatch side.
GALLOPING_CROSSOVER = 32

#: Number of bits processed by one SIMD AND over a 256-bit AVX register.
SIMD_REGISTER_BITS = 256

#: Number of 16-bit lanes compared by one STTNI string-compare instruction,
#: used by the pshort layout (Appendix C.2.2).
SIMD_UINT16_LANES = 8


@dataclass
class OpCounter:
    """Accumulates simulated hardware operations for one measured region.

    Attributes
    ----------
    simd_ops:
        Simulated wide instructions (comparisons, shuffles, ANDs).
    scalar_ops:
        Simulated scalar instructions (branches, scalar compares, probes).
    elements:
        Total input set elements touched, for throughput reporting.
    bytes_touched:
        Approximate bytes of set data read, for memory-traffic reporting.
    """

    simd_ops: int = 0
    scalar_ops: int = 0
    elements: int = 0
    bytes_touched: int = 0
    intersections: int = 0
    by_algorithm: dict = field(default_factory=dict)

    def charge(self, algorithm, simd=0, scalar=0, elements=0, nbytes=0):
        """Record one intersection's worth of simulated work."""
        self.simd_ops += simd
        self.scalar_ops += scalar
        self.elements += elements
        self.bytes_touched += nbytes
        self.intersections += 1
        per_algo = self.by_algorithm.setdefault(
            algorithm, {"simd": 0, "scalar": 0, "calls": 0})
        per_algo["simd"] += simd
        per_algo["scalar"] += scalar
        per_algo["calls"] += 1

    @property
    def total_ops(self):
        """Total simulated instruction count (wide + scalar)."""
        return self.simd_ops + self.scalar_ops

    def reset(self):
        """Zero every counter, keeping the object identity."""
        self.simd_ops = 0
        self.scalar_ops = 0
        self.elements = 0
        self.bytes_touched = 0
        self.intersections = 0
        self.by_algorithm.clear()

    def snapshot(self):
        """Return a plain dict copy of the counters for reporting."""
        return {
            "simd_ops": self.simd_ops,
            "scalar_ops": self.scalar_ops,
            "total_ops": self.total_ops,
            "elements": self.elements,
            "bytes_touched": self.bytes_touched,
            "intersections": self.intersections,
            "by_algorithm": {k: dict(v) for k, v in self.by_algorithm.items()},
        }


#: A shared counter used when callers do not pass their own.  Benchmarks
#: that care about attribution construct a private :class:`OpCounter`.
GLOBAL_COUNTER = OpCounter()


def get_counter(counter=None):
    """Return ``counter`` if given, else the module-level shared counter."""
    return GLOBAL_COUNTER if counter is None else counter


# ---------------------------------------------------------------------------
# predictive side of the model
# ---------------------------------------------------------------------------
#
# The charge formulas above record what an intersection *did* cost; the
# functions below predict, from cardinalities alone, what the dispatcher
# in :mod:`repro.sets.intersect` *will* charge for sorted-uint inputs.
# EXPLAIN ANALYZE (:mod:`repro.obs.explain`) compares these predictions
# against the measured lane ops to report the cost-model error per GHD
# bag — this is the single place the prediction formulas live, so the
# comparison is model-vs-reality, not model-vs-itself-rederived.

def _log2_ceil(n):
    return max(1, math.ceil(math.log2(max(int(n), 2))))


def predict_pair_ops(card_a, card_b, simd=True, crossover=None):
    """Predicted total lane ops for one two-set intersection.

    Mirrors the adaptive uint dispatch: past the
    :data:`GALLOPING_CROSSOVER` cardinality ratio (or the tuned
    ``crossover`` override when a :class:`repro.tune.TuningProfile` is
    active) the galloping family runs (``O(small log large)``); below it
    the shuffling/merge family runs (``O(small + large)``).  The
    shuffling output term is bounded by the smaller input, making this
    an upper-bound prediction.
    """
    small = max(0, min(int(card_a), int(card_b)))
    large = max(0, max(int(card_a), int(card_b)))
    if small == 0:
        return 0
    if crossover is None:
        crossover = GALLOPING_CROSSOVER
    galloping = large > crossover * small
    if not simd:
        if galloping:
            return small * _log2_ceil(large)
        return small + large
    if galloping:
        blocks = -(-large // SIMD_UINT32_LANES)
        return 2 * small + small * _log2_ceil(blocks)
    return (-(-small // SIMD_UINT32_LANES) + -(-large // SIMD_UINT32_LANES)
            + small)


def predict_intersection_ops(cards, simd=True, crossover=None):
    """Predicted lane ops for a multi-way intersection.

    Models ``intersect_many``'s smallest-first left fold: each step
    intersects the running result (bounded by the smallest cardinality
    seen so far) with the next-larger set.
    """
    cards = sorted(max(0, int(c)) for c in cards)
    if len(cards) < 2:
        return 0
    total = 0
    running = cards[0]
    for card in cards[1:]:
        total += predict_pair_ops(running, card, simd=simd,
                                  crossover=crossover)
        running = min(running, card)
    return total
