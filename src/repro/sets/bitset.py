"""The ``bitset`` layout: (offset, bitvector-block) pairs (paper Figure 4).

The domain is divided into aligned blocks of :data:`BLOCK_BITS` bits (256,
the width of an AVX register — the paper's default block size).  The layout
stores, for each *non-empty* block, its block index ("offset") and a
256-bit bitvector.  Offsets are kept as a sorted ``uint32`` array so they
can be intersected with the same kernels as the uint layout, exactly as the
paper describes; the bitvectors are stored as rows of four ``uint64``
words, and intersecting two aligned blocks is a single vectorized AND —
the SIMD analog this reproduction relies on.
"""

import numpy as np

from .base import SetLayout, as_sorted_uint32

#: Bits per block — the paper's default of 256 (one AVX register).
BLOCK_BITS = 256

#: ``uint64`` words per block.
WORDS_PER_BLOCK = BLOCK_BITS // 64

_BLOCK_SHIFT = 8          # log2(BLOCK_BITS)
_BLOCK_MASK = BLOCK_BITS - 1

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount_u64(words):
    """Population count of each ``uint64`` in ``words``.

    Uses :func:`numpy.bitwise_count` when available and falls back to
    byte-table counting through :func:`numpy.unpackbits` otherwise.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    as_bytes = words.view(np.uint8).reshape(words.shape + (8,))
    return np.unpackbits(as_bytes, axis=-1).sum(axis=-1).astype(np.int64)


class BitSet(SetLayout):
    """Dense layout storing one 256-bit bitvector per non-empty block.

    Parameters
    ----------
    values:
        Iterable of integers to encode.

    Notes
    -----
    The paper's set-level optimizer sizes a bitset block to the range of
    the set; this reproduction keeps blocks aligned to 256-bit boundaries
    of the global domain instead, which makes any two bitsets directly
    AND-able without re-alignment.  The memory overhead relative to
    range-sized blocks is at most one partial block on each end.
    """

    kind = "bitset"

    __slots__ = ("_offsets", "_words", "_cardinality", "_cumulative")

    def __init__(self, values):
        arr = as_sorted_uint32(values)
        self._init_from_sorted(arr)

    def _init_from_sorted(self, arr):
        if arr.size == 0:
            self._offsets = np.empty(0, dtype=np.uint32)
            self._words = np.empty((0, WORDS_PER_BLOCK), dtype=np.uint64)
            self._cardinality = 0
            self._cumulative = np.empty(0, dtype=np.int64)
            return
        block_ids = (arr >> _BLOCK_SHIFT).astype(np.uint32)
        offsets, inverse = np.unique(block_ids, return_inverse=True)
        words = np.zeros((offsets.size, WORDS_PER_BLOCK), dtype=np.uint64)
        in_block = (arr & _BLOCK_MASK).astype(np.uint32)
        word_idx = (in_block >> 6).astype(np.intp)
        bit_idx = (in_block & 63).astype(np.uint64)
        flat = words.reshape(-1)
        np.bitwise_or.at(flat, inverse * WORDS_PER_BLOCK + word_idx,
                         np.uint64(1) << bit_idx)
        self._offsets = offsets
        self._words = words
        self._cardinality = int(arr.size)
        self._cumulative = None  # built lazily for rank()

    @classmethod
    def from_blocks(cls, offsets, words):
        """Build directly from sorted block offsets and word rows.

        Internal fast path used by the bitset∩bitset kernel; empty blocks
        (all-zero word rows) are dropped so the invariant "every stored
        block is non-empty" holds.
        """
        out = cls.__new__(cls)
        if offsets.size:
            nonempty = words.any(axis=1)
            offsets = offsets[nonempty]
            words = words[nonempty]
        out._offsets = offsets.astype(np.uint32, copy=False)
        out._words = np.ascontiguousarray(words, dtype=np.uint64)
        out._cardinality = int(popcount_u64(out._words).sum())
        out._cumulative = None
        return out

    @property
    def offsets(self):
        """Sorted ``uint32`` array of non-empty block indices."""
        return self._offsets

    @property
    def words(self):
        """``(n_blocks, 4)`` array of ``uint64`` bitvector words."""
        return self._words

    @property
    def cardinality(self):
        return self._cardinality

    def to_array(self):
        if self._cardinality == 0:
            return np.empty(0, dtype=np.uint32)
        # Expand each word to its set bit positions via unpackbits.
        as_bytes = self._words.view(np.uint8)          # little-endian bytes
        bits = np.unpackbits(as_bytes, axis=None, bitorder="little")
        bits = bits.reshape(self._offsets.size, BLOCK_BITS)
        block_idx, bit_pos = np.nonzero(bits)
        values = (self._offsets[block_idx].astype(np.uint32) << _BLOCK_SHIFT) \
            | bit_pos.astype(np.uint32)
        return values

    @property
    def min_value(self):
        if self._cardinality == 0:
            return None
        first = self._words[0]
        for w in range(WORDS_PER_BLOCK):
            if first[w]:
                word = int(first[w])
                bit = (word & -word).bit_length() - 1
                return (int(self._offsets[0]) << _BLOCK_SHIFT) + 64 * w + bit
        raise AssertionError("non-empty bitset with empty first block")

    @property
    def max_value(self):
        if self._cardinality == 0:
            return None
        last = self._words[-1]
        for w in range(WORDS_PER_BLOCK - 1, -1, -1):
            if last[w]:
                bit = int(last[w]).bit_length() - 1
                return (int(self._offsets[-1]) << _BLOCK_SHIFT) + 64 * w + bit
        raise AssertionError("non-empty bitset with empty last block")

    def contains(self, value):
        value = int(value)
        block = value >> _BLOCK_SHIFT
        idx = int(np.searchsorted(self._offsets, np.uint32(block)))
        if idx >= self._offsets.size or self._offsets[idx] != block:
            return False
        in_block = value & _BLOCK_MASK
        word = self._words[idx, in_block >> 6]
        return bool((int(word) >> (in_block & 63)) & 1)

    def _cumulative_counts(self):
        """Exclusive prefix popcounts per word, flattened, for rank()."""
        if self._cumulative is None:
            counts = popcount_u64(self._words).reshape(-1)
            self._cumulative = np.concatenate(
                ([0], np.cumsum(counts)[:-1])).astype(np.int64)
        return self._cumulative

    def rank(self, value):
        value = int(value)
        block = value >> _BLOCK_SHIFT
        idx = int(np.searchsorted(self._offsets, np.uint32(block)))
        if idx >= self._offsets.size or self._offsets[idx] != block:
            raise KeyError(value)
        in_block = value & _BLOCK_MASK
        word_i = in_block >> 6
        bit_i = in_block & 63
        word = int(self._words[idx, word_i])
        if not (word >> bit_i) & 1:
            raise KeyError(value)
        flat_word = idx * WORDS_PER_BLOCK + word_i
        before = int(self._cumulative_counts()[flat_word])
        mask = (1 << bit_i) - 1
        return before + bin(word & mask).count("1")

    @property
    def nbytes(self):
        return int(self._offsets.nbytes + self._words.nbytes)

    @property
    def n_blocks(self):
        """Number of stored (non-empty) blocks."""
        return int(self._offsets.size)
