"""The ``bitpacked`` layout: fixed-width packed deltas (Appendix C.1.3).

The set is difference-encoded and every delta is stored using ``b`` bits,
where ``b`` is the entropy of the largest delta in the (single) partition —
the paper's "fastest encode/decode at the cost of a worse compression
ratio" variant.  Packing and unpacking are done with vectorized bit
arithmetic, mirroring the SIMD register-granularity packing of Lemire et
al. that the paper adopts.
"""

import numpy as np

from .base import SetLayout, as_sorted_uint32


def pack_bits(deltas, width):
    """Pack each value of ``deltas`` into ``width`` bits of a uint64 stream."""
    if deltas.size == 0:
        return np.empty(0, dtype=np.uint64)
    total_bits = int(deltas.size) * width
    n_words = (total_bits + 63) // 64
    words = np.zeros(n_words, dtype=np.uint64)
    bit_positions = np.arange(deltas.size, dtype=np.int64) * width
    word_idx = bit_positions >> 6
    bit_off = (bit_positions & 63).astype(np.uint64)
    vals = deltas.astype(np.uint64)
    np.bitwise_or.at(words, word_idx, vals << bit_off)
    # Deltas that straddle a word boundary spill their high bits into the
    # next word.
    spill = bit_off.astype(np.int64) + width > 64
    if spill.any():
        np.bitwise_or.at(words, word_idx[spill] + 1,
                         vals[spill] >> (np.uint64(64) - bit_off[spill]))
    return words


def unpack_bits(words, width, count):
    """Inverse of :func:`pack_bits`: recover ``count`` ``width``-bit values."""
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    bit_positions = np.arange(count, dtype=np.int64) * width
    word_idx = bit_positions >> 6
    bit_off = (bit_positions & 63).astype(np.uint64)
    vals = words[word_idx] >> bit_off
    spill = bit_off.astype(np.int64) + width > 64
    if spill.any():
        vals[spill] |= words[word_idx[spill] + 1] \
            << (np.uint64(64) - bit_off[spill])
    if width < 64:
        vals &= (np.uint64(1) << np.uint64(width)) - np.uint64(1)
    return vals


class BitPackedSet(SetLayout):
    """Fixed-width delta-packed layout (one partition per set)."""

    kind = "bitpacked"

    __slots__ = ("_words", "_width", "_cardinality", "_min", "_max")

    def __init__(self, values):
        arr = as_sorted_uint32(values)
        self._cardinality = int(arr.size)
        self._min = int(arr[0]) if arr.size else None
        self._max = int(arr[-1]) if arr.size else None
        if arr.size == 0:
            self._width = 0
            self._words = np.empty(0, dtype=np.uint64)
            return
        # The first value is kept verbatim (in the header); only the
        # successive deltas are packed, so the bit width reflects gap
        # entropy rather than the absolute magnitude of the values.
        deltas = arr[1:].astype(np.uint64) - arr[:-1].astype(np.uint64)
        max_delta = int(deltas.max()) if deltas.size else 0
        self._width = max(1, max_delta.bit_length())
        self._words = pack_bits(deltas, self._width)

    @property
    def bit_width(self):
        """Bits used per stored delta."""
        return self._width

    @property
    def cardinality(self):
        return self._cardinality

    def to_array(self):
        if self._cardinality == 0:
            return np.empty(0, dtype=np.uint32)
        deltas = unpack_bits(self._words, self._width,
                             self._cardinality - 1)
        values = np.empty(self._cardinality, dtype=np.uint64)
        values[0] = self._min
        np.cumsum(deltas, out=values[1:])
        values[1:] += self._min
        return values.astype(np.uint32)

    @property
    def min_value(self):
        return self._min

    @property
    def max_value(self):
        return self._max

    @property
    def nbytes(self):
        # Header: length, bit width, and the verbatim first value.
        return int(self._words.nbytes + 6)
