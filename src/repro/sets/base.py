"""Common interface for EmptyHeaded set layouts.

Every trie level in the storage engine is a *set* of 32-bit unsigned
integers stored in one of several physical layouts (Section 4.1 and
Appendix C.1 of the paper).  All layouts expose the same logical
interface — a sorted sequence of distinct ``uint32`` values — so the
execution engine can intersect and iterate sets without caring how they
are encoded.
"""

import abc

import numpy as np

from ..errors import LayoutError

#: Inclusive upper bound of the value domain (32-bit unsigned integers).
MAX_VALUE = 2 ** 32 - 1


def as_sorted_uint32(values):
    """Coerce ``values`` to a sorted, duplicate-free ``uint32`` array.

    This is the canonical exchange format between layouts: every layout
    can be built from it and decode back to it.

    Raises
    ------
    LayoutError
        If any value is negative or exceeds the 32-bit range.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return np.empty(0, dtype=np.uint32)
    if arr.dtype.kind not in "iu":
        if arr.dtype.kind == "f" and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise LayoutError("set values must be integers, got dtype %s"
                              % arr.dtype)
    arr = arr.astype(np.int64, copy=False)
    if arr.min() < 0 or arr.max() > MAX_VALUE:
        raise LayoutError("set values must fit in uint32, got range [%d, %d]"
                          % (arr.min(), arr.max()))
    return np.unique(arr).astype(np.uint32)


class SetLayout(abc.ABC):
    """Abstract base class for physical set layouts.

    Subclasses store an immutable sorted set of ``uint32`` values.  The
    two capabilities every layout must provide are decoding
    (:meth:`to_array`) and size metadata (:attr:`cardinality`,
    :attr:`min_value` / :attr:`max_value`); the intersection kernels in
    :mod:`repro.sets.intersect` dispatch on the concrete layout pair.
    """

    #: Short name used by the optimizer and in explain output.
    kind = "abstract"

    @property
    @abc.abstractmethod
    def cardinality(self):
        """Number of values in the set."""

    @abc.abstractmethod
    def to_array(self):
        """Decode to a sorted ``uint32`` numpy array (a fresh copy is not
        guaranteed; callers must not mutate the result)."""

    @property
    @abc.abstractmethod
    def min_value(self):
        """Smallest value, or ``None`` for the empty set."""

    @property
    @abc.abstractmethod
    def max_value(self):
        """Largest value, or ``None`` for the empty set."""

    @property
    def value_range(self):
        """``max - min + 1``, the span of the domain actually used.

        The set-level layout optimizer (paper Algorithm 3) compares this
        against the cardinality to estimate density.
        """
        if self.cardinality == 0:
            return 0
        return int(self.max_value) - int(self.min_value) + 1

    @property
    def density(self):
        """Fraction of the occupied span that is populated, in ``[0, 1]``."""
        span = self.value_range
        return 0.0 if span == 0 else self.cardinality / span

    def contains(self, value):
        """Membership test; layouts override with faster native probes."""
        arr = self.to_array()
        idx = np.searchsorted(arr, np.uint32(value))
        return bool(idx < arr.size and arr[idx] == np.uint32(value))

    def rank(self, value):
        """Index of ``value`` in sorted order.

        Used by the trie to map a set element to its child pointer /
        annotation slot.  Raises :class:`KeyError` when absent.
        """
        arr = self.to_array()
        idx = int(np.searchsorted(arr, np.uint32(value)))
        if idx >= arr.size or arr[idx] != np.uint32(value):
            raise KeyError(value)
        return idx

    @property
    def nbytes(self):
        """Approximate encoded size in bytes (layout-specific)."""
        return int(self.to_array().nbytes)

    def __len__(self):
        return self.cardinality

    def __iter__(self):
        return iter(int(v) for v in self.to_array())

    def __contains__(self, value):
        return self.contains(value)

    def __eq__(self, other):
        if not isinstance(other, SetLayout):
            return NotImplemented
        return np.array_equal(self.to_array(), other.to_array())

    def __hash__(self):
        return hash(self.to_array().tobytes())

    def __repr__(self):
        card = self.cardinality
        preview = ", ".join(str(v) for v in self.to_array()[:6])
        if card > 6:
            preview += ", ..."
        return "%s([%s], n=%d)" % (type(self).__name__, preview, card)
