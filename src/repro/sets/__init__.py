"""Set layouts, intersection kernels, and layout optimizers.

This package is the reproduction of the paper's execution-engine substrate
(Section 4 and Appendices C.1/C.2): five physical set layouts, the full
roster of intersection algorithms with a SIMD lane-op cost model, and the
relation/set/block-level layout optimizers plus the oracle lower bound.
"""

from .algebra import difference, union, union_many
from .base import MAX_VALUE, SetLayout, as_sorted_uint32
from .bitset import BLOCK_BITS, BitSet
from .bitpacked import BitPackedSet
from .blocked import BlockedSet
from .cost import (GLOBAL_COUNTER, OpCounter, SIMD_REGISTER_BITS,
                   SIMD_UINT16_LANES, SIMD_UINT32_LANES)
from .intersect import (GALLOPING_THRESHOLD, PAIR_KERNELS, UINT_ALGORITHMS,
                        choose_uint_algorithm, intersect, intersect_many,
                        intersect_uint_arrays, specialized_pair_kernel)
from .optimizer import (LEVELS, OracleCounter, SetOptimizer, build_set,
                        choose_set_layout, layout_histogram,
                        oracle_intersection_cost)
from .pshort import PShortSet
from .skew import (cardinality_ratio, density_skew, pearson_first_skew,
                   set_density, set_statistics)
from .uint import UintSet
from .variant import VariantSet

__all__ = [
    "difference", "union", "union_many",
    "MAX_VALUE", "SetLayout", "as_sorted_uint32",
    "BLOCK_BITS", "BitSet", "BitPackedSet", "BlockedSet",
    "GLOBAL_COUNTER", "OpCounter", "SIMD_REGISTER_BITS",
    "SIMD_UINT16_LANES", "SIMD_UINT32_LANES",
    "GALLOPING_THRESHOLD", "PAIR_KERNELS", "UINT_ALGORITHMS",
    "choose_uint_algorithm", "intersect", "intersect_many",
    "intersect_uint_arrays", "specialized_pair_kernel",
    "LEVELS", "OracleCounter", "SetOptimizer", "build_set",
    "choose_set_layout", "layout_histogram", "oracle_intersection_cost",
    "PShortSet", "UintSet", "VariantSet",
    "cardinality_ratio", "density_skew", "pearson_first_skew",
    "set_density", "set_statistics",
]
