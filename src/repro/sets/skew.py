"""Skew and density statistics over sets and degree sequences.

The paper distinguishes two kinds of skew that drive every optimizer in
the engine:

* *density skew* — the density of values varies across (and within) the
  sets of a relation; measured with Pearson's first coefficient of skew,
  ``3 * (mean - mode) / stddev`` (footnote 4 of the paper), over the
  per-set density distribution;
* *cardinality skew* — the two operands of an intersection have very
  different sizes; the ratio drives algorithm choice (Algorithm 2).
"""

import numpy as np


def pearson_first_skew(samples):
    """Pearson's first coefficient of skewness: ``3 (mean - mode) / σ``.

    The mode is taken from a 64-bin histogram of the samples, which is
    stable for the fractional density values this module feeds it.
    Returns 0.0 for degenerate inputs (fewer than two distinct values).
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size < 2:
        return 0.0
    std = arr.std()
    if std == 0:
        return 0.0
    # Mode estimation: histogram over the percentile-clipped range (heavy
    # tails would otherwise stretch the bins until the mode bin's
    # midpoint is meaningless), with smoothing to damp sampling noise.
    low, high = np.percentile(arr, [1.0, 99.0])
    if high <= low:
        mode = low
    else:
        clipped = arr[(arr >= low) & (arr <= high)]
        bins = max(8, min(32, int(np.sqrt(clipped.size))))
        counts, edges = np.histogram(clipped, bins=bins)
        smoothed = np.convolve(counts, [1.0, 2.0, 3.0, 2.0, 1.0],
                               mode="same")
        mode_bin = int(np.argmax(smoothed))
        mode = (edges[mode_bin] + edges[mode_bin + 1]) / 2.0
    return float(3.0 * (arr.mean() - mode) / std)


def set_density(values):
    """Density of one sorted value array: cardinality over occupied span."""
    arr = np.asarray(values)
    if arr.size == 0:
        return 0.0
    span = int(arr.max()) - int(arr.min()) + 1
    return arr.size / span


def density_skew(neighborhoods):
    """Density skew of a relation: Pearson skew of per-set densities.

    ``neighborhoods`` is an iterable of per-key value arrays (e.g. the
    adjacency sets of a graph).  This is the statistic reported per
    dataset in the paper's Table 3.
    """
    densities = [set_density(n) for n in neighborhoods if len(n)]
    return pearson_first_skew(densities)


def set_statistics(neighborhoods):
    """Cardinality/range summary of a relation's sets (paper Table 14).

    Returns a dict with mean/max cardinality and mean/max range.
    """
    cards = []
    ranges = []
    for n in neighborhoods:
        arr = np.asarray(n)
        if arr.size == 0:
            continue
        cards.append(arr.size)
        ranges.append(int(arr.max()) - int(arr.min()) + 1)
    if not cards:
        return {"mean_cardinality": 0.0, "max_cardinality": 0,
                "mean_range": 0.0, "max_range": 0}
    return {
        "mean_cardinality": float(np.mean(cards)),
        "max_cardinality": int(np.max(cards)),
        "mean_range": float(np.mean(ranges)),
        "max_range": int(np.max(ranges)),
    }


def cardinality_ratio(size_a, size_b):
    """Larger-over-smaller cardinality ratio (∞-safe)."""
    small = min(size_a, size_b)
    large = max(size_a, size_b)
    if small == 0:
        return float("inf") if large else 1.0
    return large / small
