"""Exception hierarchy for the EmptyHeaded reproduction.

Every error raised by the public API derives from :class:`EmptyHeadedError`
so callers can catch engine failures with a single except clause while the
subclasses preserve which compilation phase failed (parse, plan, execute).
"""


class EmptyHeadedError(Exception):
    """Base class for all errors raised by this package."""


class QuerySyntaxError(EmptyHeadedError):
    """The query text could not be tokenized or parsed.

    Carries the offending position so callers can point at the bad token.
    """

    def __init__(self, message, position=None, text=None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            snippet = text[max(0, position - 20):position + 20]
            message = "%s (near position %d: %r)" % (
                message, position, snippet)
        super().__init__(message)


class PlanError(EmptyHeadedError):
    """The query parsed but no valid GHD / physical plan could be built."""


class ExecutionError(EmptyHeadedError):
    """A physical plan failed while running."""


class SchemaError(EmptyHeadedError):
    """A relation was used inconsistently with its declared schema."""


class UnknownRelationError(SchemaError):
    """A query referenced a relation that is not loaded in the database."""

    def __init__(self, name, known=()):
        self.name = name
        known_part = ""
        if known:
            known_part = " (loaded relations: %s)" % ", ".join(sorted(known))
        super().__init__("unknown relation %r%s" % (name, known_part))


class LayoutError(EmptyHeadedError):
    """A set layout was constructed from or asked for invalid data."""
