"""EmptyHeaded reproduction: a relational engine for graph processing.

A from-scratch Python implementation of the SIGMOD 2016 EmptyHeaded
engine: a datalog-like query language compiled through generalized
hypertree decompositions (GHDs) to a worst-case optimal join engine with
skew-adaptive set layouts and intersection kernels.

>>> from repro import Database
>>> db = Database()
>>> _ = db.load_graph("Edge", [(0, 1), (1, 2), (0, 2)],
...                   prune=True)
>>> db.query("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
...          "w=<<COUNT(*)>>.").scalar
1.0
"""

from .api import Database, Result
from .engine.config import EngineConfig
from .errors import (EmptyHeadedError, ExecutionError, LayoutError,
                     PlanError, QuerySyntaxError, SchemaError,
                     UnknownRelationError)

__version__ = "1.0.0"

__all__ = [
    "Database", "Result", "EngineConfig",
    "EmptyHeadedError", "ExecutionError", "LayoutError", "PlanError",
    "QuerySyntaxError", "SchemaError", "UnknownRelationError",
    "__version__",
]
