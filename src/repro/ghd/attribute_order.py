"""Global attribute ordering from a GHD (paper §3.2).

Once a GHD is chosen, EmptyHeaded fixes a *global attribute order* that
determines both the order the generic join binds attributes and the index
(level) order of each trie.  The paper derives it from a pre-order
traversal of the GHD, appending each visited bag's attributes to a queue;
within a bag we put selection-bound attributes first (Appendix B.1,
"Within a Node") so constant filters run before any enumeration.
"""


def global_attribute_order(ghd, selected_vars=(), head_vars=()):
    """Pre-order attribute queue over the GHD's bags.

    Within each bag, attributes are enqueued selections-first, then the
    bag's remaining attributes in χ order.  Returns a tuple of attribute
    names covering every query variable exactly once.
    """
    selected = frozenset(selected_vars)
    order = []
    seen = set()
    for node in ghd.nodes_preorder():
        bag_selected = [v for v in node.chi if v in selected]
        bag_rest = [v for v in node.chi if v not in selected]
        for attr in bag_selected + bag_rest:
            if attr not in seen:
                seen.add(attr)
                order.append(attr)
    return tuple(order)


def bag_evaluation_order(bag_chi, out_attrs, global_order):
    """Evaluation order for one bag's generic join.

    The bag's *output* attributes (those retained for its parent or the
    query head) come first so aggregation over the remaining attributes
    can fold at each loop level without materializing the full join —
    the early-aggregation property that GHD plans buy (paper §3.1.1).
    Within each class, attributes follow the global order.
    """
    out = [a for a in global_order if a in bag_chi and a in out_attrs]
    rest = [a for a in global_order if a in bag_chi and a not in out_attrs]
    return tuple(out + rest)
