"""GHD search: find the minimum-width decomposition (paper §3.2).

Finding the minimum fractional-hypertree-width GHD is NP-hard in the
number of relations/attributes, but queries are small (≤ 7 relations in
the paper's benchmarks), so — like EmptyHeaded — we search exhaustively:
pick a subset of hyperedges as the root bag, split the remaining edges
into components connected through uncovered attributes, and recurse.  A
memoized dynamic program keeps the search fast, scoring subtrees by

1. maximum bag width (ρ*, ignoring selection-constrained attributes per
   Appendix B.1.1 step 1),
2. estimated total cost Σ AGM(bag) with real relation sizes,
3. selection depth (deeper is better when selections are pushed down,
   Appendix B.1.1 step 3),
4. bag count (fewer bags win ties),
5. predicted intersection lane ops (``repro.sets.cost``) as the final
   tiebreaker among otherwise equal plans.

Callers should always pass real catalog cardinalities via ``sizes``;
edges without one are costed at the symbolic :data:`DEFAULT_SIZE`, and
the ``size_fallback`` callback reports how many edges that happened to
(the executor surfaces it as a metrics counter plus a one-time warning).
"""

import math
from itertools import combinations

from ..sets.cost import predict_intersection_ops
from .agm import agm_bound, rho_star
from .ghd import GHD, GHDNode, single_node_ghd

#: Default symbolic relation size used when no sizes are provided.
DEFAULT_SIZE = 1000


class _Scored:
    """A candidate subtree with its DP score components."""

    __slots__ = ("node", "max_width", "cost", "sel_depth", "sel_count",
                 "n_bags", "icost")

    def __init__(self, node, max_width, cost, sel_depth, sel_count, n_bags,
                 icost=0):
        self.node = node
        self.max_width = max_width
        self.cost = cost
        self.sel_depth = sel_depth
        self.sel_count = sel_count
        self.n_bags = n_bags
        self.icost = icost

    def key(self, prefer_deep_selections):
        depth_term = -self.sel_depth if prefer_deep_selections else \
            self.sel_depth
        # icost stays last: it only separates plans the paper's own
        # criteria consider equal, so adding it never flips an
        # established width/cost/depth decision.
        return (round(self.max_width, 6), self.cost, depth_term,
                self.n_bags, self.icost)


def _ordered_vars(edges, vertex_order):
    """Variables of ``edges`` ordered by the query's vertex order."""
    present = set()
    for edge in edges:
        present |= edge.varset
    return tuple(v for v in vertex_order if v in present)


class GHDSearch:
    """Memoized exhaustive GHD search over one hypergraph."""

    def __init__(self, hypergraph, sizes=None, selected_vars=(),
                 selection_edges=(), prefer_deep_selections=True):
        self.hypergraph = hypergraph
        self.vertex_order = hypergraph.vertices
        self.sizes = dict(sizes or {})
        self.selected_vars = frozenset(selected_vars)
        self.selection_edges = frozenset(selection_edges)
        self.prefer_deep_selections = prefer_deep_selections
        self._memo = {}
        #: Edge indexes costed at the symbolic :data:`DEFAULT_SIZE`
        #: because the caller provided no cardinality for them.
        self.default_size_edges = set()

    def _size_of(self, edge):
        size = self.sizes.get(edge.index)
        if size is None:
            self.default_size_edges.add(edge.index)
            return DEFAULT_SIZE
        return size

    @property
    def default_size_uses(self):
        """How many distinct edges were costed symbolically."""
        return len(self.default_size_edges)

    def _bag_width(self, chi, edges):
        """ρ* of the bag's unselected attributes (B.1.1 step 1)."""
        to_cover = [v for v in chi if v not in self.selected_vars]
        return rho_star(to_cover, [e.varset for e in edges])

    def _bag_cost(self, chi, edges):
        """AGM bound of the bag's join with real sizes."""
        bound = agm_bound([e.varset for e in edges],
                          [self._size_of(e) for e in edges])
        return bound if math.isfinite(bound) else float("inf")

    def _bag_icost(self, edges):
        """Predicted lane ops of the bag's first intersection level
        (``repro.sets.cost``) — the last-resort tiebreaker."""
        return predict_intersection_ops([self._size_of(e) for e in edges])

    def best(self):
        """Best GHD for the full query."""
        all_edges = frozenset(e.index for e in self.hypergraph.edges)
        scored = self._solve(all_edges, frozenset())
        return GHD(scored.node, self.hypergraph)

    def _solve(self, edge_indexes, interface):
        memo_key = (edge_indexes, interface)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        edges = [e for e in self.hypergraph.edges
                 if e.index in edge_indexes]
        best = None
        for size in range(1, len(edges) + 1):
            for subset in combinations(edges, size):
                chi_set = frozenset().union(*[e.varset for e in subset])
                if not interface <= chi_set:
                    continue
                candidate = self._build_candidate(edges, subset, chi_set)
                if candidate is None:
                    continue
                if best is None or candidate.key(
                        self.prefer_deep_selections) \
                        < best.key(self.prefer_deep_selections):
                    best = candidate
        assert best is not None, "some subset (all edges) always works"
        self._memo[memo_key] = best
        return best

    def _build_candidate(self, edges, bag_edges, chi_set):
        rest = [e for e in edges if e not in bag_edges]
        chi = _ordered_vars(bag_edges, self.vertex_order)
        width = self._bag_width(chi, bag_edges)
        cost = self._bag_cost(chi, bag_edges)
        icost = self._bag_icost(bag_edges)
        max_width = width
        sel_depth = 0
        sel_count = sum(1 for e in bag_edges
                        if e.index in self.selection_edges)
        n_bags = 1
        children = []
        for component in self.hypergraph.connected_components(
                rest, separator=chi_set):
            comp_indexes = frozenset(e.index for e in component)
            comp_vars = frozenset().union(*[e.varset for e in component])
            child_interface = comp_vars & chi_set
            child = self._solve(comp_indexes, child_interface)
            children.append(child.node)
            max_width = max(max_width, child.max_width)
            cost += child.cost
            icost += child.icost
            # Every selection node of the child subtree sinks one level.
            sel_depth += child.sel_depth + child.sel_count
            sel_count += child.sel_count
            n_bags += child.n_bags
        node = GHDNode(chi, list(bag_edges), children)
        return _Scored(node, max_width, cost, sel_depth, sel_count, n_bags,
                       icost)


def decompose(hypergraph, sizes=None, selected_vars=(), selection_edges=(),
              prefer_deep_selections=True, use_ghd=True,
              size_fallback=None):
    """Select the query plan GHD for a hypergraph.

    Parameters
    ----------
    sizes:
        Dict mapping edge index → relation cardinality for cost estimates.
    selected_vars / selection_edges:
        Attributes bound by constants and the atoms that bind them, for
        the Appendix B.1.1 selection-aware search.
    prefer_deep_selections:
        Step 3 of B.1.1 — sink selections toward the leaves so they run
        early in the bottom-up pass.  Disabling this is the Table 13
        "-GHD" ablation.
    use_ghd:
        ``False`` returns the single-node GHD (the Table 8 "-GHD"
        ablation and the LogicBlox-style plan).
    size_fallback:
        Callback invoked (once, after the search) with the number of
        edges that had to be costed at the symbolic :data:`DEFAULT_SIZE`
        because ``sizes`` had no entry for them.  Not called when every
        edge had a real cardinality.
    """
    if not use_ghd or hypergraph.n_edges <= 1:
        return single_node_ghd(hypergraph)
    search = GHDSearch(hypergraph, sizes=sizes, selected_vars=selected_vars,
                       selection_edges=selection_edges,
                       prefer_deep_selections=prefer_deep_selections)
    best = search.best()
    if size_fallback is not None and search.default_size_uses:
        size_fallback(search.default_size_uses)
    return best


def push_selections_into_bags(ghd, selection_edges):
    """Duplicate selection atoms into every bag that covers their
    variables (Appendix B.1.1 step 2).

    Adding an edge to λ(v) when its variables are already inside χ(v)
    preserves all three GHD properties while letting every bag apply the
    selection's filter during its own generic join.
    """
    selection_edges = list(selection_edges)
    for node in ghd.nodes_preorder():
        for edge in selection_edges:
            if edge.varset <= node.chi_set \
                    and all(e.index != edge.index for e in node.edges):
                node.edges.append(edge)
    return ghd


def all_decompositions(hypergraph, limit=200000):
    """Exhaustively generate valid GHDs (for tests on small queries).

    Yields every decomposition the recursive construction can produce, up
    to ``limit`` total.  Unlike :func:`decompose` this keeps *all*
    alternatives instead of the DP optimum.
    """
    budget = [limit]

    def rec(edge_indexes, interface):
        edges = [e for e in hypergraph.edges if e.index in edge_indexes]
        for size in range(1, len(edges) + 1):
            for subset in combinations(edges, size):
                if budget[0] <= 0:
                    return
                chi_set = frozenset().union(*[e.varset for e in subset])
                if not interface <= chi_set:
                    continue
                rest = [e for e in edges if e not in subset]
                chi = _ordered_vars(subset, hypergraph.vertices)
                components = hypergraph.connected_components(
                    rest, separator=chi_set)
                if not components:
                    budget[0] -= 1
                    yield GHDNode(chi, list(subset))
                    continue
                child_options = []
                for component in components:
                    comp_indexes = frozenset(e.index for e in component)
                    comp_vars = frozenset().union(
                        *[e.varset for e in component])
                    options = list(rec(comp_indexes, comp_vars & chi_set))
                    child_options.append(options)
                for combo in _product(child_options):
                    if budget[0] <= 0:
                        return
                    budget[0] -= 1
                    yield GHDNode(chi, list(subset), list(combo))

    for root in rec(frozenset(e.index for e in hypergraph.edges),
                    frozenset()):
        yield GHD(root, hypergraph)


def _product(option_lists):
    """Cartesian product of child alternatives (itertools.product over
    lists of nodes, kept explicit for the budget-bounded generator)."""
    if not option_lists:
        yield ()
        return
    head, *tail = option_lists
    for item in head:
        for rest in _product(tail):
            yield (item,) + rest
