"""Redundant-work elimination across GHD nodes (paper Appendix B.2).

Two GHD nodes produce equivalent bottom-up results when they join the
same relations with the same pattern, apply the same selections,
projections and aggregations, and their subtrees are themselves
equivalent.  The Barbell query is the paper's example: both triangle
bags compute the *same* set of triangles, so one evaluation suffices
(a 2x win).  This module computes structural signatures the executor
uses as a memo key.

Edge identity defaults to ``edge.relation`` (the bare atom name); pass
``edge_names`` — a mapping from edge index to a selection/projection-
aware name such as :attr:`repro.lir.ir.LogicalAtom.sig_name` — so two
atoms over the same relation but with *different* constant filters
(``R(x,1)`` vs ``R(x,2)``) never alias.  The executor always provides
it; the default keeps the bare-name behavior for standalone use.

The top-down pass of Yannakakis can likewise be skipped when every head
attribute already appears in the root bag — the second B.2 optimization.
"""


def _edge_name(edge, edge_names):
    if edge_names is None:
        return edge.relation
    return edge_names.get(edge.index, edge.relation)


def _canonical_pattern(edges, chi, out_attrs, edge_names=None):
    """Rename a bag's attributes by first use so isomorphic bags match.

    Attribute names are replaced with dense indexes in order of first
    appearance across the (sorted) edge list, which makes e.g.
    ``R(x,y),S(y,z),T(x,z)`` and ``R(x',y'),S(y',z'),T(x',z')`` hash
    identically while keeping genuinely different patterns apart.
    """
    rename = {}

    def index_of(attr):
        if attr not in rename:
            rename[attr] = len(rename)
        return rename[attr]

    edge_sigs = []
    for edge in sorted(edges, key=lambda e: (_edge_name(e, edge_names),
                                             e.variables)):
        edge_sigs.append((_edge_name(edge, edge_names),
                          tuple(index_of(v) for v in edge.variables)))
    chi_sig = tuple(sorted(index_of(v) for v in chi if v in rename))
    out_sig = tuple(sorted(index_of(v) for v in out_attrs if v in rename))
    return (tuple(edge_sigs), chi_sig, out_sig)


def bag_signature(node, out_attrs, child_signatures, aggregation_sig=None,
                  edge_names=None):
    """Structural signature of one bag's bottom-up result.

    Parameters
    ----------
    node:
        The :class:`~repro.ghd.ghd.GHDNode`.
    out_attrs:
        The attributes this bag's result retains.
    child_signatures:
        Signatures of the children's results (order-insensitive).
    aggregation_sig:
        Hashable description of the rule's aggregation as it applies to
        this bag (op + which attributes are aggregated away).
    edge_names:
        Optional ``{edge index: name}`` override giving each edge a
        selection/projection-aware identity (see the module docstring).
    """
    return (_canonical_pattern(node.edges, node.chi, out_attrs,
                               edge_names=edge_names),
            tuple(sorted(map(repr, child_signatures))),
            aggregation_sig)


def canonical_attr_indexes(edges, attrs, edge_names=None):
    """Canonical index of each attribute under the bag's renaming.

    Two bags with equal :func:`bag_signature` may still list their output
    attributes in different positions; the executor uses these indexes to
    permute a memoized bag result's columns onto the reusing bag's
    attribute names.  Must be called with the same ``edge_names`` the
    signature was built with (both sort edges by the same identity).
    """
    rename = {}
    for edge in sorted(edges, key=lambda e: (_edge_name(e, edge_names),
                                             e.variables)):
        for variable in edge.variables:
            if variable not in rename:
                rename[variable] = len(rename)
    return tuple(rename[a] for a in attrs)


def can_skip_top_down(ghd, head_vars, root_out_attrs):
    """True when the root's retained attributes already contain every
    head attribute — then the bottom-up pass alone yields the answer."""
    del ghd  # signature kept symmetric with the paper's description
    return frozenset(head_vars) <= frozenset(root_out_attrs)
