"""Generalized hypertree decompositions (paper §3.1, Definition 1).

A GHD is a tree whose nodes ("bags") each carry a set of attributes
``χ(v)`` and a set of hyperedges ``λ(v)``.  It replaces relational
algebra as EmptyHeaded's logical query plan: each bag is evaluated with
the generic worst-case optimal join, and Yannakakis' algorithm stitches
the bags together.
"""

from .agm import rho_star


class GHDNode:
    """One bag of a GHD.

    Attributes
    ----------
    chi:
        ``χ(v)`` — attributes retained at this node, as an *ordered*
        tuple (order is refined later into the evaluation order).
    edges:
        ``λ(v)`` — the :class:`~repro.query.hypergraph.HyperEdge` objects
        joined at this node.
    children:
        Child :class:`GHDNode` objects.
    """

    def __init__(self, chi, edges, children=()):
        self.chi = tuple(chi)
        self.edges = list(edges)
        self.children = list(children)

    @property
    def chi_set(self):
        """``χ(v)`` as a frozenset."""
        return frozenset(self.chi)

    def width(self):
        """Fractional cover number of ``χ(v)`` using ``λ(v)``'s edges."""
        return rho_star(self.chi, [e.varset for e in self.edges])

    def __repr__(self):
        return "GHDNode(chi=%s, lambda=[%s], %d children)" % (
            list(self.chi), ", ".join(str(e) for e in self.edges),
            len(self.children))


class GHD:
    """A rooted GHD over a query hypergraph."""

    def __init__(self, root, hypergraph):
        self.root = root
        self.hypergraph = hypergraph

    # -- traversal ----------------------------------------------------------

    def nodes_preorder(self):
        """Nodes in pre-order (root first) — also the order that defines
        the global attribute ordering (paper §3.2)."""
        out = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def nodes_bottom_up(self):
        """Nodes in reverse level order (children before parents), as
        Yannakakis' bottom-up pass requires."""
        order = []
        frontier = [self.root]
        while frontier:
            order.extend(frontier)
            frontier = [c for node in frontier for c in node.children]
        return list(reversed(order))

    def parent_map(self):
        """Dict mapping each node to its parent (root maps to ``None``)."""
        parents = {id(self.root): None}
        by_id = {id(self.root): self.root}
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                parents[id(child)] = node
                by_id[id(child)] = child
                stack.append(child)
        return {by_id[k]: v for k, v in parents.items()}

    @property
    def n_nodes(self):
        """Number of bags in the decomposition."""
        return len(self.nodes_preorder())

    def width(self):
        """The decomposition's (fractional) width: max bag width."""
        return max(node.width() for node in self.nodes_preorder())

    def depth_of(self, predicate):
        """Max root-distance of nodes satisfying ``predicate`` (or -1)."""
        best = -1
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if predicate(node):
                best = max(best, depth)
            stack.extend((c, depth + 1) for c in node.children)
        return best

    # -- validity (Definition 1) ---------------------------------------------

    def validate(self):
        """Check the three GHD properties of Definition 1.

        Returns a list of violation strings; empty means valid.
        """
        problems = []
        nodes = self.nodes_preorder()
        # Property 1: every hyperedge is contained in some bag that also
        # lists it in λ.
        for edge in self.hypergraph.edges:
            if not any(edge.varset <= node.chi_set
                       and any(e.index == edge.index for e in node.edges)
                       for node in nodes):
                problems.append("edge %s not covered by any bag" % edge)
        # Property 2: running intersection — for each attribute, the bags
        # containing it form a connected subtree.
        parents = self.parent_map()
        for vertex in self.hypergraph.vertices:
            holders = [n for n in nodes if vertex in n.chi_set]
            if len(holders) <= 1:
                continue
            # The subtree is connected iff exactly one holder's parent is
            # not itself a holder (that one is the subtree's top).
            holder_ids = {id(n) for n in holders}
            tops = [n for n in holders
                    if parents[n] is None or id(parents[n]) not in holder_ids]
            if len(tops) != 1:
                problems.append(
                    "attribute %r violates the running intersection "
                    "property (%d disconnected groups)" % (vertex, len(tops)))
        # Property 3: χ(v) ⊆ ∪λ(v).
        for node in nodes:
            available = set()
            for edge in node.edges:
                available |= edge.varset
            if not node.chi_set <= available:
                problems.append(
                    "bag %s retains attributes not provided by its "
                    "relations: %s" % (node, node.chi_set - available))
        return problems

    def is_valid(self):
        """True when all three Definition 1 properties hold."""
        return not self.validate()

    def describe(self, indent=0, node=None):
        """Human-readable tree rendering for ``explain`` output."""
        node = self.root if node is None else node
        lines = ["%s- chi=(%s) lambda=[%s] width=%.2f" % (
            "  " * indent, ",".join(node.chi),
            ", ".join(str(e) for e in node.edges), node.width())]
        for child in node.children:
            lines.extend(self.describe(indent + 1, child))
        return lines

    def __str__(self):
        return "\n".join(self.describe())


def single_node_ghd(hypergraph, chi_order=None):
    """The trivial one-bag GHD: the plan LogicBlox-style engines run
    (paper Figure 3b) and the "-GHD" ablation's plan."""
    chi = chi_order if chi_order is not None else hypergraph.vertices
    return GHD(GHDNode(chi, list(hypergraph.edges)), hypergraph)


def ghd_shape(ghd):
    """Pure-data description of a GHD's tree: nested ``(chi, edge
    indexes, children)`` tuples.  Hashable, holds no edge objects, and
    survives later in-place mutation of the live tree (selection
    pushdown appends to ``node.edges``) — the replayable currency of
    the optimizer's banded plan memo."""
    def rec(node):
        return (node.chi, tuple(e.index for e in node.edges),
                tuple(rec(c) for c in node.children))
    return rec(ghd.root)


def replay_shape(shape, hypergraph):
    """Rebuild a :class:`GHD` from :func:`ghd_shape` output over a fresh
    hypergraph with the same edge indexing."""
    by_index = {e.index: e for e in hypergraph.edges}

    def rec(node_shape):
        chi, indexes, children = node_shape
        return GHDNode(chi, [by_index[i] for i in indexes],
                       [rec(c) for c in children])
    return GHD(rec(shape), hypergraph)
