"""AGM bounds and fractional covers (paper §2.1).

The AGM bound of Atserias, Grohe, and Marx upper-bounds a join's output by
``∏ |R_e|^{x_e}`` for any *feasible* fractional edge cover ``x``.  The
best bound is found by a linear program (footnote 3 of the paper): take
logs and minimize ``Σ x_e · log |R_e|`` subject to covering every vertex.
The GHD optimizer prices every candidate bag with this LP.
"""

import math
from functools import lru_cache

import numpy as np
from scipy.optimize import linprog


def fractional_cover(vertices, edge_varsets, log_sizes=None):
    """Solve the fractional-cover LP.

    Parameters
    ----------
    vertices:
        Iterable of vertex names that must be covered.
    edge_varsets:
        One set of vertex names per hyperedge.
    log_sizes:
        Per-edge objective weights (``log |R_e|``); uniform 1.0 when
        omitted, in which case the optimum is the fractional edge cover
        number ρ* (the exponent of ``N`` in the bound).

    Returns
    -------
    (value, weights):
        The LP optimum and the per-edge cover weights.  ``value`` is
        ``+inf`` when some vertex is not covered by any edge.
    """
    vertices = list(vertices)
    edge_varsets = [frozenset(e) for e in edge_varsets]
    if not vertices:
        return 0.0, [0.0] * len(edge_varsets)
    if log_sizes is None:
        log_sizes = [1.0] * len(edge_varsets)
    covered = set().union(*edge_varsets) if edge_varsets else set()
    if not set(vertices) <= covered:
        return math.inf, [0.0] * len(edge_varsets)
    # One constraint per vertex: -Σ_{e∋v} x_e ≤ -1  (i.e. coverage ≥ 1).
    n_edges = len(edge_varsets)
    matrix = np.zeros((len(vertices), n_edges))
    for row, vertex in enumerate(vertices):
        for col, varset in enumerate(edge_varsets):
            if vertex in varset:
                matrix[row, col] = -1.0
    result = linprog(c=np.asarray(log_sizes, dtype=float),
                     A_ub=matrix, b_ub=-np.ones(len(vertices)),
                     bounds=[(0, None)] * n_edges, method="highs")
    if not result.success:
        raise RuntimeError("fractional cover LP failed: %s" % result.message)
    return float(result.fun), [float(x) for x in result.x]


@lru_cache(maxsize=4096)
def _cached_rho_star(vertices_key, edges_key):
    value, _ = fractional_cover(vertices_key, edges_key)
    return value


def rho_star(vertices, edge_varsets):
    """Fractional edge cover number ρ* of ``vertices`` using the edges.

    This is the bag width used by the GHD optimizer: with all relations of
    size ``N``, a bag of width ``w`` costs ``O(N^w)``.  Cached — the GHD
    search asks for the same bags repeatedly.
    """
    vertices_key = tuple(sorted(set(vertices)))
    edges_key = tuple(sorted(frozenset(e) for e in edge_varsets))
    return _cached_rho_star(vertices_key, edges_key)


def agm_bound(edge_varsets, sizes):
    """The numeric AGM bound ``min_x ∏ |R_e|^{x_e}`` for a full join.

    ``sizes`` is one cardinality per edge.  Edges of size 0 make the
    bound 0; size-1 edges contribute nothing to the objective.  Cached
    on (edge structure, integer sizes): the GHD search and recursive
    queries price the same bags over and over.
    """
    if any(s == 0 for s in sizes):
        return 0.0
    return _cached_agm_bound(
        tuple(frozenset(e) for e in edge_varsets),
        tuple(int(s) for s in sizes))


@lru_cache(maxsize=16384)
def _cached_agm_bound(edges_key, sizes_key):
    vertices = sorted(set().union(*edges_key)) if edges_key else []
    log_sizes = [math.log(max(s, 1)) for s in sizes_key]
    value, _ = fractional_cover(vertices, list(edges_key), log_sizes)
    if value == math.inf:
        return math.inf
    return math.exp(value)


def is_feasible_cover(edge_varsets, weights, vertices=None):
    """Check AGM feasibility: every vertex covered with total weight ≥ 1.

    Used by the property-based tests that verify Equation 1 of the paper
    against actual join outputs.
    """
    edge_varsets = [frozenset(e) for e in edge_varsets]
    if vertices is None:
        vertices = set().union(*edge_varsets) if edge_varsets else set()
    if any(w < 0 for w in weights):
        return False
    for vertex in vertices:
        total = sum(w for e, w in zip(edge_varsets, weights) if vertex in e)
        if total < 1.0 - 1e-9:
            return False
    return True


def cover_bound_value(sizes, weights):
    """Evaluate ``∏ sizes[e]^{weights[e]}`` for a given cover."""
    bound = 1.0
    for size, weight in zip(sizes, weights):
        bound *= max(size, 0) ** weight
    return bound
