"""GHD query compiler: AGM bounds, decomposition search, attribute order."""

from .agm import (agm_bound, cover_bound_value, fractional_cover,
                  is_feasible_cover, rho_star)
from .attribute_order import bag_evaluation_order, global_attribute_order
from .decompose import (GHDSearch, all_decompositions, decompose,
                        push_selections_into_bags)
from .equivalence import bag_signature, can_skip_top_down
from .ghd import GHD, GHDNode, single_node_ghd

__all__ = [
    "agm_bound", "cover_bound_value", "fractional_cover",
    "is_feasible_cover", "rho_star",
    "bag_evaluation_order", "global_attribute_order",
    "GHDSearch", "all_decompositions", "decompose",
    "push_selections_into_bags",
    "bag_signature", "can_skip_top_down",
    "GHD", "GHDNode", "single_node_ghd",
]
