"""Graph pattern queries from the paper (Table 1 and §5.3).

All queries are expressed over a single symmetric ``Edge`` relation, the
form the benchmarks use.  Each helper returns the count through the full
EmptyHeaded pipeline; the raw query strings are exported for tests and
for the ablation benchmarks that need to run them under several engine
configurations.
"""

#: Triangle listing (K3) — Table 1's flagship pattern.
TRIANGLE = "Triangle(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z)."

#: Triangle counting — the §5.2.1 benchmark.
TRIANGLE_COUNT = ("TriangleCount(;w:long) :- Edge(x,y),Edge(y,z),"
                  "Edge(x,z); w=<<COUNT(*)>>.")

#: 4-clique counting (K4, §5.3).
FOUR_CLIQUE_COUNT = ("FourCliqueCount(;w:long) :- Edge(x,y),Edge(y,z),"
                     "Edge(x,z),Edge(x,u),Edge(y,u),Edge(z,u); "
                     "w=<<COUNT(*)>>.")

#: Lollipop counting (L_{3,1}): a triangle with a one-edge tail (§5.3).
LOLLIPOP_COUNT = ("LollipopCount(;w:long) :- Edge(x,y),Edge(y,z),"
                  "Edge(x,z),Edge(x,u); w=<<COUNT(*)>>.")

#: Barbell counting (B_{3,1}): two triangles joined by one edge (§5.3).
BARBELL_COUNT = ("BarbellCount(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),"
                 "Edge(x,p),Edge(p,q),Edge(q,r),Edge(p,r); "
                 "w=<<COUNT(*)>>.")


def selection_four_clique_count(node):
    """SK4 (Appendix B.1.2): 4-cliques containing a selected node."""
    return ("SK4(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,u),"
            "Edge(y,u),Edge(z,u),Edge(x,%s); w=<<COUNT(*)>>."
            % _literal(node))


def selection_barbell_count(node):
    """SB_{3,1} (Appendix B.1.2): triangle pairs through a selected node."""
    return ("SB(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,%s),"
            "Edge(%s,u),Edge(u,v),Edge(v,t),Edge(u,t); w=<<COUNT(*)>>."
            % (_literal(node), _literal(node)))


def _literal(node):
    if isinstance(node, str):
        return "'%s'" % node
    return str(node)


#: Named count queries used by the Table 8 micro-benchmarks.
PATTERN_QUERIES = {
    "triangle": TRIANGLE_COUNT,
    "four_clique": FOUR_CLIQUE_COUNT,
    "lollipop": LOLLIPOP_COUNT,
    "barbell": BARBELL_COUNT,
}


def triangle_count(db):
    """Triangle count through the engine; the Edge relation should be
    symmetrically filtered for the standard benchmark setting."""
    return db.query(TRIANGLE_COUNT).scalar


def four_clique_count(db):
    """4-clique count (K4)."""
    return db.query(FOUR_CLIQUE_COUNT).scalar


def lollipop_count(db):
    """Lollipop count (L_{3,1}); runs on undirected (unpruned) edges."""
    return db.query(LOLLIPOP_COUNT).scalar


def barbell_count(db):
    """Barbell count (B_{3,1}); runs on undirected (unpruned) edges."""
    return db.query(BARBELL_COUNT).scalar
