"""Edge preprocessing: symmetric filtering and (un)directing (§5.2.1).

Symmetric pattern queries (triangle, 4-clique) on undirected graphs
produce each match once per automorphism; the standard mitigation the
paper adopts [Schank & Wagner] prunes each undirected edge to a single
direction ``src_id < dst_id`` with ids assigned by descending degree, so
every clique is enumerated exactly once and intersected sets stay small.
"""

import numpy as np


def undirect(edges):
    """Both directions of every edge, deduplicated (the paper's
    "undirected versions" used by PageRank/SSSP/Lollipop/Barbell)."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    both = np.concatenate([edges, edges[:, ::-1]])
    both = both[both[:, 0] != both[:, 1]]
    return np.unique(both, axis=0)


def symmetric_filter(edges):
    """Keep one direction per undirected edge: ``src < dst``.

    Assumes ids are already assigned in the desired order (degree
    ordering makes this the paper's standard pruning).
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    pruned = np.stack([lo, hi], axis=1)
    pruned = pruned[lo != hi]
    return np.unique(pruned, axis=0)


def degrees(edges, n_nodes=None):
    """Undirected degree per node id."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if n_nodes is None:
        n_nodes = int(edges.max()) + 1 if edges.size else 0
    out = np.zeros(n_nodes, dtype=np.int64)
    np.add.at(out, edges[:, 0], 1)
    np.add.at(out, edges[:, 1], 1)
    return out


def neighborhoods(edges, n_nodes=None):
    """Sorted adjacency array per node for an undirected edge array.

    Used by the skew statistics (Table 3's density-skew column and
    Table 14's cardinality/range profile).
    """
    both = undirect(edges)
    if n_nodes is None:
        n_nodes = int(both.max()) + 1 if both.size else 0
    order = np.lexsort((both[:, 1], both[:, 0]))
    both = both[order]
    starts = np.searchsorted(both[:, 0], np.arange(n_nodes))
    bounds = np.append(starts, both.shape[0])
    return [both[bounds[i]:bounds[i + 1], 1] for i in range(n_nodes)]


def highest_degree_node(edges):
    """Node id with the maximum undirected degree — the paper's SSSP
    source selection ("the highest degree node in the undirected
    version of the graph")."""
    degree = degrees(edges)
    return int(np.argmax(degree))
