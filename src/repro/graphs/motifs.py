"""Motif query builders: datalog generators for pattern families.

The paper's benchmark patterns (triangle, 4-clique, lollipop, barbell)
are instances of families this module generates for any size: cliques
``K_k``, cycles ``C_k``, paths ``P_k``, stars ``S_k``, and the
lollipop/barbell generalizations ``L_{k,1}`` / ``B_{k,1}``.  Queries are
produced in the engine's language over a single ``Edge`` relation, so
downstream users can count or list any of these motifs in one call.
"""

import itertools

from ..errors import PlanError

#: Variable name pool for generated queries.
_VARS = ("a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l",
         "m", "n", "o", "p", "q", "r", "s", "t", "u", "v", "w")


def _edges_to_body(edge_pairs):
    return ",".join("Edge(%s,%s)" % pair for pair in edge_pairs)


def _count_query(name, edge_pairs):
    return "%s(;w:long) :- %s; w=<<COUNT(*)>>." % (
        name, _edges_to_body(edge_pairs))


def _listing_query(name, variables, edge_pairs):
    return "%s(%s) :- %s." % (name, ",".join(variables),
                              _edges_to_body(edge_pairs))


def _take_vars(count):
    if count > len(_VARS):
        raise PlanError("motif too large: %d variables (max %d)"
                        % (count, len(_VARS)))
    return _VARS[:count]


def clique(k, count=True):
    """``K_k``: every pair of ``k`` vertices adjacent.

    On symmetrically filtered (pruned) edges each clique is counted
    exactly once; on undirected edges, once per automorphism (``k!``).
    """
    if k < 2:
        raise PlanError("a clique needs at least 2 vertices")
    variables = _take_vars(k)
    pairs = list(itertools.combinations(variables, 2))
    name = "K%d" % k
    return _count_query(name, pairs) if count \
        else _listing_query(name, variables, pairs)


def cycle(k, count=True):
    """``C_k``: a closed walk over ``k`` distinct positions."""
    if k < 3:
        raise PlanError("a cycle needs at least 3 vertices")
    variables = _take_vars(k)
    pairs = [(variables[i], variables[(i + 1) % k]) for i in range(k)]
    name = "C%d" % k
    return _count_query(name, pairs) if count \
        else _listing_query(name, variables, pairs)


def path(k, count=True):
    """``P_k``: a walk over ``k`` vertices (``k-1`` edges)."""
    if k < 2:
        raise PlanError("a path needs at least 2 vertices")
    variables = _take_vars(k)
    pairs = [(variables[i], variables[i + 1]) for i in range(k - 1)]
    name = "P%d" % k
    return _count_query(name, pairs) if count \
        else _listing_query(name, variables, pairs)


def star(k, count=True):
    """``S_k``: a hub adjacent to ``k`` leaves (ordered leaves)."""
    if k < 1:
        raise PlanError("a star needs at least one leaf")
    variables = _take_vars(k + 1)
    hub, leaves = variables[0], variables[1:]
    pairs = [(hub, leaf) for leaf in leaves]
    name = "S%d" % k
    return _count_query(name, pairs) if count \
        else _listing_query(name, variables, pairs)


def lollipop(k, count=True):
    """``L_{k,1}``: a ``K_k`` with one extra edge off its first vertex —
    the paper's L_{3,1} generalized."""
    variables = _take_vars(k + 1)
    body_vars = variables[:k]
    tail = variables[k]
    pairs = list(itertools.combinations(body_vars, 2)) \
        + [(body_vars[0], tail)]
    name = "L%d_1" % k
    return _count_query(name, pairs) if count \
        else _listing_query(name, variables, pairs)


def barbell(k, count=True):
    """``B_{k,1}``: two ``K_k``s joined by one bridge edge — the paper's
    B_{3,1} generalized.  The GHD optimizer decomposes this into two
    clique bags plus the bridge (Figure 3c)."""
    variables = _take_vars(2 * k)
    left, right = variables[:k], variables[k:]
    pairs = list(itertools.combinations(left, 2)) \
        + [(left[0], right[0])] \
        + list(itertools.combinations(right, 2))
    name = "B%d_1" % k
    return _count_query(name, pairs) if count \
        else _listing_query(name, variables, pairs)


def count_motif(db, query_text):
    """Run a generated count query; returns the (ordered) motif count."""
    return db.query(query_text).scalar


#: The paper's Table 1/§5.3 patterns expressed through the generators.
PAPER_MOTIFS = {
    "triangle": clique(3),
    "four_clique": clique(4),
    "lollipop": lollipop(3),
    "barbell": barbell(3),
}
