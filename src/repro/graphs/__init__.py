"""Graph workload substrate: datasets, pruning, patterns, analytics."""

from .analytics import (pagerank, pagerank_program, run_pagerank_on_edges,
                        run_sssp_on_edges, sssp, sssp_program)
from .datasets import (DATASETS, MICRO_DATASETS, DatasetSpec,
                       chung_lu_graph, complete_graph, load_dataset,
                       read_edgelist, rmat_graph, set_with_dense_region,
                       synthetic_set, uniform_graph)
from .motifs import (PAPER_MOTIFS, barbell, clique, count_motif,
                     cycle, lollipop, path, star)
from .patterns import (BARBELL_COUNT, FOUR_CLIQUE_COUNT, LOLLIPOP_COUNT,
                       PATTERN_QUERIES, TRIANGLE, TRIANGLE_COUNT,
                       barbell_count, four_clique_count, lollipop_count,
                       selection_barbell_count,
                       selection_four_clique_count, triangle_count)
from .pruning import (degrees, highest_degree_node, neighborhoods,
                      symmetric_filter, undirect)

__all__ = [
    "pagerank", "pagerank_program", "run_pagerank_on_edges",
    "run_sssp_on_edges", "sssp", "sssp_program",
    "DATASETS", "MICRO_DATASETS", "DatasetSpec", "chung_lu_graph",
    "complete_graph", "load_dataset", "read_edgelist", "rmat_graph",
    "set_with_dense_region", "synthetic_set", "uniform_graph",
    "PAPER_MOTIFS", "barbell", "clique", "count_motif", "cycle",
    "lollipop", "path", "star",
    "BARBELL_COUNT", "FOUR_CLIQUE_COUNT", "LOLLIPOP_COUNT",
    "PATTERN_QUERIES", "TRIANGLE", "TRIANGLE_COUNT", "barbell_count",
    "four_clique_count", "lollipop_count", "selection_barbell_count",
    "selection_four_clique_count", "triangle_count",
    "degrees", "highest_degree_node", "neighborhoods", "symmetric_filter",
    "undirect",
]
