"""Synthetic graph datasets: scaled-down analogs of the paper's Table 3.

The paper evaluates on six real social/citation graphs (Google+, Higgs,
LiveJournal, Orkut, Patents, Twitter).  Those inputs are not available
offline, so this module generates seeded synthetic graphs whose *density
skew* — the property that drives every layout/ordering effect the paper
measures — matches each dataset's character: Google+ is small with very
heavy hubs (high skew), Patents is sparse and homogeneous (low skew),
Twitter is the largest with moderate skew, and so on.  Generation uses
the Chung–Lu model (edge probability proportional to the product of
power-law weights), which reproduces heavy-tailed degree distributions
with controllable exponents, plus an RMAT-style recursive generator used
by the ordering experiments.

Every generator is deterministic given its seed, so benchmark runs are
reproducible.
"""

from dataclasses import dataclass

import numpy as np


def chung_lu_graph(n_nodes, n_edges, exponent=2.5, seed=0):
    """Power-law graph via the Chung–Lu model.

    Node ``i`` gets weight ``(i + 1)^(-1/(exponent-1))``; edges sample
    both endpoints proportionally to weight, rejecting self-loops and
    duplicates.  Lower ``exponent`` ⇒ heavier hubs ⇒ more density skew.

    Returns a sorted, duplicate-free ``(m, 2)`` int64 array of undirected
    edges with ``src < dst``.
    """
    rng = np.random.default_rng(seed)
    weights = np.power(np.arange(1, n_nodes + 1, dtype=np.float64),
                       -1.0 / max(exponent - 1.0, 0.05))
    probabilities = weights / weights.sum()
    edges = set()
    attempts = 0
    max_attempts = 60 * n_edges
    while len(edges) < n_edges and attempts < max_attempts:
        budget = (n_edges - len(edges)) * 2 + 16
        sources = rng.choice(n_nodes, size=budget, p=probabilities)
        targets = rng.choice(n_nodes, size=budget, p=probabilities)
        for u, v in zip(sources.tolist(), targets.tolist()):
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            edges.add(edge)
            if len(edges) >= n_edges:
                break
        attempts += budget
    return np.asarray(sorted(edges), dtype=np.int64).reshape(-1, 2)


def rmat_graph(scale, n_edges, a=0.57, b=0.19, c=0.19, seed=0):
    """RMAT recursive-matrix generator (Graph500-style parameters).

    Produces ``2**scale`` nodes; skew grows with ``a``.  Returns a
    deduplicated undirected edge array with ``src < dst``.
    """
    rng = np.random.default_rng(seed)
    n_nodes = 2 ** scale
    edges = set()
    max_rounds = 50
    for _ in range(max_rounds):
        need = n_edges - len(edges)
        if need <= 0:
            break
        sources = np.zeros(2 * need, dtype=np.int64)
        targets = np.zeros(2 * need, dtype=np.int64)
        for bit in range(scale):
            r = rng.random(2 * need)
            # Quadrant choice: a | b / c | d.
            right = r >= a + b
            down = ((r >= a) & (r < a + b)) | (r >= a + b + c)
            sources |= (right.astype(np.int64) << bit)
            targets |= (down.astype(np.int64) << bit)
        for u, v in zip(sources.tolist(), targets.tolist()):
            if u == v:
                continue
            edges.add((u, v) if u < v else (v, u))
            if len(edges) >= n_edges:
                break
    return np.asarray(sorted(edges), dtype=np.int64).reshape(-1, 2)


def uniform_graph(n_nodes, n_edges, seed=0):
    """Erdős–Rényi-style uniform random graph (no skew baseline)."""
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < n_edges:
        need = (n_edges - len(edges)) * 2 + 8
        pairs = rng.integers(0, n_nodes, size=(need, 2))
        for u, v in pairs.tolist():
            if u == v:
                continue
            edges.add((u, v) if u < v else (v, u))
            if len(edges) >= n_edges:
                break
    return np.asarray(sorted(edges), dtype=np.int64).reshape(-1, 2)


def complete_graph(n_nodes):
    """K_n — the AGM worst-case instance for the triangle query."""
    pairs = [(u, v) for u in range(n_nodes) for v in range(u + 1, n_nodes)]
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)


def read_edgelist(path, comment="#"):
    """Load a whitespace-separated edge list file (SNAP format)."""
    rows = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            rows.append((int(parts[0]), int(parts[1])))
    return np.asarray(rows, dtype=np.int64).reshape(-1, 2)


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one Table 3 analog."""

    name: str
    description: str
    n_nodes: int
    n_edges: int
    exponent: float
    seed: int
    skew_class: str  # "high", "modest", or "low" — the paper's wording


#: Scaled-down analogs of the paper's Table 3 datasets.  Relative sizes
#: and skew classes follow the paper: Patents is the smallest/least
#: skewed, Twitter the largest, Google+ the most skewed.
DATASETS = {
    "googleplus": DatasetSpec(
        "googleplus", "user network analog: few nodes, heavy hubs "
        "(high density skew, like Google+)", 900, 8000, 1.7, 11, "high"),
    "higgs": DatasetSpec(
        "higgs", "tweet-interaction analog (modest density skew, like "
        "Higgs)", 2200, 9000, 2.1, 12, "modest"),
    "livejournal": DatasetSpec(
        "livejournal", "user network analog (low density skew, like "
        "LiveJournal)", 5000, 16000, 3.0, 13, "low"),
    "orkut": DatasetSpec(
        "orkut", "user network analog (low density skew, like Orkut)",
        4200, 18000, 2.7, 14, "low"),
    "patents": DatasetSpec(
        "patents", "citation network analog: small and homogeneous "
        "(low density skew, like Patents)", 3500, 7000, 4.5, 15, "low"),
    "twitter": DatasetSpec(
        "twitter", "follower network analog: the largest, modest "
        "density skew (like Twitter)", 9000, 42000, 2.1, 16, "modest"),
}

#: The five datasets the paper's micro-benchmarks (Tables 4, 8–11, 13)
#: run on — everything except Twitter.
MICRO_DATASETS = ("googleplus", "higgs", "livejournal", "orkut", "patents")


def load_dataset(name):
    """Generate one Table 3 analog; returns an ``(m, 2)`` edge array."""
    spec = DATASETS[name]
    return chung_lu_graph(spec.n_nodes, spec.n_edges, spec.exponent,
                          spec.seed)


def dataset_profile(name):
    """The dataset's Table 3 row: nodes, directed/undirected edge counts,
    and measured density skew."""
    from ..sets.skew import density_skew
    from .pruning import neighborhoods

    edges = load_dataset(name)
    nodes = np.unique(edges)
    spec = DATASETS[name]
    return {
        "name": name,
        "description": spec.description,
        "nodes": int(nodes.size),
        "directed_edges": int(edges.shape[0]) * 2,
        "undirected_edges": int(edges.shape[0]),
        "density_skew": round(density_skew(neighborhoods(edges)), 3),
        "skew_class": spec.skew_class,
    }


# -- synthetic sets for the intersection micro-benchmarks --------------------


def synthetic_set(cardinality, value_range, seed=0):
    """Uniform random sorted set of ``cardinality`` values in
    ``[0, value_range)`` — the Figure 5/10/11 workload."""
    rng = np.random.default_rng(seed)
    if cardinality >= value_range:
        return np.arange(value_range, dtype=np.int64)
    values = rng.choice(value_range, size=cardinality, replace=False)
    return np.sort(values.astype(np.int64))


def set_with_dense_region(total, value_range, dense_fraction, seed=0):
    """A set that is sparse except for one dense run (Figure 6 workload).

    ``dense_fraction`` of the elements form one contiguous run; the rest
    scatter uniformly over the remaining range.
    """
    rng = np.random.default_rng(seed)
    dense_count = int(total * dense_fraction)
    sparse_count = total - dense_count
    dense_start = int(value_range * 0.6)
    dense = np.arange(dense_start, dense_start + dense_count)
    population = dense_start
    sparse_count = min(sparse_count, population)
    sparse = rng.choice(population, size=sparse_count, replace=False)
    return np.unique(np.concatenate([sparse, dense]).astype(np.int64))
