"""Graph analytics through the query language: PageRank and SSSP.

These are the paper's Table 1 programs, run verbatim through the full
pipeline (parser → GHD → engine → recursion driver).  PageRank exercises
naive recursion with a fixed iteration count and semiring SUM (a
matrix-vector product per round); SSSP exercises seminaive recursion
with the monotone MIN aggregate.
"""

from ..api import Database


def pagerank_program(iterations=5, damping=0.85):
    """The paper's three-rule PageRank program (Table 1 + Appendix A.2).

    ``InvDeg`` is materialized by an auxiliary rule (the paper assumes it
    is present in the database); ``N`` is the node count.
    """
    teleport = 1.0 - damping
    return (
        "N(;w:int) :- Edge(x,y); w=<<COUNT(x)>>.\n"
        "InvDeg(x;d:float) :- Edge(x,z); d=1/<<COUNT(z)>>.\n"
        "PageRank(x;y:float) :- Edge(x,z); y=1/N.\n"
        "PageRank(x;y:float)*[i=%d] :- Edge(x,z),PageRank(z),InvDeg(z); "
        "y=%s+%s*<<SUM(z)>>.\n" % (iterations, teleport, damping)
    )


def sssp_program(source):
    """The paper's two-rule SSSP program (Table 1)."""
    literal = "'%s'" % source if isinstance(source, str) else str(source)
    return (
        "SSSP(x;y:int) :- Edge(%s,x); y=1.\n"
        "SSSP(x;y:int)* :- Edge(w,x),SSSP(w); y=<<MIN(w)>>+1.\n" % literal
    )


def pagerank(db, iterations=5, damping=0.85):
    """Run PageRank on ``db`` (needs an undirected ``Edge`` relation).

    Returns ``{node: rank}`` with the paper's un-normalized
    ``0.15 + 0.85·Σ`` update.
    """
    result = db.query(pagerank_program(iterations, damping))
    return result.to_dict()


def sssp(db, source):
    """Run SSSP from ``source``; returns ``{node: hop distance}``.

    Per the paper's program the source's own distance is derived through
    its neighbors (typically 2), and only reachable nodes appear.
    """
    result = db.query(sssp_program(source))
    return result.to_dict()


def run_pagerank_on_edges(edges, iterations=5, **db_kwargs):
    """Convenience: load edges into a fresh database and run PageRank."""
    db = Database(**db_kwargs)
    db.load_graph("Edge", [tuple(e) for e in edges], undirected=True)
    return pagerank(db, iterations=iterations)


def run_sssp_on_edges(edges, source, **db_kwargs):
    """Convenience: load edges into a fresh database and run SSSP."""
    db = Database(**db_kwargs)
    db.load_graph("Edge", [tuple(e) for e in edges], undirected=True)
    return sssp(db, source)
