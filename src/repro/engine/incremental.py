"""Semi-naive incremental maintenance of materialized views.

``Database.materialize(name, query)`` registers a *materialized view*:
the defining program is run once, and the view's head relation stays
installed in the catalog.  Mutations (``Database.append`` / ``delete``)
mark dependent views stale; the next query (or ``Database.relation``)
refreshes them.

A refresh takes one of two routes:

**Delta route** (the point of this module).  For a single-rule,
non-recursive view whose mutated dependencies saw *insert-only*
changes, the new tuples Δ are substituted into the rule body one
position at a time against the full (already-updated) versions of the
other atoms — the semi-naive step datalog engines use, evaluated with
the very same executor machinery as ordinary rules, so every delta term
benefits from the plan cache, fused kernels, and the parallel executor.
The terms combine with the old view contents per semiring:

* set semantics (no annotation): old ∪ ⋃ᵢ eval(Δ at position i) —
  every new derivation uses at least one Δ tuple, and union is
  idempotent, so singleton terms cover everything;
* ``MIN``/``MAX``: idempotent too — fold the singleton terms into the
  old groups with ``min``/``max``;
* ``SUM``/``COUNT(*)``: additive, so overcounting matters; the terms
  run over every non-empty *subset* S of Δ positions, signed
  ``(-1)^(|S|+1)`` (inclusion–exclusion over "which atoms drew from
  Δ"), and the signed values add onto the old groups.  Rules with more
  than :data:`MAX_DELTA_POSITIONS` Δ positions fall back (the term
  count is exponential).

**Full route** (always available, always correct).  Re-run the view's
defining program.  Taken when the rule shape is not delta-capable
(multi-rule programs, recursion, ``COUNT(distinct)``, wrapped
aggregate expressions, constant annotations, 0-ary heads), when a
dependency was replaced wholesale or saw deletes/annotation rewrites,
when the journal was trimmed by a delta-store merge, or when
``EngineConfig.incremental_views`` is off.  Both routes produce
identical results — the mutation fuzzer checks them differentially.
"""

import itertools

import numpy as np

from ..errors import SchemaError
from ..query.ast import Agg, Atom, clone_rule, expression_refs
from ..storage.relation import Relation

#: Prefix for the temporary Δ relations installed during a delta term
#: evaluation (popped from the catalog before the refresh returns).
DELTA_PREFIX = "__delta__"

#: Ceiling on Δ-substituted body positions for the SUM/COUNT
#: inclusion–exclusion expansion (2^n - 1 terms).
MAX_DELTA_POSITIONS = 3


def _delta_capable(rules):
    """Whether the delta route can maintain a view with these rules."""
    if len(rules) != 1:
        return False
    rule = rules[0]
    if rule.recursive:
        return False
    if rule.annotation is None:
        # Plain materialization under set semantics; 0-ary heads carry
        # EXISTS semantics the set-union combine does not model.
        return bool(rule.head_vars)
    assignment = rule.assignment
    if not isinstance(assignment, Agg):
        # Wrapped expressions (w = <<SUM(v)>> + 1) and constant
        # annotations are not linear/idempotent in the aggregate.
        return False
    if assignment.op == "COUNT" and assignment.arg != "*":
        # COUNT(v) counts distinct v per group — not additive in Δ.
        return False
    return True


class MaterializedView:
    """One registered view: defining program, dependencies, versions."""

    def __init__(self, name, text, rules):
        self.name = name
        self.text = text
        self.rules = tuple(rules)
        heads = {rule.head_name for rule in self.rules}
        deps = set()
        for rule in self.rules:
            for atom in rule.body:
                deps.add(atom.name)
            if rule.assignment is not None:
                deps.update(expression_refs(rule.assignment))
        #: External relation names the view reads (its own rule heads
        #: excluded) — mutations to these mark the view stale.
        self.deps = frozenset(deps - heads)
        #: ``{name: (id(relation), version)}`` snapshot at last refresh.
        self.dep_versions = {}
        self.stale = False
        self.delta_capable = _delta_capable(self.rules)
        self.refreshes = 0
        self.delta_refreshes = 0

    def capture(self, catalog):
        """Snapshot dependency identities/versions after a refresh."""
        self.dep_versions = {
            name: (id(catalog[name]),
                   getattr(catalog[name], "version", 0))
            for name in self.deps if name in catalog
        }

    def __repr__(self):
        return "MaterializedView(%s, deps=%s%s)" % (
            self.name, sorted(self.deps),
            ", stale" if self.stale else "")


def mark_stale(views, name):
    """Mark every view depending on relation ``name`` stale."""
    for view in views.values():
        if name in view.deps:
            view.stale = True


def refresh_stale_views(db):
    """Refresh stale views to a fixpoint (views may feed other views)."""
    if db._refreshing:
        return
    db._refreshing = True
    try:
        # A refresh can re-stale downstream views; the dependency graph
        # is acyclic (a view's deps predate it), so |views| + 1 rounds
        # always reach the fixpoint.
        for _ in range(len(db._views) + 1):
            stale = [v for v in db._views.values() if v.stale]
            if not stale:
                return
            for view in stale:
                refresh_view(db, view)
    finally:
        db._refreshing = False


def refresh_view(db, view):
    """Bring one stale view up to date (delta route when possible)."""
    view.refreshes += 1
    view.stale = False
    if db.config.incremental_views and view.delta_capable:
        if _delta_refresh(db, view):
            view.delta_refreshes += 1
            view.capture(db.catalog)
            return
    db._query_plain(view.text)
    view.capture(db.catalog)


# -- the delta route ---------------------------------------------------------


def _pure_insert_deltas(db, view):
    """Per-dependency Δ relations, or ``None`` to force the full route.

    Valid only when every mutated dependency kept its identity and its
    journal reaches back to the snapshot with insert-only entries.
    """
    deltas = {}
    for name in view.deps:
        relation = db.catalog.get(name)
        recorded = view.dep_versions.get(name)
        if relation is None or recorded is None:
            return None
        ident, version = recorded
        if id(relation) != ident:
            return None  # replaced wholesale — no journal continuity
        if getattr(relation, "version", 0) == version:
            continue
        delta = getattr(relation, "delta", None)
        entries = None if delta is None \
            else delta.pure_inserts_since(version)
        if not entries:
            return None  # trimmed journal, deletes, or rewrites
        rows = np.concatenate([entry.data for entry in entries])
        anns = None
        if relation.annotations is not None:
            anns = np.concatenate([entry.annotations
                                   for entry in entries])
        delta_relation = Relation(DELTA_PREFIX + name, rows, anns,
                                  relation.dictionaries)
        attr_names = getattr(relation, "attr_names", None)
        if attr_names is not None:
            delta_relation.attr_names = attr_names
        deltas[name] = delta_relation
    return deltas


def _term_rule(rule, positions_in_delta):
    """The rule with the atoms at ``positions_in_delta`` pointing at Δ."""
    body = tuple(
        Atom(DELTA_PREFIX + atom.name, atom.terms)
        if index in positions_in_delta else atom
        for index, atom in enumerate(rule.body))
    return clone_rule(rule, head_name=DELTA_PREFIX + rule.head_name,
                      body=body, recursive=False, iterations=None)


def _delta_refresh(db, view):
    """Try the delta route; ``True`` on success, ``False`` to fall back."""
    rule = view.rules[0]
    old = db.catalog.get(view.name)
    if old is None:
        return False
    deltas = _pure_insert_deltas(db, view)
    if deltas is None:
        return False
    positions = [index for index, atom in enumerate(rule.body)
                 if atom.name in deltas]
    if not positions:
        return True  # spuriously stale — nothing actually changed
    op = rule.assignment.op if isinstance(rule.assignment, Agg) else None
    additive = op in ("SUM", "COUNT")
    if additive and len(positions) > MAX_DELTA_POSITIONS:
        return False
    if additive:
        subsets = [
            (frozenset(subset), -1.0 if (size % 2) == 0 else 1.0)
            for size in range(1, len(positions) + 1)
            for subset in itertools.combinations(positions, size)
        ]
    else:
        # Idempotent combines: singleton terms cover every new
        # derivation, overcounting is harmless.
        subsets = [(frozenset([p]), 1.0) for p in positions]
    installed = []
    try:
        for name, delta_relation in deltas.items():
            db.catalog[DELTA_PREFIX + name] = delta_relation
            installed.append(delta_relation)
        signed_terms = []
        for subset, sign in subsets:
            result = db._executor.execute(_term_rule(rule, subset))
            signed_terms.append((sign, result))
    finally:
        for delta_relation in installed:
            db.catalog.pop(delta_relation.name, None)
            db._trie_cache.invalidate(delta_relation)
    combined = _combine(old, rule, signed_terms)
    combined.dictionaries = old.dictionaries
    if getattr(old, "attr_names", None) is not None:
        combined.attr_names = old.attr_names
    db._install(view.name, combined)
    return True


def _combine(old, rule, signed_terms):
    """Fold the signed delta terms into the old view contents."""
    op = rule.assignment.op if isinstance(rule.assignment, Agg) else None
    if rule.annotation is not None and not rule.head_vars:
        return _combine_scalar(old, op, signed_terms)
    if rule.annotation is None:
        combine = None
    elif op in ("SUM", "COUNT"):
        combine = "sum"
    elif op == "MIN":
        combine = "min"
    elif op == "MAX":
        combine = "max"
    else:  # pragma: no cover - _delta_capable filters these out
        raise SchemaError("aggregate %r is not delta-maintainable" % op)
    blocks = [old.data]
    annotation_blocks = [old.annotations]
    for sign, term in signed_terms:
        if term.cardinality == 0:
            continue
        blocks.append(term.data)
        if combine is not None:
            values = term.annotations if term.annotations is not None \
                else np.ones(term.cardinality)
            annotation_blocks.append(values * sign if sign != 1.0
                                     else values)
    data = np.concatenate(blocks)
    annotations = None if combine is None \
        else np.concatenate(annotation_blocks)
    merged = Relation(old.name, data, annotations,
                      old.dictionaries).deduplicated(combine or "last")
    merged.dictionaries = old.dictionaries
    return merged


def _combine_scalar(old, op, signed_terms):
    """Scalar-head combine: fold term values into the old scalar."""
    value = old.scalar_value
    for sign, term in signed_terms:
        if term.annotations is None or term.annotations.size == 0:
            continue
        term_value = float(term.annotations[0])
        if op in ("SUM", "COUNT"):
            value += sign * term_value
        elif op == "MIN":
            value = min(value, term_value)
        else:
            value = max(value, term_value)
    return Relation.scalar(old.name, value)
