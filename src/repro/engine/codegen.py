"""Code generation: translate a bag's plan into Python source (§3.3).

EmptyHeaded generates C++ from the GHD instead of interpreting it; this
module reproduces that phase as the engine's *compiled* execution path.
:func:`generate_bag_plan` lowers one GHD bag — any semiring, any head
mode — to Python source whose loop nest mirrors the bag's attribute
order, the structure Example 3.2 of the paper shows for the triangle
query:

.. code-block:: python

    for t_x in R.x ∩ T.x:
        for t_y in R[t_x].y ∩ S.y:
            total += |S[t_y].z ∩ T[t_x].z|

Generated functions are ``exec``-compiled once and then reused through
the plan cache (:mod:`repro.engine.plan_cache`); the interpreter
(:class:`~repro.engine.generic_join.BagEvaluator`) stays the reference
implementation that parity tests compare against.

Three compile-time specializations distinguish the generated code from
the interpreting evaluator:

* **Unrolling** — the participant scan, cursor bookkeeping, and
  undo-stack of the interpreter disappear; every level gets dedicated
  local variables (``c{depth}_{input}`` cursors, ``s{level}``
  candidate sets).
* **Kernel dispatch** — when both operand layouts of a two-set
  intersection are known at trie-build time, the emitted call goes
  straight to the pair kernel from
  :func:`repro.sets.intersect.specialized_pair_kernel` instead of the
  generic ``intersect`` dispatcher.
* **Typed accumulators** — unannotated SUM/COUNT folds accumulate in
  ``int`` (exact, and what the interpreter's cardinality fast path
  yields) instead of drifting through ``float``.

Every generated function takes ``(tries, config, restrict=None)``:
``restrict`` intersects an extra set at level 0, which is how compiled
plans compose with the work-stealing parallel executor's morsels.
"""

import numpy as np

from ..errors import PlanError
from ..sets.intersect import intersect, intersect_many, \
    specialized_pair_kernel
from .generic_join import BagResult, assemble_chunks, empty_bag_result
from .semiring import COUNT, Semiring

#: Shared zero-row matrices for scalar results (never mutated).
_EMPTY_SCALAR_DATA = np.empty((0, 0), dtype=np.uint32)
_NO_VALUES = np.empty(0, dtype=np.uint32)


class InputSpec:
    """Compile-time description of one bag input.

    ``variables`` must be the bag evaluation order restricted to this
    input (i.e. the trie's level order); ``kinds`` optionally records
    the set-layout kind every node at the corresponding trie depth is
    known to have (``None`` per level = unknown, keep generic
    dispatch).
    """

    __slots__ = ("name", "variables", "annotated", "kinds")

    def __init__(self, name, variables, annotated=False, kinds=None):
        self.name = name
        self.variables = tuple(variables)
        self.annotated = bool(annotated)
        if kinds is None:
            kinds = (None,) * len(self.variables)
        self.kinds = tuple(kinds)
        if len(self.kinds) != len(self.variables):
            raise PlanError("input %r: %d kinds for %d variables"
                            % (name, len(self.kinds),
                               len(self.variables)))

    def signature(self):
        """Hashable identity for the codegen source cache."""
        return (self.variables, self.annotated, self.kinds)


def static_level_kind(layout_level):
    """Layout kind a homogeneous optimizer level forces on every set,
    or ``None`` when the per-set optimizer decides at build time."""
    if layout_level in ("relation", "uint_only"):
        return "uint"
    if layout_level == "bitset_only":
        return "bitset"
    if layout_level == "block":
        return "block"
    return None


def trie_level_kind(trie, depth, layout_level="set"):
    """Layout kind every set at ``depth`` of ``trie`` is known to have.

    Homogeneous optimizer levels decide statically; the per-set default
    optimizer is answered from the trie's own build histogram (each
    cache-built trie gets a private :class:`SetOptimizer`, so the
    histogram covers exactly this trie's sets).  Returns ``None`` when
    the level mixes kinds — the generated code then keeps the generic
    dispatcher for that level.
    """
    forced = static_level_kind(layout_level)
    if forced is not None:
        return forced
    if depth == 0:
        return trie.root.set.kind
    histogram = getattr(getattr(trie, "optimizer", None), "histogram",
                        None)
    if histogram and len(histogram) == 1:
        return next(iter(histogram))
    return None


class GeneratedQuery:
    """A compiled bag plan: the emitted source text plus the callable."""

    #: True on plans whose callable runs the fused block kernel.
    fused = False

    def __init__(self, source, function, input_names):
        self.source = source
        self.function = function
        self.input_names = input_names

    def __call__(self, tries, config, restrict=None):
        """Run the generated plan over root tries (in spec order).

        ``restrict`` is an optional extra set intersected at level 0 —
        the morsel hook of the parallel executor.
        """
        return self.function(tries, config, restrict)


def _intersect_many_config(sets, config):
    """Runtime helper bound into generated namespaces.

    Carries the compiled path's per-intersection observability: the
    ``metrics``/``tracer`` config slots are ``None`` unless enabled, so
    the generated hot loop pays one ``is not None`` check each.
    (Layout-specialized pair kernels bypass this helper; their calls
    are still attributed via the op counter's per-algorithm tallies.)
    """
    tracer = config.tracer
    if tracer is not None and tracer.capture_intersections:
        start = tracer.now()
        result = intersect_many(sets, counter=config.counter,
                                algorithm=config.uint_algorithm,
                                adaptive=config.adaptive_algorithms,
                                simd=config.simd)
        tracer.record(
            "intersect", "intersect", start, tracer.now(),
            args={"inputs": [int(s.cardinality) for s in sets],
                  "out": int(result.cardinality)})
    else:
        result = intersect_many(sets, counter=config.counter,
                                algorithm=config.uint_algorithm,
                                adaptive=config.adaptive_algorithms,
                                simd=config.simd)
    if config.metrics is not None:
        config.metrics.observe("intersection.size",
                               int(result.cardinality))
    return result


def _intersect_pair_config(x, y, config):
    """Runtime helper: generic pair intersection under the config."""
    result = intersect(x, y, config.counter,
                       algorithm=config.uint_algorithm,
                       adaptive=config.adaptive_algorithms,
                       simd=config.simd)
    if config.metrics is not None:
        config.metrics.observe("intersection.size",
                               int(result.cardinality))
    return result


def generate_bag_plan(eval_order, out_count, specs, semiring,
                      fused=False):
    """Emit and compile Python source evaluating one bag.

    Parameters
    ----------
    eval_order:
        The bag's attribute order, output attributes first.
    out_count:
        How many leading attributes are emitted (``0`` folds everything
        into a scalar).
    specs:
        :class:`InputSpec` list, one per input trie.
    semiring:
        Fold for the aggregated suffix (and the zero of empty results).
    fused:
        When true and the bag shape qualifies (all inputs unary or
        binary, supported semiring), return a
        :class:`~repro.engine.fused.FusedBagKernel` wrapper that
        evaluates whole morsels as numpy block operations, with this
        per-tuple generated function kept as its over-budget fallback.
        Unqualifying bags silently get the per-tuple plan.

    Returns
    -------
    GeneratedQuery
        Calling it with ``(tries, config, restrict=None)`` — tries in
        spec order — returns the same
        :class:`~repro.engine.generic_join.BagResult` the interpreting
        :class:`~repro.engine.generic_join.BagEvaluator` produces.
    """
    if fused:
        return _generate_fused_plan(eval_order, out_count, specs,
                                    semiring)
    order = tuple(eval_order)
    n_levels = len(order)
    if n_levels == 0:
        raise PlanError("cannot generate code for a zero-attribute plan")
    if not 0 <= out_count <= n_levels:
        raise PlanError("out_count %d outside [0, %d]"
                        % (out_count, n_levels))
    if not isinstance(semiring, Semiring):
        raise PlanError("semiring must be a Semiring instance")
    participants = []
    for level, attr in enumerate(order):
        rows = []
        for index, spec in enumerate(specs):
            if attr in spec.variables:
                position = spec.variables.index(attr)
                rows.append((index, position == len(spec.variables) - 1))
        if not rows:
            raise PlanError("attribute %r not covered" % (attr,))
        participants.append(rows)

    any_annotated = any(spec.annotated for spec in specs)
    # Satellite of the same bug parallel_count had: unannotated
    # SUM/COUNT accumulates exactly in int; everything else follows the
    # interpreter's float arithmetic bit for bit.
    int_fold = semiring.name in ("SUM", "COUNT") and not any_annotated
    is_exists = semiring.name == "EXISTS"
    zero_literal = "0" if int_fold else "_ZERO"

    lines = []
    pad = "    "
    namespace = {
        "np": np,
        "_intersect_many": _intersect_many_config,
        "_pair_intersect": _intersect_pair_config,
        "_plus": semiring.plus,
        "_fold_leaf": semiring.fold_leaf,
        "_ZERO": semiring.zero,
        "_NO_VALUES": _NO_VALUES,
    }

    def w(depth, text):
        lines.append(pad * depth + text)

    depth_of = [0] * len(specs)

    def cursor(index):
        return "c%d_%d" % (depth_of[index], index)

    def one_literal():
        return "1" if int_fold else "1.0"

    def ann_or_one(ann_expr):
        return ann_expr if ann_expr is not None else one_literal()

    def float_ann(ann_expr):
        return ann_expr if ann_expr is not None else "1.0"

    def emit_candidates(level, depth):
        """Write ``s{level} = ...`` — single set, specialized pair
        kernel, or generic ``_intersect_many``."""
        rows = participants[level]
        sets = ["%s.set" % cursor(index) for index, _ in rows]
        if len(sets) == 1:
            w(depth, "s%d = %s" % (level, sets[0]))
        else:
            kernel = None
            if len(sets) == 2:
                kinds = []
                for index, _ in rows:
                    spec = specs[index]
                    kinds.append(
                        spec.kinds[spec.variables.index(order[level])])
                if kinds[0] is not None and kinds[1] is not None:
                    kernel = specialized_pair_kernel(kinds[0], kinds[1])
            if kernel is not None:
                name = "_pair_kernel_%d" % level
                namespace[name] = kernel
                w(depth, "s%d = %s(%s, %s, config)"
                  "  # specialized %s-x-%s kernel"
                  % (level, name, sets[0], sets[1], kinds[0], kinds[1]))
            else:
                w(depth, "s%d = _intersect_many([%s], config)"
                  % (level, ", ".join(sets)))
        if level == 0:
            w(depth, "if restrict is not None:")
            w(depth + 1, "s0 = _pair_intersect(s0, restrict, config)")

    def emit_bindings(level, depth, ann_expr):
        """Collect annotations of inputs binding their last attribute
        and advance the other participants' cursors; returns the new
        annotation-chain expression."""
        factors = ["%s.annotation(v%d)" % (cursor(index), level)
                   for index, is_last in participants[level]
                   if is_last and specs[index].annotated]
        new_expr = ann_expr
        if factors:
            terms = factors if ann_expr is None else [ann_expr] + factors
            w(depth, "a%d = %s" % (level, " * ".join(terms)))
            new_expr = "a%d" % level
        for index, is_last in participants[level]:
            if not is_last:
                old = cursor(index)
                depth_of[index] += 1
                w(depth, "%s = %s.child(v%d)" % (cursor(index), old,
                                                 level))
        return new_expr

    def leaf_annotated(level):
        return [index for index, _ in participants[level]
                if specs[index].annotated]

    def emit_leaf_gather(level, depth, ann_expr):
        """Vectorized per-value annotation products at the deepest
        level (mirrors ``BagEvaluator._leaf_annotated_fold``)."""
        w(depth, "vals%d = s%d.to_array()" % (level, level))
        w(depth, "fac%d = np.full(vals%d.shape[0], %s, dtype=np.float64)"
          % (level, level, float_ann(ann_expr)))
        for index in leaf_annotated(level):
            w(depth, "fac%d = fac%d * %s.annotations["
              "np.searchsorted(%s.set.to_array(), vals%d)]"
              % (level, level, cursor(index), cursor(index), level))

    def emit_fold(level, depth, ann_expr):
        """Aggregated-suffix levels ``[level, n_levels)``: compute
        ``t{level}``/``f{level}`` (fold value, any-binding flag)."""
        w(depth, "t%d = %s" % (level, zero_literal))
        w(depth, "f%d = False" % level)
        emit_candidates(level, depth)
        if level == n_levels - 1:
            w(depth, "if s%d.cardinality:" % level)
            body = depth + 1
            if not leaf_annotated(level):
                if is_exists:
                    w(body, "t%d = 1.0" % level)
                elif semiring.name in ("SUM", "COUNT"):
                    w(body, "t%d = %s * s%d.cardinality"
                      "  # count %r values"
                      % (level, ann_or_one(ann_expr), level,
                         order[level]))
                else:  # MIN/MAX of a constant annotation product
                    w(body, "t%d = %s" % (level, ann_or_one(ann_expr)))
            else:
                emit_leaf_gather(level, body, ann_expr)
                w(body, "t%d = _fold_leaf(fac%d)" % (level, level))
            w(body, "f%d = True" % level)
            return
        w(depth, "for v%d in s%d:  # bind %r" % (level, level,
                                                 order[level]))
        body = depth + 1
        inner_expr = emit_bindings(level, body, ann_expr)
        emit_fold(level + 1, body, inner_expr)
        w(body, "if f%d:" % (level + 1))
        w(body + 1, "t%d = _plus(t%d, t%d) if f%d else t%d"
          % (level, level, level + 1, level, level + 1))
        w(body + 1, "f%d = True" % level)
        if is_exists:
            w(body + 1, "break  # EXISTS: one witness suffices")

    def emit_output(level, depth, ann_expr):
        """Output-prefix levels: enumerate bindings into chunks."""
        emit_candidates(level, depth)
        at_out_leaf = level == out_count - 1
        if at_out_leaf and out_count == n_levels:
            # Pure leaf: the whole candidate set is one chunk.
            w(depth, "vals%d = s%d.to_array()" % (level, level))
            w(depth, "if vals%d.shape[0]:" % level)
            body = depth + 1
            if leaf_annotated(level):
                emit_leaf_gather(level, body, ann_expr)
            else:
                w(body, "fac%d = np.full(vals%d.shape[0], %s, "
                  "dtype=np.float64)"
                  % (level, level, float_ann(ann_expr)))
            prefix = ", ".join("v%d" % l for l in range(level))
            w(body, "chunks.append(((%s), vals%d, fac%d))"
              % (prefix + ("," if prefix else ""), level, level))
            return
        w(depth, "for v%d in s%d:  # bind %r" % (level, level,
                                                 order[level]))
        body = depth + 1
        inner_expr = emit_bindings(level, body, ann_expr)
        if at_out_leaf:
            # Aggregated suffix below: the fold restarts its annotation
            # chain at 1.0, exactly like BagEvaluator._emit.
            emit_fold(level + 1, body, None)
            prefix = ", ".join("v%d" % l for l in range(level + 1))
            w(body, "if f%d:" % (level + 1))
            deeper = "t%d" % (level + 1)
            product = deeper if inner_expr is None \
                else "%s * %s" % (inner_expr, deeper)
            w(body + 1, "chunks.append(((%s,), _NO_VALUES, "
              "np.asarray([%s], dtype=np.float64)))" % (prefix, product))
        else:
            emit_output(level + 1, body, inner_expr)

    w(0, "def _generated(tries, config, restrict=None):")
    w(1, "# generated by repro.engine.codegen: order=(%s) out=%d "
      "semiring=%s" % (", ".join(order), out_count, semiring.name))
    for index in range(len(specs)):
        w(1, "c0_%d = tries[%d].root" % (index, index))
    if out_count == 0:
        emit_fold(0, 1, None)
        w(1, "return _scalar_result(t0)")
        namespace["_scalar_result"] = lambda value: BagResult(
            (), _EMPTY_SCALAR_DATA, scalar=value)
    else:
        w(1, "chunks = []")
        emit_output(0, 1, None)
        w(1, "return _assemble(chunks)")
        namespace["_assemble"] = lambda chunks: assemble_chunks(
            order, out_count, chunks, semiring)

    source = "\n".join(lines)
    exec(compile(source, "<generated-query>", "exec"), namespace)
    return GeneratedQuery(source, namespace["_generated"],
                          [spec.name for spec in specs])


def _generate_fused_plan(eval_order, out_count, specs, semiring):
    """Pair a :class:`~repro.engine.fused.FusedBagKernel` with its
    per-tuple fallback plan behind the ``GeneratedQuery`` interface."""
    from .fused import FusedBagKernel, FusedFallback, fusable

    fallback = generate_bag_plan(eval_order, out_count, specs, semiring)
    if not fusable(eval_order, out_count, specs, semiring):
        return fallback
    kernel = FusedBagKernel(eval_order, out_count, specs, semiring)
    per_tuple = fallback.function

    def _run(tries, config, restrict=None):
        try:
            return kernel.run(tries, config, restrict)
        except FusedFallback:
            return per_tuple(tries, config, restrict)

    source = ("# fused block kernel: order=(%s) out=%d semiring=%s\n"
              "# per-tuple fallback plan follows\n%s"
              % (", ".join(eval_order), out_count, semiring.name,
                 fallback.source))
    generated = GeneratedQuery(source, _run, list(fallback.input_names))
    generated.fused = True
    generated.kernel = kernel
    return generated


def generate_count_plan(eval_order, input_specs):
    """Emit source for a COUNT(*)-style single-bag plan (legacy entry).

    Parameters
    ----------
    eval_order:
        The bag's attribute order.
    input_specs:
        ``(name, variables)`` pairs — each input's trie levels, which
        must be ``eval_order`` restricted to its variables.

    Returns
    -------
    GeneratedQuery
        Call it with ``(tries, config)``; unlike
        :func:`generate_bag_plan` it returns the bare count — an
        ``int``, matching the interpreter.
    """
    specs = [InputSpec(name, variables)
             for name, variables in input_specs]
    generated = generate_bag_plan(eval_order, 0, specs, COUNT)
    inner = generated.function

    def _count(tries, config, restrict=None):
        return inner(tries, config, restrict).scalar

    return GeneratedQuery(generated.source, _count,
                          list(generated.input_names))


def compile_count_rule(rule, database):
    """Generate code for a single-bag COUNT(*) rule against ``database``.

    Builds the same GHD/attribute order the interpreter would choose,
    requires it to be a single bag, emits the loop nest, and returns
    ``(generated, tries)`` ready to run.  Tries come from the
    database's shared :class:`~repro.engine.executor.TrieCache`, so
    repeated compilation never re-sorts relation data.
    """
    from ..ghd.attribute_order import (bag_evaluation_order,
                                       global_attribute_order)
    from ..ghd.decompose import decompose
    from ..lir.build import normalize_atom
    from ..query.hypergraph import Hypergraph

    aggregates = rule.aggregates
    if rule.head_vars or not aggregates or aggregates[0].op != "COUNT" \
            or aggregates[0].arg != "*":
        raise PlanError("code generation supports COUNT(*) rules with an "
                        "empty head")
    atoms = [normalize_atom(atom, database.catalog) for atom in rule.body]
    hypergraph = Hypergraph(atoms)
    ghd = decompose(hypergraph, use_ghd=False)
    global_order = global_attribute_order(ghd)
    eval_order = bag_evaluation_order(ghd.root.chi, (), global_order)
    specs = []
    tries = []
    for atom in atoms:
        ordered = tuple(a for a in eval_order if a in atom.variables)
        key_order = tuple(atom.variables.index(a) for a in ordered)
        trie = database._trie_cache.get(atom.relation, key_order,
                                        database.config.layout_level)
        specs.append((atom.name, ordered))
        tries.append(trie)
    generated = generate_count_plan(eval_order, specs)
    return generated, tries
