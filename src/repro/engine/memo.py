"""Bag-result memoization (paper Appendix B.2, extended across rules.)

Within one rule the executor already evaluates structurally identical
bags once (the Barbell 2x win).  A :class:`BagMemo` extends that scope
to a whole *program*: ``Database.query`` installs one on the executor
for the duration of a multi-rule program, so a bag that reappears in a
later rule — same relations, same join pattern, same selections and
aggregation — reuses the earlier rule's result instead of re-joining.

Correctness rests on two guards:

* signatures come from :func:`repro.ghd.equivalence.bag_signature` with
  selection-aware edge names, so only genuinely equivalent bags alias;
* every entry pins the catalog relations its rule read, by *identity
  and version*.  Installing a rule head or a recursion round replaces
  catalog entries wholesale (identity mismatch); ``Database.append`` /
  ``delete`` mutate a relation in place, bumping its version (version
  mismatch).  Either way the dependent memo entry drops on next probe.
"""

from .generic_join import BagResult


def remap_memoized(entry, canonical_out, out_attrs):
    """Rebind a memoized bag result to a reusing bag's attribute names.

    Returns ``None`` when the column correspondence cannot be
    established (the reuser then evaluates the bag itself).
    """
    stored, stored_canonical = entry
    if sorted(stored_canonical) != sorted(canonical_out):
        return None
    if not canonical_out:
        # Scalar (fully aggregated) bag: no columns to rebind.
        return BagResult(out_attrs, stored.data,
                         annotations=stored.annotations,
                         scalar=stored.scalar)
    columns = [stored_canonical.index(c) for c in canonical_out]
    data = stored.data[:, columns] if stored.data.size else \
        stored.data.reshape(-1, len(columns))
    return BagResult(out_attrs, data, annotations=stored.annotations,
                     scalar=stored.scalar)


class BagMemo:
    """Program-scoped memo of evaluated bag results.

    Entries map a bag signature to ``(result, canonical_out, guards)``
    where ``guards`` is a tuple of ``(name, relation, version)`` triples
    pinning — by object identity *and* mutation version — every catalog
    relation the producing rule read.
    """

    def __init__(self):
        self._entries = {}
        self.hits = 0
        self.misses = 0

    def get(self, signature, catalog):
        """``(result, canonical_out)`` for a still-valid entry, else
        ``None``.  Stale entries (a guard relation was replaced in the
        catalog) are dropped on probe."""
        entry = self._entries.get(signature)
        if entry is None:
            self.misses += 1
            return None
        result, canonical_out, guards = entry
        if any(catalog.get(name) is not relation
               or getattr(relation, "version", 0) != version
               for name, relation, version in guards):
            del self._entries[signature]
            self.misses += 1
            return None
        self.hits += 1
        return result, canonical_out

    def put(self, signature, result, canonical_out, guards):
        self._entries[signature] = (result, canonical_out, tuple(guards))

    def __len__(self):
        return len(self._entries)
