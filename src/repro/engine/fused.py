"""Fused block execution: the generic join as numpy block ops.

The per-tuple compiled path (:mod:`repro.engine.codegen`) still pays a
Python-level loop iteration per binding — one ``intersect`` or pair
kernel call per outer value.  This module eliminates that dispatch
entirely for the bag shapes graph queries compile to (every input of
arity 1 or 2): the whole morsel is evaluated as a short, fixed sequence
of vectorized *block operations* over the tries' flat level arrays
(:meth:`repro.storage.trie.Trie.flat`):

1. **Frontier expansion.**  The bag's bound prefixes live in a column
   matrix (one array per level, rows in lexicographic order).  A level
   is expanded by one CSR gather over the generating input's flat child
   arrays (``offsets``/``values``) — ``np.repeat`` + cumulative-sum
   arithmetic, no per-row Python.
2. **Batched membership probes.**  Every other participant filters the
   expanded candidates with one ``searchsorted`` sweep: root levels
   probe the sorted key array directly, child levels probe a 64-bit
   packed ``(parent << 32) | child`` array, so a million bindings cost
   a handful of numpy calls.
3. **Block aggregate folds.**  The aggregated suffix never materializes
   past the frontier: leaf contributions are folded per output prefix
   with ``bincount``/``ufunc.reduceat`` segment reductions, and
   unannotated SUM/COUNT keeps the compiled path's exact ``int``
   accumulator (a bare element count).

Annotation products multiply in the same input order as the per-tuple
paths, so results agree bit-for-bit except for float *summation* order
inside a fold, where grouping differs — the differential fuzzer's
dyadic-rational value hygiene makes even those sums exact in practice.

A kernel call that would expand past :data:`MAX_BLOCK_ROWS` raises
:class:`FusedFallback`; the wrapper built by
:func:`repro.engine.codegen.generate_bag_plan` then reruns the call
through the per-tuple generated loop nest, so the fused path can never
be wrong, only slower.  Workspace buffers (the index ramp) are reused
across morsels within a kernel, so the steady-state morsel loop
allocates only result-sized arrays.
"""

import numpy as np

from ..errors import PlanError
from .generic_join import BagResult, empty_bag_result

#: Semirings the block folds implement.
FUSED_SEMIRINGS = ("SUM", "COUNT", "MIN", "MAX", "EXISTS")

#: Expansion budget per block: a level whose expanded frontier would
#: exceed this many rows falls back to the per-tuple loop nest, keeping
#: worst-case memory bounded (~8M rows ≈ a few hundred MB of state).
MAX_BLOCK_ROWS = 1 << 23

_EMPTY_SCALAR_DATA = np.empty((0, 0), dtype=np.uint32)


class FusedFallback(Exception):
    """A block exceeded the expansion budget; rerun per-tuple."""


def fusable(eval_order, out_count, specs, semiring):
    """True when the bag shape is coverable by the block evaluator:
    every input unary or binary, a supported semiring fold."""
    if not eval_order or semiring.name not in FUSED_SEMIRINGS:
        return False
    return all(1 <= len(spec.variables) <= 2 for spec in specs)


class _Part:
    """One input's participation at one level (resolved at plan time)."""

    __slots__ = ("index", "pos", "is_last", "annotated", "var0_level")

    def __init__(self, index, pos, is_last, annotated, var0_level):
        self.index = index
        self.pos = pos                  # position within the input's order
        self.is_last = is_last          # binds the input's final variable
        self.annotated = annotated
        self.var0_level = var0_level    # bag level of the input's first var


class _Workspace:
    """Reusable scratch buffers (the morsel-loop allocation killer).

    The index ramp backing ``np.arange`` views grows geometrically and
    is shared by every block in a kernel, so repeated morsel calls stop
    allocating ramp arrays entirely.
    """

    __slots__ = ("ramp",)

    def __init__(self):
        self.ramp = np.empty(0, dtype=np.int64)

    def arange(self, n):
        if self.ramp.size < n:
            size = max(int(n), 1024, self.ramp.size * 2)
            self.ramp = np.arange(size, dtype=np.int64)
        return self.ramp[:n]


def _probe(keys, vals):
    """Batched sorted-membership probe.

    Returns ``(rank, member)``: for member positions ``rank`` is the
    value's index in ``keys`` (the trie-node rank, valid wherever
    ``member`` holds).
    """
    if keys.size == 0:
        zero = np.zeros(vals.size, dtype=np.intp)
        return zero, np.zeros(vals.size, dtype=bool)
    rank = np.searchsorted(keys, vals)
    rank = np.minimum(rank, keys.size - 1)
    return rank, keys[rank] == vals


def _packed_probe(packed, pk):
    """Membership of packed ``(parent << 32) | child`` pairs; the hit
    position doubles as the row index for leaf-annotation gathers."""
    if packed.size == 0:
        zero = np.zeros(pk.size, dtype=np.intp)
        return zero, np.zeros(pk.size, dtype=bool)
    pos = np.searchsorted(packed, pk)
    pos = np.minimum(pos, packed.size - 1)
    return pos, packed[pos] == pk


class FusedBagKernel:
    """One bag lowered to a sequence of numpy block operations.

    Instances are built by :func:`repro.engine.codegen.generate_bag_plan`
    when ``fused=True`` and cached through the plan cache's bag-source
    tier exactly like per-tuple generated functions.  Calling convention
    matches :class:`~repro.engine.codegen.GeneratedQuery.__call__`:
    ``kernel(tries, config, restrict=None)`` with tries in spec order
    and ``restrict`` the parallel executor's morsel hook.
    """

    def __init__(self, eval_order, out_count, specs, semiring):
        if not fusable(eval_order, out_count, specs, semiring):
            raise PlanError("bag is not fusable")
        self.order = tuple(eval_order)
        self.out_count = out_count
        self.specs = list(specs)
        self.semiring = semiring
        self.n_levels = len(self.order)
        # Same exact-int rule as the per-tuple codegen: unannotated
        # SUM/COUNT results are bare element counts.
        self.int_fold = semiring.name in ("SUM", "COUNT") \
            and not any(spec.annotated for spec in specs)
        var_level = {attr: level for level, attr in enumerate(self.order)}
        self.levels = []
        for level, attr in enumerate(self.order):
            parts = []
            for index, spec in enumerate(specs):
                if attr in spec.variables:
                    pos = spec.variables.index(attr)
                    parts.append(_Part(
                        index, pos, pos == len(spec.variables) - 1,
                        spec.annotated, var_level[spec.variables[0]]))
            if not parts:
                raise PlanError("attribute %r not covered" % (attr,))
            self.levels.append(parts)
        self._ws = _Workspace()
        #: Effective limits, refreshed per run() from the config's
        #: adaptive accessors (``None`` = hard-coded defaults).
        self._max_rows = MAX_BLOCK_ROWS
        self._probe_xover = None
        #: Cumulative skew-sweep engagements (observability/tests).
        self.sweep_blocks = 0
        self._last_was_sweep = False

    # -- driver ---------------------------------------------------------------

    def run(self, tries, config, restrict=None):
        """Evaluate the bag; raises :class:`FusedFallback` over budget."""
        flats = [trie.flat() for trie in tries]
        if any(flat.keys.size == 0 for flat in flats):
            return self._empty()
        counter = config.counter
        # Adaptive limits (duck-typed: plain configs lack the accessors).
        accessor = getattr(config, "fused_block_rows", None)
        tuned_rows = accessor() if callable(accessor) else None
        self._max_rows = MAX_BLOCK_ROWS if tuned_rows is None \
            else tuned_rows
        accessor = getattr(config, "fused_probe_crossover", None)
        self._probe_xover = accessor() if callable(accessor) else None
        oc, nl = self.out_count, self.n_levels
        exists = self.semiring.name == "EXISTS"
        cols = []           # bound value column per level, len F each
        pw = None           # output-prefix annotation chain (float64[F])
        sw = None           # aggregated-suffix annotation chain
        ranks = {}          # spec index -> rank of its bound first var
        frontier = 1
        blocks = 0
        for level in range(nl):
            parts = self.levels[level]
            leaf_fold = level == nl - 1 and oc < nl
            expansion = self._expand(level, parts, flats, cols, ranks,
                                     frontier, restrict)
            parent, vals, new_ranks, factors, total = expansion
            blocks += 1
            counter.charge(
                "fused_sweep" if self._last_was_sweep else "fused_block",
                simd=-(-total // 4), elements=total)
            if leaf_fold:
                return self._fold_leaf(parent, factors, cols, pw, sw,
                                       frontier)
            if parent.size == 0:
                return self._empty()
            cols = [column[parent] for column in cols]
            cols.append(vals)
            if pw is not None:
                pw = pw[parent]
            if sw is not None:
                sw = sw[parent]
            ranks = {index: rank[parent]
                     for index, rank in ranks.items()}
            ranks.update(new_ranks)
            # Annotation factors multiply in input-index order, exactly
            # like the per-tuple paths' left-associated products.
            for _, factor in sorted(factors, key=lambda item: item[0]):
                if level < oc:
                    pw = factor if pw is None else pw * factor
                elif not exists:
                    # EXISTS ignores suffix annotations (the fold is a
                    # bare witness test), matching the interpreter.
                    sw = factor if sw is None else sw * factor
            frontier = parent.size
        # Pure materializing bag: the frontier is the result.
        metrics = getattr(config, "metrics", None)
        if metrics is not None:
            metrics.observe("fused.block_rows", frontier)
        data = np.stack(cols, axis=1) if cols \
            else np.empty((0, 0), dtype=np.uint32)
        annotations = pw if pw is not None \
            else np.ones(frontier, dtype=np.float64)
        return BagResult(self.order[:oc], data, annotations=annotations)

    # -- expansion ------------------------------------------------------------

    def _expand(self, level, parts, flats, cols, ranks, frontier,
                restrict):
        """Expand the frontier through one level.

        Returns ``(parent, vals, new_ranks, factors, total)`` — parent
        row per surviving candidate, its bound value, ranks recorded
        for inputs whose first variable binds here, leaf-annotation
        factor arrays as ``(input_index, float64 array)``, and the
        pre-filter expansion size (for op accounting).
        """
        ws = self._ws
        self._last_was_sweep = False
        child_parts = [part for part in parts if part.pos == 1]
        if child_parts:
            # CSR expansion through the cheapest child-level input.
            gen = min(child_parts,
                      key=lambda part: flats[part.index].values.size)
            flat = flats[gen.index]
            row = ranks[gen.index]
            offsets = flat.offsets
            counts = offsets[row + 1] - offsets[row]
            total = int(counts.sum())
            root_parts = [part for part in parts if part.pos == 0]
            if root_parts and self._probe_xover is not None:
                # Skew-aware sweep (calibrated): when CSR expansion
                # through even the cheapest generator dwarfs tiling the
                # level's root-key candidates, probe instead of expand —
                # the block analog of galloping's min-property switch.
                width0 = min(flats[part.index].keys.size
                             for part in root_parts)
                sweep_total = frontier * width0
                if sweep_total <= self._max_rows \
                        and total > self._probe_xover * sweep_total:
                    return self._sweep_expand(parts, root_parts, flats,
                                              cols, frontier)
            self._budget(total)
            parent = np.repeat(ws.arange(frontier), counts)
            run_starts = np.cumsum(counts) - counts
            src = np.repeat(offsets[row] - run_starts, counts) \
                + ws.arange(total)
            vals = flat.values[src]
            keep = None
            probes = []     # (part, rank array) pending compression
            for part in parts:
                if part is gen:
                    continue
                other = flats[part.index]
                if part.pos == 0:
                    rank, member = _probe(other.keys, vals)
                else:
                    bound = cols[part.var0_level][parent]
                    pk = (bound.astype(np.uint64) << 32) | vals
                    rank, member = _packed_probe(other.packed, pk)
                probes.append((part, rank))
                keep = member if keep is None else keep & member
            if keep is not None:
                parent = parent[keep]
                vals = vals[keep]
                src = src[keep]
                probes = [(part, rank[keep]) for part, rank in probes]
            new_ranks = {}
            factors = []
            if gen.annotated and flat.ann is not None:
                factors.append((gen.index, flat.ann[src]))
            for part, rank in probes:
                other = flats[part.index]
                if part.is_last:
                    if part.annotated and other.ann is not None:
                        factors.append((part.index, other.ann[rank]))
                else:
                    new_ranks[part.index] = rank
            return parent, vals, new_ranks, factors, total
        # All participants offer row-independent root keys: the level's
        # candidate set is one intersection, then a Cartesian expansion.
        if level == 0 and restrict is not None:
            base = restrict.to_array()
        else:
            base = min((flats[part.index].keys for part in parts),
                       key=lambda keys: keys.size)
        keep = np.ones(base.size, dtype=bool)
        set_ranks = {}
        for part in parts:
            rank, member = _probe(flats[part.index].keys, base)
            keep &= member
            set_ranks[part.index] = rank
        vset = base[keep]
        width = vset.size
        total = frontier * width
        self._budget(total)
        parent = np.repeat(ws.arange(frontier), width)
        vals = np.tile(vset, frontier)
        new_ranks = {}
        factors = []
        for part in parts:
            rank = set_ranks[part.index][keep]
            other = flats[part.index]
            if part.is_last:
                if part.annotated and other.ann is not None:
                    factors.append(
                        (part.index, np.tile(other.ann[rank], frontier)))
            else:
                new_ranks[part.index] = np.tile(rank, frontier)
        return parent, vals, new_ranks, factors, total

    def _sweep_expand(self, parts, root_parts, flats, cols, frontier):
        """Skew-aware alternative to CSR expansion: tile the sorted
        intersection of the level's root-key sets across the frontier
        and filter with packed probes against every child-level input.

        Work is ``frontier × |root candidates|`` regardless of the
        generator's fanout, so extreme-skew frontiers (a few hub
        prefixes with huge adjacency) cost the probe sweep instead of
        materializing millions of children.  The surviving set equals
        the CSR path's (same memberships, both emitted in sorted order
        per parent), so results are bit-identical.
        """
        ws = self._ws
        self._last_was_sweep = True
        self.sweep_blocks += 1
        base = min((flats[part.index].keys for part in root_parts),
                   key=lambda keys: keys.size)
        keep0 = np.ones(base.size, dtype=bool)
        root_ranks = {}
        for part in root_parts:
            rank, member = _probe(flats[part.index].keys, base)
            keep0 &= member
            root_ranks[part.index] = rank
        vset = base[keep0]
        width = vset.size
        total = frontier * width
        self._budget(total)
        parent = np.repeat(ws.arange(frontier), width)
        vals = np.tile(vset, frontier)
        keep = None
        probes = []
        for part in parts:
            if part.pos != 1:
                continue
            other = flats[part.index]
            bound = cols[part.var0_level][parent]
            pk = (bound.astype(np.uint64) << 32) | vals
            pos, member = _packed_probe(other.packed, pk)
            probes.append((part, pos))
            keep = member if keep is None else keep & member
        if keep is not None:
            parent = parent[keep]
            vals = vals[keep]
            probes = [(part, pos[keep]) for part, pos in probes]
        new_ranks = {}
        factors = []
        for part, pos in probes:
            # pos==1 participants of a fusable bag are binary, hence
            # is_last: they contribute annotation factors, never ranks.
            other = flats[part.index]
            if part.annotated and other.ann is not None:
                factors.append((part.index, other.ann[pos]))
        for part in root_parts:
            rank = np.tile(root_ranks[part.index][keep0], frontier)
            if keep is not None:
                rank = rank[keep]
            other = flats[part.index]
            if part.is_last:
                if part.annotated and other.ann is not None:
                    factors.append((part.index, other.ann[rank]))
            else:
                new_ranks[part.index] = rank
        return parent, vals, new_ranks, factors, total

    def _budget(self, total):
        if total > self._max_rows:
            raise FusedFallback(total)

    # -- aggregated-leaf folds ------------------------------------------------

    def _fold_leaf(self, seg, factors, cols, pw, sw, frontier):
        """Fold the deepest level per frontier row without expanding it.

        ``seg`` is sorted (parents expand in order), so per-row and
        per-group reductions are ``bincount``/``reduceat`` segment ops.
        """
        sem = self.semiring
        oc = self.out_count
        if seg.size == 0:
            return self._empty()
        name = sem.name
        facs = [factor for _, factor
                in sorted(factors, key=lambda item: item[0])]
        if name == "EXISTS" or (sw is None and not facs):
            rows, starts = np.unique(seg, return_index=True)
            if name in ("SUM", "COUNT"):
                counts = np.bincount(seg, minlength=frontier)
                leafv = counts[rows].astype(np.float64)
            else:   # MIN/MAX of a constant chain, or EXISTS witnesses
                leafv = np.ones(rows.size, dtype=np.float64)
        else:
            elem = sw[seg] if sw is not None \
                else np.ones(seg.size, dtype=np.float64)
            for factor in facs:
                elem = elem * factor
            rows, starts = np.unique(seg, return_index=True)
            if name in ("SUM", "COUNT"):
                leafv = np.add.reduceat(elem, starts)
            elif name == "MIN":
                leafv = np.minimum.reduceat(elem, starts)
            else:
                leafv = np.maximum.reduceat(elem, starts)
        if oc == 0:
            if self.int_fold:
                return BagResult((), _EMPTY_SCALAR_DATA,
                                 scalar=int(seg.size))
            if name == "EXISTS":
                scalar = 1.0 if rows.size else 0.0
            elif name in ("SUM", "COUNT"):
                scalar = float(leafv.sum())
            elif name == "MIN":
                scalar = float(leafv.min())
            else:
                scalar = float(leafv.max())
            return BagResult((), _EMPTY_SCALAR_DATA, scalar=scalar)
        # Group surviving rows by their output prefix (lexicographically
        # contiguous by construction) and reduce per group.
        prefix = [cols[level][rows] for level in range(oc)]
        new_group = np.zeros(rows.size, dtype=bool)
        new_group[0] = True
        for column in prefix:
            new_group[1:] |= column[1:] != column[:-1]
        gstarts = np.flatnonzero(new_group)
        if name in ("SUM", "COUNT"):
            gval = np.add.reduceat(leafv, gstarts)
        elif name == "MIN":
            gval = np.minimum.reduceat(leafv, gstarts)
        elif name == "MAX":
            gval = np.maximum.reduceat(leafv, gstarts)
        else:   # EXISTS: one witness per group suffices
            gval = np.ones(gstarts.size, dtype=np.float64)
        if pw is not None:
            annotations = pw[rows][gstarts] * gval
        else:
            annotations = gval
        data = np.stack([column[gstarts] for column in prefix], axis=1)
        return BagResult(self.order[:oc], data,
                         annotations=annotations.astype(np.float64,
                                                        copy=False))

    def _empty(self):
        if self.out_count == 0 and self.int_fold:
            return BagResult((), _EMPTY_SCALAR_DATA, scalar=0)
        return empty_bag_result(self.order, self.out_count, self.semiring)
