"""Engine configuration: the feature switches the paper ablates.

Every optimization the paper measures can be toggled here, which is how
the benchmark harness reproduces the "-R", "-RA", "-S", and "-GHD"
columns of Tables 8, 11, and 13.
"""

import os
from dataclasses import dataclass, field
from typing import Optional

from ..sets.cost import OpCounter
from ..tune.profile import TuningProfile


def _default_execution_mode():
    """Default from ``REPRO_EXECUTION_MODE`` (CI runs the suite once
    with it set to ``compiled``); ``interpreted`` otherwise."""
    return os.environ.get("REPRO_EXECUTION_MODE", "interpreted")


@dataclass
class EngineConfig:
    """Feature switches for one database / query execution.

    Attributes
    ----------
    layout_level:
        Granularity of the layout optimizer: ``"set"`` (paper default),
        ``"relation"``/``"uint_only"`` (the "-R" ablation), ``"block"``,
        or ``"bitset_only"``.
    adaptive_algorithms:
        Cardinality-skew algorithm switching (paper Algorithm 2); turning
        it off together with ``layout_level="uint_only"`` is the "-RA"
        ablation.
    simd:
        Vectorized kernels; ``False`` is the "-S" ablation (scalar merge
        loops).
    use_ghd:
        GHD query plans; ``False`` forces the single-node GHD
        (the Table 8 "-GHD" ablation, LogicBlox-style).
    push_selections:
        Push selections across GHD nodes (Appendix B.1.1); ``False`` is
        the Table 13 "-GHD" ablation.
    eliminate_redundant_bags:
        Reuse results of structurally identical bags (Appendix B.2).
    skip_top_down:
        Elide Yannakakis' top-down pass when the root already holds every
        head attribute (Appendix B.2).
    prune_attributes:
        Project away purely existential body attributes before GHD
        search (the :class:`repro.lir` attribute-pruning rewrite pass).
    fold_constants:
        Fold constant subexpressions of annotation assignments at
        optimization time (the constant-folding rewrite pass).
    cross_rule_cse:
        Extend redundant-bag elimination across the rules of one program
        via a program-scoped :class:`~repro.engine.memo.BagMemo`; only
        effective while ``eliminate_redundant_bags`` is on.
    uint_algorithm:
        Force one uint∩uint kernel by name (``None`` = adaptive
        dispatch); used by the micro-benchmarks.
    execution_mode:
        ``"interpreted"`` (default) walks bags with the generic
        :class:`~repro.engine.generic_join.BagEvaluator`;
        ``"compiled"`` lowers every bag to generated Python source
        (paper §3.3) cached across executions — repeated queries skip
        parse, GHD search, and codegen entirely.  The default honors
        the ``REPRO_EXECUTION_MODE`` environment variable.
    fused_kernels:
        Lower qualifying compiled bags (all inputs unary/binary) to
        :class:`~repro.engine.fused.FusedBagKernel` block kernels that
        evaluate a whole morsel's bindings per numpy sweep instead of a
        Python loop per binding.  Only meaningful with
        ``execution_mode="compiled"``; participates in the plan cache's
        ``config_signature`` because it changes the generated plan.
    shared_tries:
        Place cache-built tries' bulk arrays (and integer dictionary
        decode columns) into ``multiprocessing.shared_memory`` via a
        per-database :class:`~repro.storage.arena.SharedTrieArena`, so
        forked parallel workers map them zero-copy instead of paying
        refcount-driven copy-on-write churn.  Changes scheduling cost,
        never results or plans — like the ``parallel_*`` knobs it stays
        out of ``config_signature``.
    parallel_workers:
        Forked worker processes for the generic join's outermost loop
        (the paper runs every benchmark on 48 threads).  ``1`` (default)
        keeps everything in-process; ``> 1`` makes ``Database.query``
        route the largest bag of every plan through the skew-aware
        work-stealing executor in ``repro.engine.parallel``.
    parallel_threshold:
        Minimum number of level-0 candidate values before forking is
        worth the setup cost; smaller bags run serially even when
        ``parallel_workers > 1``.  Deliberately counted in raw
        candidate values, *not* the degree-weighted costs morsel
        construction uses: the threshold gates whether forking pays for
        itself at all (a fixed per-fork overhead against per-candidate
        work), while degree weights only balance candidates *across*
        workers once forking happens.
    parallel_strategy:
        ``"steal"`` (default) drains cost-weighted morsels from a shared
        queue; ``"static"`` reproduces the one-chunk-per-worker
        partitioning the prototype used, kept for the skew benchmarks.
    parallel_morsels_per_worker:
        Target morsel count per worker under ``"steal"``; more morsels
        mean finer-grained stealing at slightly higher queue overhead.
    counter:
        Simulated-SIMD op counter every kernel charges into.
    tracer:
        :class:`repro.obs.trace.Tracer` recording lifecycle spans, or
        ``None`` (default).  Hot paths gate on ``is not None``, so a
        disabled tracer costs nothing.  Not part of the plan-cache
        ``config_signature`` — tracing never changes results.
    metrics:
        :class:`repro.obs.metrics.MetricsRegistry` absorbing counters
        and histograms, or ``None`` (default).  Same gating and
        signature exemption as ``tracer``.
    telemetry:
        :class:`repro.obs.telemetry.TelemetryHub` receiving one query
        record per execution, or ``None`` (default).  ``Database.query``
        checks it once per query (never inside the execution loops) and
        takes its untouched fast path when unset, so telemetry off is
        free.  Like ``tracer``/``metrics`` it is excluded from
        ``config_signature`` — observation never changes plans or
        results.
    slow_query_seconds:
        Latency budget for slow-query promotion: a telemetry-recorded
        query exceeding it is re-executed fully traced on its next run
        and the trace archived.  ``None`` disables promotion.  Also
        signature-exempt.
    adaptive:
        Adaptive self-tuning execution (:mod:`repro.tune`).  When on,
        (a) dispatch sites read calibrated constants from ``tuning``
        instead of the hard-coded defaults, and (b) the executor
        compares predicted vs actual per-bag lane ops after every query
        and re-plans cached entries whose actuals blow past the
        prediction by more than ``replan_factor`` (feeding observed
        cardinalities back into GHD choice).  Off (default) the engine
        is bit-identical to the untuned paths.
    tuning:
        The :class:`repro.tune.TuningProfile` supplying calibrated
        constants; ``None`` (even with ``adaptive=True``) keeps every
        constant at its default — re-planning still runs.  Participates
        in ``config_signature`` via ``TuningProfile.signature()``
        because tuned constants change generated plans and layouts.
    replan_factor:
        Mispredict tolerance: a cached plan is evicted and re-planned
        when a bag's actual lane ops exceed ``replan_factor x`` the cost
        model's prediction.  The prediction is an upper bound, so only
        the actual>predicted direction signals a bad plan (the other
        direction is ordinary model pessimism).
    incremental_views:
        Maintain materialized views (``Database.materialize``) by
        semi-naive delta evaluation when the mutation history permits
        (insert-only, journal intact, delta-capable rule shape); off,
        every refresh recomputes the view from scratch.  Results are
        identical either way — the switch only trades refresh cost —
        so like ``shared_tries`` it stays out of ``config_signature``
        and doubles as a differential-fuzzing axis.
    """

    layout_level: str = "set"
    adaptive_algorithms: bool = True
    simd: bool = True
    use_ghd: bool = True
    push_selections: bool = True
    eliminate_redundant_bags: bool = True
    skip_top_down: bool = True
    prune_attributes: bool = True
    fold_constants: bool = True
    cross_rule_cse: bool = True
    uint_algorithm: Optional[str] = None
    execution_mode: str = field(default_factory=_default_execution_mode)
    fused_kernels: bool = False
    shared_tries: bool = False
    parallel_workers: int = 1
    parallel_threshold: int = 64
    parallel_strategy: str = "steal"
    parallel_morsels_per_worker: int = 8
    counter: OpCounter = field(default_factory=OpCounter)
    tracer: Optional[object] = None
    metrics: Optional[object] = None
    telemetry: Optional[object] = None
    slow_query_seconds: Optional[float] = None
    adaptive: bool = False
    tuning: Optional[TuningProfile] = None
    replan_factor: float = 8.0
    incremental_views: bool = True

    def ablated(self, **changes):
        """Copy of this config with some switches flipped."""
        from dataclasses import replace
        return replace(self, counter=OpCounter(), **changes)

    # -- adaptive accessors -------------------------------------------------
    #
    # Dispatch sites call these instead of reading module constants, and
    # every one returns ``None`` (= "use the hard-coded default") unless
    # adaptive tuning is on AND a profile is attached AND the profile
    # carries a value.  That triple gate is what makes "profile absent or
    # stale ⇒ bit-identical to defaults" hold by construction.

    def _tuned(self, name):
        if not self.adaptive or self.tuning is None:
            return None
        return getattr(self.tuning, name, None)

    def galloping_crossover(self):
        """Tuned galloping crossover ratio, or ``None`` for the live
        ``repro.sets.cost.GALLOPING_CROSSOVER`` default."""
        return self._tuned("galloping_crossover")

    def density_threshold(self):
        """Tuned uint-vs-bitset inverse-density threshold, or ``None``
        for the ``SIMD_REGISTER_BITS`` default."""
        return self._tuned("density_threshold")

    def fused_block_rows(self):
        """Tuned fused-kernel expansion budget, or ``None`` for
        ``repro.engine.fused.MAX_BLOCK_ROWS``."""
        value = self._tuned("fused_block_rows")
        return None if value is None else int(value)

    def fused_probe_crossover(self):
        """Tuned skew ratio enabling the fused probe sweep, or ``None``
        to keep the sweep disabled."""
        return self._tuned("fused_probe_crossover")

    def effective_parallel_threshold(self):
        """The parallel gate actually in force: the tuned threshold when
        adaptive, else the configured ``parallel_threshold``."""
        value = self._tuned("parallel_threshold")
        return self.parallel_threshold if value is None else int(value)


def enumerate_config_matrix(full=False):
    """``(label, EngineConfig)`` pairs spanning the engine's execution
    paths, for differential testing (:mod:`repro.fuzz`).

    The default is a one-factor-at-a-time covering set: every execution
    mode, parallel strategy, optimizer pass, and set-layout level is
    exercised against the baseline at least once (~a dozen configs).
    ``full=True`` returns the cross product of the high-impact axes
    (execution mode × parallelism × optimizer bundle × layout) for
    deep/nightly runs.

    ``parallel_threshold=0`` in the parallel entries forces the
    work-stealing executor to engage even on fuzz-sized inputs.
    """
    base = dict(execution_mode="interpreted")

    def cfg(**overrides):
        merged = dict(base)
        merged.update(overrides)
        return EngineConfig().ablated(**merged)

    def fuzz_profile():
        # Aggressively non-default constants: an early galloping switch,
        # a much denser bitset bar, a tiny fused budget (forcing
        # FusedFallback re-routes), and a hair-trigger probe sweep —
        # tuned plans must still produce identical results.
        return TuningProfile(galloping_crossover=4.0,
                             density_threshold=64.0,
                             parallel_threshold=1,
                             fused_block_rows=1 << 16,
                             fused_probe_crossover=2.0,
                             source="fuzz-matrix")

    if not full:
        matrix = [
            ("interp", cfg()),
            ("compiled", cfg(execution_mode="compiled")),
            ("interp-steal", cfg(parallel_workers=4,
                                 parallel_threshold=0,
                                 parallel_strategy="steal")),
            ("interp-static", cfg(parallel_workers=4,
                                  parallel_threshold=0,
                                  parallel_strategy="static")),
            ("compiled-steal", cfg(execution_mode="compiled",
                                   parallel_workers=4,
                                   parallel_threshold=0,
                                   parallel_strategy="steal")),
            ("fused", cfg(execution_mode="compiled",
                          fused_kernels=True)),
            ("fused-steal", cfg(execution_mode="compiled",
                                fused_kernels=True,
                                parallel_workers=4,
                                parallel_threshold=0,
                                parallel_strategy="steal")),
            ("shared-tries", cfg(parallel_workers=4,
                                 parallel_threshold=0,
                                 parallel_strategy="steal",
                                 shared_tries=True)),
            ("fused-shared", cfg(execution_mode="compiled",
                                 fused_kernels=True,
                                 shared_tries=True,
                                 parallel_workers=4,
                                 parallel_threshold=0,
                                 parallel_strategy="steal")),
            ("no-prune", cfg(prune_attributes=False)),
            ("no-fold", cfg(fold_constants=False)),
            ("no-cse", cfg(cross_rule_cse=False,
                           eliminate_redundant_bags=False)),
            ("no-ghd", cfg(use_ghd=False, push_selections=False,
                           skip_top_down=False)),
            ("uint-only", cfg(layout_level="uint_only", simd=False,
                              adaptive_algorithms=False)),
            ("bitset-only", cfg(layout_level="bitset_only")),
            ("block", cfg(layout_level="block")),
            ("adaptive", cfg(adaptive=True, tuning=fuzz_profile())),
            ("adaptive-replan", cfg(execution_mode="compiled",
                                    adaptive=True,
                                    tuning=fuzz_profile(),
                                    replan_factor=1e-6)),
            ("adaptive-fused", cfg(execution_mode="compiled",
                                   fused_kernels=True,
                                   adaptive=True,
                                   tuning=fuzz_profile())),
        ]
        return matrix
    matrix = []
    for mode in ("interpreted", "compiled", "fused"):
        for par_label, par in (("serial", {}),
                               ("steal", dict(parallel_workers=4,
                                              parallel_threshold=0,
                                              parallel_strategy="steal")),
                               ("static", dict(parallel_workers=4,
                                               parallel_threshold=0,
                                               parallel_strategy="static"))):
            for opt_label, opt in (
                    ("opt", {}),
                    ("noopt", dict(prune_attributes=False,
                                   fold_constants=False,
                                   cross_rule_cse=False,
                                   eliminate_redundant_bags=False,
                                   push_selections=False,
                                   skip_top_down=False))):
                for layout in ("set", "uint_only", "bitset_only",
                               "block"):
                    label = "%s-%s-%s-%s" % (mode, par_label, opt_label,
                                             layout)
                    if mode == "fused":
                        # "fused" is compiled + block kernels + shared
                        # tries — the full new-path stack in one axis.
                        overrides = dict(execution_mode="compiled",
                                         fused_kernels=True,
                                         shared_tries=True,
                                         layout_level=layout)
                    else:
                        overrides = dict(execution_mode=mode,
                                         layout_level=layout)
                    overrides.update(par)
                    overrides.update(opt)
                    matrix.append((label, cfg(**overrides)))
    return matrix


def enumerate_mutation_matrix():
    """``(label, EngineConfig)`` pairs for the mutation fuzzer
    (:mod:`repro.fuzz` with ``--mutations``).

    Smaller than :func:`enumerate_config_matrix` — mutation cases run
    an interleaved op *sequence* per config, so each config is several
    times the work of a one-shot case — but it still spans the axes
    incremental maintenance interacts with: interpreted vs compiled
    (versioned plan guards), serial vs work-stealing (delta terms
    through the parallel executor), fused kernels, shared tries (the
    arena patch/re-place path), and ``incremental_views=False`` (the
    full-recompute route as its own differential axis).
    """
    base = dict(execution_mode="interpreted")

    def cfg(**overrides):
        merged = dict(base)
        merged.update(overrides)
        return EngineConfig().ablated(**merged)

    return [
        ("interp", cfg()),
        ("compiled", cfg(execution_mode="compiled")),
        ("interp-steal", cfg(parallel_workers=4,
                             parallel_threshold=0,
                             parallel_strategy="steal")),
        ("compiled-steal", cfg(execution_mode="compiled",
                               parallel_workers=4,
                               parallel_threshold=0,
                               parallel_strategy="steal")),
        ("fused", cfg(execution_mode="compiled",
                      fused_kernels=True)),
        ("fused-shared", cfg(execution_mode="compiled",
                             fused_kernels=True,
                             shared_tries=True,
                             parallel_workers=2,
                             parallel_threshold=0,
                             parallel_strategy="steal")),
        ("full-recompute", cfg(incremental_views=False)),
    ]
