"""Semiring annotations and aggregation operators (paper §2.3, §3.2).

Following Green et al.'s provenance semirings, every tuple carries an
annotation; annotations *multiply* when tuples join and are folded with
the aggregate's *plus* when attributes are projected away.  This single
mechanism yields SUM/COUNT (the numeric semiring), MIN/MAX (tropical
semirings), and the EXISTS fold used for set-semantics projection.
"""

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Semiring:
    """One commutative aggregation monoid (the "plus" of a semiring whose
    "times" is ordinary multiplication of float annotations).

    Attributes
    ----------
    name:
        Operator name (``SUM``, ``MIN``, ...).
    zero:
        Identity of ``plus`` — also the "no bindings" marker.
    plus:
        Binary fold.
    reduce:
        Vectorized fold of a numpy array (the leaf-level fast path).
    """

    name: str
    zero: float
    plus: Callable
    reduce: Callable

    def fold_leaf(self, values):
        """Fold a numpy array of annotation products in one shot."""
        if len(values) == 0:
            return self.zero
        return float(self.reduce(values))


SUM = Semiring("SUM", 0.0, lambda a, b: a + b, np.sum)
COUNT = Semiring("COUNT", 0.0, lambda a, b: a + b, np.sum)
MIN = Semiring("MIN", math.inf, min, np.min)
MAX = Semiring("MAX", -math.inf, max, np.max)
#: Boolean OR fold used when projecting under set semantics: a tuple is
#: kept iff at least one extension exists.
EXISTS = Semiring("EXISTS", 0.0, lambda a, b: max(a, b),
                  lambda v: 1.0 if len(v) else 0.0)

_BY_NAME = {"SUM": SUM, "COUNT": COUNT, "MIN": MIN, "MAX": MAX,
            "EXISTS": EXISTS}


def semiring_for(op_name):
    """Look up the semiring for an aggregate operator name."""
    try:
        return _BY_NAME[op_name.upper()]
    except KeyError:
        raise ValueError("unsupported aggregate %r" % (op_name,)) from None


def is_monotone(op_name):
    """MIN/MAX aggregations are monotone, enabling seminaive recursion
    (paper §3.3.2: "we check if the aggregation is monotonically
    increasing or decreasing with a MIN or MAX operator")."""
    return op_name.upper() in ("MIN", "MAX")
