"""Execution statistics for the parallel engine.

The paper reports end-to-end runtimes on 48 threads but gives no
visibility into *why* dynamic load balancing matters; this module makes
the skew argument measurable.  Every parallel bag evaluation records one
:class:`MorselStat` per morsel (which worker ran it, how long, how many
simulated lane ops it charged) plus queue-level counters (steals,
level-0 intersection cache hits).  :class:`ExecStats` aggregates them
into the numbers the benchmarks assert on — most importantly the
max/min worker-busy-time ratio, which is the straggler penalty a static
partitioner pays on power-law graphs and work stealing eliminates.
"""

from dataclasses import dataclass, field


@dataclass
class MorselStat:
    """One morsel's execution record.

    Attributes
    ----------
    index:
        Morsel id, in ascending level-0 candidate order.
    worker:
        Worker that executed the morsel (0-based; serial runs use 0).
    size:
        Number of level-0 candidate values in the morsel.
    cost:
        The scheduler's degree-based cost estimate for the morsel.
    seconds:
        Wall-clock seconds the morsel took inside the worker.
    lane_ops:
        Simulated SIMD+scalar ops the morsel charged into the worker's
        :class:`~repro.sets.cost.OpCounter` copy.
    stolen:
        True when the executing worker differs from the morsel's home
        worker under the static round-robin assignment — i.e. the
        morsel was pulled off the shared queue by an idle worker.
    started:
        ``time.perf_counter()`` timestamp at which the worker began the
        morsel (CLOCK_MONOTONIC, comparable across forked processes).
        0.0 when the executor predates lane attribution.
    """

    index: int
    worker: int
    size: int
    cost: float
    seconds: float
    lane_ops: int = 0
    stolen: bool = False
    started: float = 0.0


@dataclass
class ExecStats:
    """Aggregated execution statistics of one (possibly parallel) query.

    Exposed as ``Database.last_stats`` after every query that engaged
    the parallel executor; ``mode`` records what actually ran:

    ``"forked"``
        Morsels drained from the shared queue by forked workers.
    ``"inline"``
        Morsel loop executed in-process (fork unavailable).
    ``"serial"``
        Parallelism was requested but the bag fell below
        ``parallel_threshold`` (or a single morsel remained).
    ``"fast-path"``
        A serial vectorized fast path answered the bag outright.
    """

    strategy: str = "steal"
    workers: int = 1
    mode: str = "serial"
    morsels: list = field(default_factory=list)
    #: Level-0 intersection memo hits/misses during this execution.
    level0_cache_hits: int = 0
    level0_cache_misses: int = 0
    #: Trie cache hits/misses during this execution.
    trie_cache_hits: int = 0
    trie_cache_misses: int = 0
    #: Which executor ran: ``"interpreted"`` or ``"compiled"``.
    execution_mode: str = "interpreted"
    #: Compiled-path counters — the plan-cache acceptance tests assert
    #: that a repeated query performs zero parses/GHD builds/codegen.
    parses: int = 0
    ghd_builds: int = 0
    codegen_runs: int = 0
    bag_codegen_reuses: int = 0
    compiled_bag_calls: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Fused block-kernel invocations (one per serial bag call or per
    #: morsel routed through a :class:`~repro.engine.fused`
    #: FusedBagKernel); 0 means every bag ran per-tuple.
    fused_blocks: int = 0
    #: Payload bytes of trie/dictionary arrays served from the
    #: database's shared-memory arena during this execution (0 when
    #: ``shared_tries`` is off).
    shm_bytes_mapped: int = 0

    # -- recording ----------------------------------------------------------

    def record_morsel(self, index, worker, size, cost, seconds,
                      lane_ops=0, stolen=False, started=0.0):
        """Append one morsel's record."""
        self.morsels.append(MorselStat(index, worker, size, cost,
                                       seconds, lane_ops, stolen, started))

    # -- derived numbers ----------------------------------------------------

    @property
    def n_morsels(self):
        return len(self.morsels)

    @property
    def steals(self):
        """Morsels executed by a worker other than their home worker."""
        return sum(1 for m in self.morsels if m.stolen)

    @property
    def worker_busy(self):
        """``{worker: total busy seconds}`` over recorded morsels."""
        busy = {}
        for morsel in self.morsels:
            busy[morsel.worker] = busy.get(morsel.worker, 0.0) \
                + morsel.seconds
        return busy

    @property
    def worker_ops(self):
        """``{worker: total simulated lane ops}`` (``repro.sets.cost``)."""
        ops = {}
        for morsel in self.morsels:
            ops[morsel.worker] = ops.get(morsel.worker, 0) + morsel.lane_ops
        return ops

    @property
    def stranded_workers(self):
        """Workers that never received a morsel in a multi-worker run."""
        if self.workers <= 1 or not self.morsels:
            return 0
        return max(0, self.workers - len(self.worker_busy))

    def busy_ratio(self):
        """Max/min per-worker busy time — the straggler penalty.

        1.0 is perfect balance.  Only workers that actually ran a
        morsel participate: dividing by a stranded worker's ~zero busy
        time would report a meaningless ~1e9 ratio, so stranded workers
        are counted separately (:attr:`stranded_workers`) and called
        out by :meth:`describe` instead of poisoning the ratio.
        """
        busy = self.worker_busy
        if not busy:
            return 1.0
        times = list(busy.values())
        slowest = max(times)
        fastest = min(times)
        if slowest <= 0.0:
            return 1.0
        return slowest / max(fastest, 1e-9)

    def morsel_time_ratio(self):
        """Max/min morsel wall time — how fine the cost model sliced."""
        if not self.morsels:
            return 1.0
        times = [max(m.seconds, 1e-9) for m in self.morsels]
        return max(times) / min(times)

    def level0_cache_rate(self):
        """Hit rate of the level-0 intersection memo (0.0 when unused)."""
        total = self.level0_cache_hits + self.level0_cache_misses
        return self.level0_cache_hits / total if total else 0.0

    # -- reporting ----------------------------------------------------------

    def describe(self):
        """Multi-line human-readable summary (used by the CLI)."""
        lines = ["execution mode: %s" % self.execution_mode]
        ran_parallel = bool(self.morsels) or self.mode in ("forked",
                                                           "inline")
        if ran_parallel:
            lines.append(
                "parallel execution: strategy=%s workers=%d mode=%s"
                % (self.strategy, self.workers, self.mode))
            lines.append("  morsels: %d  steals: %d"
                         % (self.n_morsels, self.steals))
            busy = self.worker_busy
            if busy:
                lines.append(
                    "  busy ratio (max/min worker): %.2f   "
                    "morsel time ratio: %.2f"
                    % (self.busy_ratio(), self.morsel_time_ratio()))
                if self.stranded_workers:
                    lines.append(
                        "  stranded workers: %d of %d never received "
                        "a morsel (excluded from busy ratio)"
                        % (self.stranded_workers, self.workers))
                ops = self.worker_ops
                for worker in sorted(busy):
                    lines.append(
                        "  worker %d: %.4fs busy, %d morsel(s), "
                        "%d lane ops"
                        % (worker, busy[worker],
                           sum(1 for m in self.morsels
                               if m.worker == worker),
                           ops.get(worker, 0)))
        elif self.mode == "fast-path":
            lines.append(
                "serial vectorized fast path (no morsels scheduled)")
        lines.append(
            "  level-0 intersection cache: %d hit(s), %d miss(es)"
            % (self.level0_cache_hits, self.level0_cache_misses))
        lines.append(
            "  trie cache: %d hit(s), %d miss(es)"
            % (self.trie_cache_hits, self.trie_cache_misses))
        if self.execution_mode == "compiled":
            lines.append(
                "compiled pipeline: plan cache %d hit(s)/%d miss(es), "
                "%d parse(s), %d GHD build(s), %d codegen run(s) "
                "(%d source reuse(s)), %d generated bag call(s)"
                % (self.plan_cache_hits, self.plan_cache_misses,
                   self.parses, self.ghd_builds, self.codegen_runs,
                   self.bag_codegen_reuses, self.compiled_bag_calls))
        if self.fused_blocks:
            lines.append("  fused block kernels: %d invocation(s)"
                         % self.fused_blocks)
        if self.shm_bytes_mapped:
            lines.append("  shared-memory tries: %d byte(s) mapped"
                         % self.shm_bytes_mapped)
        return "\n".join(lines)
