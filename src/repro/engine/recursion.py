"""Naive and seminaive recursive evaluation (paper §3.3.2).

EmptyHeaded supports a restricted Kleene-star recursion.  The execution
strategy is chosen exactly as the paper describes:

* a fixed iteration count (``*[i=k]``) unrolls the rule ``k`` times with
  *replace* semantics — PageRank's mode (naive recursion);
* a monotone MIN/MAX aggregation runs **seminaive**: only the delta
  (tuples whose value improved last round) feeds the recursive atom, and
  improvements merge into the accumulated relation — SSSP's mode;
* recursion without aggregation runs naive *union* iteration to a
  fixpoint — transitive closure.
"""

import numpy as np

from ..errors import ExecutionError, PlanError
from ..storage.relation import Relation
from .semiring import is_monotone

#: Safety cap for fixpoint loops: recursion that has not converged after
#: this many rounds raises instead of spinning.
MAX_FIXPOINT_ROUNDS = 100000


def execute_recursive(rule, executor, max_rounds=MAX_FIXPOINT_ROUNDS):
    """Run one recursive rule to completion.

    The base case must already be stored in the executor's catalog under
    ``rule.head_name`` (the paper's programs establish it with a prior
    non-recursive rule).  Returns the final relation, which is also
    installed back into the catalog.
    """
    catalog = executor.catalog
    base = catalog.get(rule.head_name)
    if base is None:
        raise PlanError("recursive rule %r has no base case in the catalog"
                        % rule.head_name)
    aggregates = rule.aggregates
    op = aggregates[0].op if aggregates else None
    if rule.iterations is not None:
        result = _naive_replace(rule, executor, rule.iterations)
    elif op is not None and is_monotone(op):
        result = _seminaive(rule, executor, op, max_rounds)
    elif op is None:
        result = _naive_union(rule, executor, max_rounds)
    else:
        raise PlanError(
            "recursion with non-monotone aggregate %r needs a fixed "
            "iteration count (*[i=k])" % op)
    catalog[rule.head_name] = result
    return result


def _run_once(rule, executor):
    """Evaluate the rule body once against the current catalog."""
    from ..query.ast import clone_rule
    flat = clone_rule(rule, recursive=False, iterations=None)
    return executor.execute(flat)


def _naive_replace(rule, executor, iterations):
    """Fixed-iteration unrolling with replace semantics (PageRank)."""
    catalog = executor.catalog
    current = catalog[rule.head_name]
    for _ in range(iterations):
        catalog[rule.head_name] = current
        current = _run_once(rule, executor)
    catalog[rule.head_name] = current
    return current


def _naive_union(rule, executor, max_rounds):
    """Union iteration to fixpoint (transitive-closure style)."""
    catalog = executor.catalog
    current = catalog[rule.head_name].deduplicated()
    for _ in range(max_rounds):
        catalog[rule.head_name] = current
        produced = _run_once(rule, executor)
        merged_data = np.concatenate([current.data, produced.data]) \
            if produced.cardinality else current.data
        merged = Relation(rule.head_name, merged_data).deduplicated()
        if merged.cardinality == current.cardinality:
            return current
        current = merged
    raise ExecutionError("recursion on %r did not converge in %d rounds"
                         % (rule.head_name, max_rounds))


def _seminaive(rule, executor, op, max_rounds):
    """Seminaive evaluation for monotone MIN/MAX aggregation (SSSP).

    Each round substitutes only the *delta* — keys whose value improved —
    for the recursive atom, so work shrinks as distances settle, which is
    the property the paper relies on to stay within 3x of Galois.
    """
    catalog = executor.catalog
    better = (lambda new, old: new < old) if op == "MIN" \
        else (lambda new, old: new > old)
    combine = "min" if op == "MIN" else "max"
    base = catalog[rule.head_name].deduplicated(combine=combine)
    best = {tuple(int(v) for v in row): float(a)
            for row, a in zip(base.data, base.annotations)}
    delta = base
    saved = catalog[rule.head_name]
    try:
        for _ in range(max_rounds):
            if delta.cardinality == 0:
                break
            catalog[rule.head_name] = delta
            produced = _run_once(rule, executor)
            improved_rows = []
            improved_values = []
            if produced.cardinality:
                produced = produced.deduplicated(combine=combine)
                for row, value in zip(produced.data, produced.annotations):
                    key = tuple(int(v) for v in row)
                    value = float(value)
                    old = best.get(key)
                    if old is None or better(value, old):
                        best[key] = value
                        improved_rows.append(key)
                        improved_values.append(value)
            delta = Relation(
                rule.head_name,
                np.asarray(improved_rows, dtype=np.uint32).reshape(
                    -1, base.arity),
                np.asarray(improved_values, dtype=np.float64))
        else:
            raise ExecutionError(
                "seminaive recursion on %r did not converge in %d rounds"
                % (rule.head_name, max_rounds))
    finally:
        catalog[rule.head_name] = saved
    keys = np.asarray(sorted(best), dtype=np.uint32).reshape(-1, base.arity)
    values = np.asarray([best[tuple(int(v) for v in row)] for row in keys],
                        dtype=np.float64)
    return Relation(rule.head_name, keys, values)
