"""Physical planning and GHD plan execution (paper §3.3).

This module is the bottom half of the four-layer pipeline (see
``docs/architecture.md``): the logical work — atom normalization,
rewrites, GHD choice, selection pushdown, attribute ordering — happens
in :mod:`repro.lir`; the executor receives an optimized
:class:`~repro.lir.ir.LogicalRule` and

1. lowers it to per-bag physical plans (evaluation orders, inputs,
   pass-up shapes), interpreted or code-generated;
2. runs Yannakakis' **bottom-up** pass: every bag is evaluated with the
   generic worst-case optimal join, aggregating away attributes its
   parent does not need (early aggregation) and passing the result up as
   an additional input relation — with structurally identical bags
   evaluated once (Appendix B.2), within a rule and (through the
   program-scoped :class:`~repro.engine.memo.BagMemo`) across rules;
3. when head attributes span several bags in a materialization query,
   runs the **top-down** pass joining the retained bag results; the pass
   is elided when the root already covers the head (Appendix B.2);
4. applies the rule's annotation expression (e.g. ``0.15 + 0.85*<<SUM>>``).
"""

import itertools
import time

import numpy as np

from ..errors import ExecutionError, PlanError
from ..obs.trace import maybe_span
from ..ghd.attribute_order import bag_evaluation_order
from ..ghd.equivalence import bag_signature, canonical_attr_indexes
from ..lir import OptimizerOptions, optimize_rule, plan_rule
from ..lir.build import normalize_atom  # noqa: F401  (compat re-export)
from ..query.ast import Agg, BinOp, Num, Ref
from ..sets.optimizer import SetOptimizer
from ..storage.relation import Relation, relation_columns
from ..storage.trie import Trie
from .codegen import InputSpec, generate_bag_plan, static_level_kind, \
    trie_level_kind
from .generic_join import BagEvaluator, BagInput, BagResult, evaluate_bag
from .memo import remap_memoized
from .plan import BagPlan, PhysicalPlan
from .plan_cache import CompiledBag, CompiledRule, PlanCache, \
    config_signature
from .semiring import EXISTS, semiring_for
from .stats import ExecStats

_uid_counter = itertools.count()


#: Delta volume (fraction of relation cardinality) above which a cached
#: trie is rebuilt from scratch rather than patched by journal replay.
PATCH_RATIO = 0.5


class TrieCache:
    """Caches tries per (relation identity, *version*, order, layout).

    Base relations are re-queried constantly (the paper stores both
    orders of every edge relation up front; we build them on first use
    and keep them).  Identity uses a uid attached to each relation, so
    replacing a relation (recursion) naturally invalidates; in-place
    mutation bumps ``relation.version``, so a mutated relation misses
    its old entry.  On such a miss the cache *patches*: it replays the
    relation's delta journal onto the stale trie's sorted arrays
    (:func:`repro.storage.builder.patched_trie`) instead of re-sorting
    from scratch, then retires the stale entry — invalidation is
    surgical, other relations' entries stay warm.

    The cache doubles as the parallel engine's *process-shared read
    path*: every trie a query needs is built here, in the parent, before
    any worker forks — children then read the structures copy-on-write
    and never build tries themselves.  On top of the tries it memoizes
    level-0 intersections (keyed by the participating sets' identities),
    so repeated queries over the same relations skip the outermost
    intersection too.  Hit/miss counters feed
    :class:`~repro.engine.stats.ExecStats`.

    Arena-pinned tries cannot be freed individually (the arena is a
    bump allocator), so retiring one charges its placed bytes to
    :attr:`arena_waste`; ``Database`` compacts the whole arena once
    waste dominates.
    """

    def __init__(self):
        self._tries = {}
        self._level0 = {}
        self.hits = 0
        self.misses = 0
        self.level0_hits = 0
        self.level0_misses = 0
        #: Stale-entry rebuilds served by journal replay (vs full sorts).
        self.patches = 0
        #: Bytes of retired arena-pinned tries still occupying the arena.
        self.arena_waste = 0
        #: Optional SharedTrieArena every cache-built trie's bulk arrays
        #: are placed into (:meth:`attach_arena`); pinned tries then
        #: stay warm in shared memory across queries and forks.
        self.arena = None

    def attach_arena(self, arena):
        """Route future trie builds through ``arena`` shared memory.

        Already-cached tries keep their private arrays (sharing them
        retroactively would race against live readers); only misses
        from here on are placed into the arena.
        """
        self.arena = arena
        self.arena_waste = 0

    @staticmethod
    def _uid(relation):
        uid = getattr(relation, "_trie_uid", None)
        if uid is None:
            uid = next(_uid_counter)
            relation._trie_uid = uid
        return uid

    def get(self, relation, key_order, layout_level,
            density_threshold=None):
        """Fetch (building on miss) the trie for a relation/order/layout.

        ``density_threshold`` is the tuned uint/bitset crossover (part
        of the key: tuned and default layouts are distinct tries)."""
        key = (self._uid(relation), getattr(relation, "version", 0),
               tuple(key_order), layout_level, density_threshold)
        trie = self._tries.get(key)
        if trie is not None:
            self.hits += 1
            return trie
        self.misses += 1
        optimizer = SetOptimizer(layout_level, density_threshold)
        stale_key, stale_trie = self._stale_entry(key)
        trie = None
        if stale_trie is not None:
            trie = self._patched(stale_trie, stale_key[1], relation,
                                 key_order, optimizer)
            if trie is not None:
                self.patches += 1
        if trie is None:
            trie = Trie(relation, key_order=key_order, optimizer=optimizer)
        trie._cache_owned = True
        if self.arena is not None and not self.arena.closed:
            trie.share_into(self.arena)
        if stale_key is not None:
            self._drop_entry(stale_key)
        self._tries[key] = trie
        return trie

    def _stale_entry(self, key):
        """The cached entry differing from ``key`` only by version."""
        uid, _, order, layout, density = key
        for k in self._tries:
            if k[0] == uid and k[2:] == (order, layout, density):
                return k, self._tries[k]
        return None, None

    @staticmethod
    def _patched(stale_trie, old_version, relation, key_order, optimizer):
        """Patch a stale trie via journal replay, or ``None`` to rebuild.

        Declines when the journal no longer reaches back to the stale
        version (a merge trimmed it) or the change volume crossed
        :data:`PATCH_RATIO` — a full sorted build is cheaper then.
        """
        delta = getattr(relation, "delta", None)
        if delta is None or relation.arity == 0:
            return None
        entries = delta.changes_since(old_version)
        if not entries:
            return None
        volume = sum(entry.data.shape[0] for entry in entries)
        if volume > PATCH_RATIO * max(relation.cardinality, 1):
            return None
        from ..storage.builder import patched_trie
        return patched_trie(stale_trie, relation, key_order, optimizer,
                            entries)

    def level0_intersection(self, sets, config):
        """Memoized intersection of trie root sets, as a sorted array.

        ``sets`` must be root sets of *cache-owned* tries (the memo
        keeps strong references, so their identities stay valid for the
        cache's lifetime).  Keyed by set identities plus the config
        switches that change the result-independent charging — results
        are identical across algorithms, so only identities matter for
        correctness, but keeping the switches in the key makes op
        accounting reproducible per configuration.
        """
        from ..sets.intersect import _config_crossover, intersect_many
        crossover = _config_crossover(config)
        key = (tuple(sorted(id(s) for s in sets)),
               config.uint_algorithm, config.adaptive_algorithms,
               config.simd, crossover)
        entry = self._level0.get(key)
        if entry is not None:
            kept_sets, values = entry
            self.level0_hits += 1
            return values
        self.level0_misses += 1
        if len(sets) == 1:
            values = sets[0].to_array()
        else:
            values = intersect_many(
                sets, counter=config.counter,
                algorithm=config.uint_algorithm,
                adaptive=config.adaptive_algorithms,
                simd=config.simd, crossover=crossover).to_array()
        self._level0[key] = (tuple(sets), values)
        return values

    def _drop_entry(self, key):
        """Retire one cached trie: charge arena waste, clean the memo."""
        trie = self._tries.pop(key, None)
        if trie is None:
            return
        self.arena_waste += getattr(trie, "_shm_bytes", 0)
        dropped = {id(trie.root.set)}
        stale_memo = [k for k in self._level0 if dropped & set(k[0])]
        for memo_key in stale_memo:
            del self._level0[memo_key]

    def invalidate(self, relation):
        """Drop every cached trie (and level-0 memo entry) of
        ``relation``, across all cached versions."""
        uid = getattr(relation, "_trie_uid", None)
        if uid is None:
            return
        for key in [k for k in self._tries if k[0] == uid]:
            self._drop_entry(key)

    def __len__(self):
        return len(self._tries)


def eval_expression(expr, agg_value, env):
    """Evaluate an annotation expression tree.

    ``agg_value`` may be a scalar or a numpy array (vectorized over the
    output tuples); ``env`` maps scalar-relation names to floats.
    """
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Ref):
        if expr.name not in env:
            raise ExecutionError("expression references unknown scalar "
                                 "relation %r" % expr.name)
        return env[expr.name]
    if isinstance(expr, Agg):
        if agg_value is None:
            raise ExecutionError("aggregate used outside an aggregation "
                                 "context")
        return agg_value
    if isinstance(expr, BinOp):
        left = eval_expression(expr.left, agg_value, env)
        right = eval_expression(expr.right, agg_value, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
        raise ExecutionError("unknown operator %r" % expr.op)
    raise ExecutionError("unknown expression node %r" % (expr,))


class RuleExecutor:
    """Executes one optimized, non-recursive rule against a catalog.

    All logical planning is delegated to :mod:`repro.lir`; this class
    owns only physical concerns — tries, bag evaluation, Yannakakis
    passes, finalization — plus the compiled-mode plan cache keyed on
    the canonical (alpha-invariant) optimized IR.
    """

    def __init__(self, catalog, config, trie_cache=None, env=None,
                 plan_cache=None):
        self.catalog = catalog
        self.config = config
        self.cache = trie_cache if trie_cache is not None else TrieCache()
        self.env = env if env is not None else {}
        self.plans = plan_cache if plan_cache is not None else PlanCache()
        self.last_plan = None  # PhysicalPlan of the latest execution
        self.last_stats = None  # ExecStats of the latest parallel run
        self.last_logical = None  # LogicalRule of the latest execution
        #: Program-scoped cross-rule bag memo (a
        #: :class:`~repro.engine.memo.BagMemo`), installed by
        #: ``Database.query`` for the duration of a program.
        self.program_memo = None
        self._parallel_node = None  # id() of the bag chosen for forking
        #: Adaptive re-planning state (active when ``config.adaptive``).
        #: ``card_hints`` are caller-supplied cardinality overrides
        #: (``Database.set_cardinality_hint``); ``card_feedback`` is
        #: what mispredicted executions observed.  Both feed GHD choice
        #: as ``{atom name: cardinality}`` — feedback wins.
        self.card_hints = {}
        self.card_feedback = {}
        self.replans = 0
        self.last_mispredict_ratio = 0.0
        #: Banded GHD-plan memo shared across this executor's runs: the
        #: LP-heavy decomposition search is skipped while a rule's shape
        #: recurs and its input cardinalities stay in the same log2
        #: band — the steady state of incremental view refreshes, where
        #: every delta term replans the same tiny rule per mutation.
        self.ghd_memo = {}

    def _options(self):
        options = OptimizerOptions.from_config(self.config)
        if self.card_hints or self.card_feedback:
            merged = dict(self.card_hints)
            merged.update(self.card_feedback)
            options.card_overrides = merged
        options.ghd_memo = self.ghd_memo
        return options

    # -- public ---------------------------------------------------------------

    def execute(self, rule):
        """Run ``rule`` and return the result :class:`Relation`.

        The result carries the head's columns in head-variable order and,
        for aggregation rules, an annotation column.
        """
        mode = self.config.execution_mode
        if mode == "compiled":
            return self.execute_compiled_mode(rule)
        if mode != "interpreted":
            raise ExecutionError("unknown execution_mode %r" % (mode,))
        self.last_stats = None
        logical = optimize_rule(rule, self.catalog, self._options())
        self.last_logical = logical
        if logical.has_empty_guard:
            return self._empty_output(rule)
        self._validate(logical)
        agg = logical.aggregate
        if agg is not None and agg.op == "COUNT" and agg.arg != "*":
            result = self._execute_count_distinct(logical, agg)
        else:
            result = self._execute_plan(logical)
        # Interpreted plans are rebuilt per run, so a mispredict feeds
        # observed cardinalities straight into the next planning pass
        # (there is no cache entry to evict).
        self._adaptive_check()
        return result

    @staticmethod
    def _validate(logical):
        """Enforce the head/aggregate restrictions the builder recorded.

        Deferred until after the empty-guard short-circuit so a rule
        with a statically empty guard atom returns an empty result
        instead of raising, matching the engine's historical behavior.
        """
        if logical.unbound_head:
            raise PlanError("head variables %s unbound in the body"
                            % logical.unbound_head)
        if logical.too_many_aggregates:
            raise PlanError("at most one aggregate per rule is supported")

    def compile(self, rule):
        """Compile ``rule`` to a :class:`PhysicalPlan` without running it.

        Powers ``Database.plan``/``explain``: the GHD choice, global
        attribute order, and per-bag evaluation orders are all decided
        before any tuple is touched; only the runtime facts (bag reuse,
        whether the top-down pass ran) stay at their defaults.
        """
        logical = optimize_rule(rule, self.catalog, self._options())
        self.last_logical = logical
        plan_rule(logical, self._options())
        atoms = logical.atoms
        ghd = logical.ghd
        aggregate_mode = logical.aggregate_mode
        plan = PhysicalPlan(rule=rule, ghd=ghd,
                            global_order=logical.global_order,
                            aggregate_mode=aggregate_mode)
        parents = ghd.parent_map()
        head = frozenset(logical.head_vars)
        for node in ghd.nodes_bottom_up():
            parent = parents[node]
            shared = node.chi_set & parent.chi_set if parent is not None \
                else frozenset()
            keep = set(shared)
            if not aggregate_mode:
                for child in node.children:
                    keep |= node.chi_set & child.chi_set
            out_attrs = [a for a in node.chi if a in head or a in keep]
            eval_order = bag_evaluation_order(node.chi, out_attrs,
                                              logical.global_order)
            plan.bags.append(BagPlan(
                chi=tuple(node.chi), eval_order=tuple(eval_order),
                out_attrs=tuple(out_attrs),
                inputs=[atoms[e.index].name for e in node.edges],
                width=node.width()))
        return plan

    # -- cross-rule memo ------------------------------------------------------

    def _memo_probe(self, memo, signature, canonical_out, out_attrs):
        """Check the per-rule memo, then the program-scoped one."""
        if not self.config.eliminate_redundant_bags:
            return None
        entry = memo.get(signature)
        if entry is None and self.program_memo is not None:
            entry = self.program_memo.get(signature, self.catalog)
        if entry is None:
            return None
        return remap_memoized(entry, canonical_out, out_attrs)

    def _memo_store(self, memo, signature, result, canonical_out, logical):
        memo[signature] = (result, canonical_out)
        if self.program_memo is not None:
            self.program_memo.put(signature, result, canonical_out,
                                  _relation_guards(logical))

    # -- execution ------------------------------------------------------------

    def _execute_plan(self, logical):
        agg = logical.aggregate
        aggregate_mode = logical.aggregate_mode
        plan_rule(logical, self._options())
        atoms = logical.atoms
        ghd = logical.ghd
        duplicates = logical.duplicates
        global_order = logical.global_order
        sig_names = logical.sig_names()
        semiring = semiring_for(agg.op) if aggregate_mode else EXISTS
        # Multi-bag parallelism: fork only the largest bag (it dominates
        # the runtime; the rest evaluate serially in the parent).
        self._parallel_node = None
        cache_marks = None
        if self.config.parallel_workers > 1:
            self._parallel_node = _largest_bag_node(ghd, atoms)
            self.last_stats = ExecStats(
                strategy=self.config.parallel_strategy,
                workers=self.config.parallel_workers)
            cache_marks = (self.cache.hits, self.cache.misses,
                           self.cache.level0_hits,
                           self.cache.level0_misses)
        parents = ghd.parent_map()
        head = frozenset(logical.head_vars)
        retained = {}
        signatures = {}
        memo = {}
        plan = PhysicalPlan(rule=logical.rule, ghd=ghd,
                            global_order=global_order,
                            aggregate_mode=aggregate_mode)
        self.last_plan = plan
        for node in ghd.nodes_bottom_up():
            parent = parents[node]
            shared = node.chi_set & parent.chi_set if parent is not None \
                else frozenset()
            keep = set(shared)
            if not aggregate_mode:
                # The top-down pass joins retained results on the
                # child-shared attributes, so they must survive here.
                for child in node.children:
                    keep |= node.chi_set & child.chi_set
            out_attrs = [a for a in node.chi if a in head or a in keep]
            signature = bag_signature(
                node, out_attrs,
                [signatures[id(c)] for c in node.children],
                aggregation_sig=(semiring.name, aggregate_mode),
                edge_names=sig_names)
            canonical_out = canonical_attr_indexes(node.edges, out_attrs,
                                                   edge_names=sig_names)
            reused = self._memo_probe(memo, signature, canonical_out,
                                      out_attrs)
            eval_order = bag_evaluation_order(node.chi, out_attrs,
                                              global_order)
            bag_plan = BagPlan(
                chi=tuple(node.chi), eval_order=tuple(eval_order),
                out_attrs=tuple(out_attrs),
                inputs=[atoms[e.index].name for e in node.edges]
                + ["pass:%s" % ",".join(sorted(c.chi_set & node.chi_set))
                   for c in node.children],
                width=node.width(),
                reused_from_signature=reused is not None)
            plan.bags.append(bag_plan)
            if reused is not None:
                retained[id(node)] = reused
                signatures[id(node)] = signature
                continue
            bag_plan.parallelized = self._parallel_node is not None \
                and id(node) == self._parallel_node
            result = self._timed_bag(
                bag_plan,
                lambda: self._evaluate_bag(node, atoms, out_attrs,
                                           global_order, semiring,
                                           aggregate_mode, retained,
                                           duplicates, bag_plan))
            retained[id(node)] = result
            signatures[id(node)] = signature
            self._memo_store(memo, signature, result, canonical_out,
                             logical)
        if cache_marks is not None:
            hits0, misses0, l0_hits0, l0_misses0 = cache_marks
            self.last_stats.trie_cache_hits = self.cache.hits - hits0
            self.last_stats.trie_cache_misses = self.cache.misses - misses0
            self.last_stats.level0_cache_hits = \
                self.cache.level0_hits - l0_hits0
            self.last_stats.level0_cache_misses = \
                self.cache.level0_misses - l0_misses0
            if self.cache.arena is not None:
                self.last_stats.shm_bytes_mapped = self.cache.arena.nbytes
        root_result = retained[id(ghd.root)]
        if aggregate_mode:
            return self._finish_aggregate(logical, root_result)
        return self._finish_materialize(logical, ghd, retained, root_result)

    def _timed_bag(self, bag_plan, evaluate):
        """Evaluate one bag, recording wall time, charged lane ops, and
        (when tracing) a ``bag:`` span.  The always-on part is two
        clock reads and one counter delta per bag — bags are few."""
        counter = self.config.counter
        ops_before = counter.total_ops
        start = time.perf_counter()
        with maybe_span(self.config.tracer,
                        "bag:%s" % ",".join(bag_plan.chi), "execute",
                        width=bag_plan.width,
                        parallel=bag_plan.parallelized):
            result = evaluate()
        bag_plan.actual_seconds = time.perf_counter() - start
        bag_plan.actual_ops = counter.total_ops - ops_before
        if self.config.adaptive:
            bag_plan.predicted_ops = self._predict_bag_ops(bag_plan)
        return result

    def _predict_bag_ops(self, bag_plan):
        """Op-model prediction for one bag *as the planner saw it*.

        Input profiles hold the true runtime cardinalities; when the
        planner worked from hints (or prior feedback) we substitute
        those estimates back in, so the prediction diverges from
        ``actual_ops`` exactly when the planner's cardinalities were
        wrong — that divergence is the re-planning trigger.
        """
        profiles = bag_plan.input_profiles
        if not profiles or not bag_plan.eval_order:
            return None
        estimates = dict(self.card_hints)
        estimates.update(self.card_feedback)
        if estimates:
            adjusted = []
            for profile in profiles:
                est = estimates.get(profile["name"])
                if est is None:
                    adjusted.append(profile)
                    continue
                est = max(1, int(est))
                card = max(1, int(profile["cardinality"]))
                root = max(1, int(profile["root_card"]))
                # Scale the root fan-out proportionally with the
                # cardinality estimate; the root set can never exceed
                # the total tuple count.
                scaled_root = min(est, max(1, int(round(root * est / card))))
                profile = dict(profile)
                profile["cardinality"] = est
                profile["root_card"] = scaled_root
                adjusted.append(profile)
            profiles = adjusted
        from ..obs.explain import predict_bag_ops
        return predict_bag_ops(bag_plan.eval_order, profiles,
                               simd=self.config.simd,
                               crossover=self.config.galloping_crossover())

    def _adaptive_check(self, key=None):
        """Mispredict detection (tentpole part 2): compare the op-model
        prediction against the charged ops of each bag of the last
        plan.  When a bag overshoots the prediction by more than
        ``replan_factor``, harvest the observed base-relation
        cardinalities as planner feedback and surgically evict the
        compiled rule (when ``key`` names one) so the next execution
        re-plans with ground truth.  Returns whether an entry was
        evicted."""
        if not self.config.adaptive or self.last_plan is None:
            return False
        worst = 0.0
        for bag in self.last_plan.bags:
            if not bag.predicted_ops or not bag.actual_ops:
                continue
            worst = max(worst, bag.actual_ops / bag.predicted_ops)
        self.last_mispredict_ratio = worst
        metrics = self.config.metrics
        if metrics is not None:
            metrics.set_gauge("tuning.mispredict_ratio", worst)
        if worst <= self.config.replan_factor:
            return False
        for bag in self.last_plan.bags:
            for profile in bag.input_profiles or ():
                name = profile.get("name") or ""
                if name.startswith("pass:"):
                    continue  # pass-up inputs are not planner estimates
                self.card_feedback[name] = int(profile["cardinality"])
        evicted = key is not None and self.plans.evict_rule(key)
        self.replans += 1
        if metrics is not None:
            metrics.inc("tuning.replans")
        return evicted

    def _evaluate_bag(self, node, atoms, out_attrs, global_order, semiring,
                      aggregate_mode, retained, duplicates,
                      bag_plan=None):
        eval_order = bag_evaluation_order(node.chi, out_attrs, global_order)
        inputs = []
        for edge in node.edges:
            atom = atoms[edge.index]
            ordered_vars = [a for a in eval_order if a in atom.variables]
            key_order = tuple(atom.variables.index(a)
                              for a in ordered_vars)
            trie = self.cache.get(atom.relation, key_order,
                                  self.config.layout_level,
                                  self.config.density_threshold())
            is_duplicate = (id(node), edge.index) in duplicates
            inputs.append(BagInput(
                trie, ordered_vars,
                annotated=atom.annotated and not is_duplicate,
                name=atom.name))
        scalar_factor = 1.0
        dead = False
        for child in node.children:
            child_result = retained[id(child)]
            if _is_disconnected_child(child_result, node.chi_set):
                # Disconnected child (no shared attributes): an empty
                # one admits no bindings, so the whole bag is dead; in
                # aggregate mode a live one's fold multiplies in as a
                # scalar (distributivity over the cross product); in
                # materialize mode any columns it carries re-enter in
                # the top-down pass.
                if not _bag_alive(child_result, semiring.zero):
                    dead = True
                elif aggregate_mode:
                    scalar_factor *= _child_scalar(child_result, semiring)
                continue
            passed = self._pass_up(child_result, node.chi_set,
                                   aggregate_mode, semiring)
            if passed is None:
                continue
            relation, annotated = passed
            ordered_vars = [a for a in eval_order
                            if a in relation_columns(relation)]
            key_order = tuple(relation_columns(relation).index(a)
                              for a in ordered_vars)
            trie = Trie(relation, key_order=key_order,
                        optimizer=SetOptimizer(self.config.layout_level,
                                               self.config.density_threshold()))
            inputs.append(BagInput(trie, ordered_vars,
                                   annotated=annotated,
                                   name=relation.name))
        if bag_plan is not None:
            bag_plan.input_profiles = _input_profiles(inputs)
        out_count = len(out_attrs)
        if dead:
            return BagResult(out_attrs,
                             np.empty((0, out_count), dtype=np.uint32),
                             annotations=np.empty(0), scalar=semiring.zero)
        if self._parallel_node is not None \
                and id(node) == self._parallel_node:
            from .parallel import evaluate_bag_parallel
            result = evaluate_bag_parallel(
                eval_order, out_count, inputs, semiring, self.config,
                cache=self.cache, stats=self.last_stats)
        else:
            result = evaluate_bag(eval_order, out_count, inputs, semiring,
                                  self.config)
        if aggregate_mode and scalar_factor != 1.0:
            if result.scalar is not None:
                result.scalar *= scalar_factor
            if result.annotations is not None:
                result.annotations = result.annotations * scalar_factor
        return result

    def _pass_up(self, child_result, parent_chi, aggregate_mode, semiring):
        """Turn a child's retained result into the parent's input relation.

        Aggregate mode: the child result (already aggregated onto its out
        attributes, all of which the parent can see) flows up annotated.
        Materialize mode: only the shared columns flow up, as an
        unannotated semijoin filter (annotations re-enter in the
        top-down pass).
        """
        attrs = list(child_result.out_attrs)
        if not attrs:
            return None  # scalar children contribute via the guard check
        if aggregate_mode:
            relation = Relation("pass:" + ",".join(attrs),
                                child_result.data,
                                child_result.annotations)
            relation.attr_names = tuple(attrs)
            return relation, child_result.annotations is not None
        shared_cols = [i for i, a in enumerate(attrs) if a in parent_chi]
        shared_attrs = [attrs[i] for i in shared_cols]
        data = child_result.data[:, shared_cols]
        relation = Relation("pass:" + ",".join(shared_attrs),
                            data).deduplicated()
        relation.attr_names = tuple(shared_attrs)
        return relation, False

    # -- compiled execution ---------------------------------------------------

    def execute_compiled_mode(self, rule, stats=None):
        """Run ``rule`` through the code-generating pipeline (§3.3).

        The rule is compiled at most once per catalog state: the plan
        cache keys on the *optimized logical IR's* canonical form
        (:meth:`repro.lir.ir.LogicalRule.cache_key` — invariant under
        variable renaming, so alpha-renamed queries share one entry)
        plus the result-affecting config switches, and revalidates by
        relation identity, so a repeated query skips GHD search and
        codegen entirely.  ``stats`` carries program-level counters when
        ``Database.query`` drives a multi-rule program; a fresh
        :class:`~repro.engine.stats.ExecStats` is created otherwise.
        """
        if stats is None:
            stats = ExecStats(execution_mode="compiled",
                              strategy=self.config.parallel_strategy,
                              workers=self.config.parallel_workers)
        self.last_stats = stats
        logical = optimize_rule(rule, self.catalog, self._options())
        self.last_logical = logical
        key = (logical.cache_key(), config_signature(self.config))
        with maybe_span(self.config.tracer, "plan_cache.lookup",
                        "cache") as span:
            compiled = self.plans.get_rule(key, self.catalog)
            if span is not None:
                span.args["hit"] = compiled is not None
        tier = "miss" if compiled is None else "hit"
        if compiled is None:
            stats.plan_cache_misses += 1
            compiled = self.compile_rule(logical, stats)
            self.plans.put_rule(key, compiled)
        else:
            stats.plan_cache_hits += 1
        metrics = self.config.metrics
        if metrics is not None:
            # Labeled series (one per tier) rather than two metric
            # names: the telemetry exposition renders them as one
            # family, and dashboards can ratio them directly.
            metrics.inc("plan_cache.lookups", labels={"tier": tier})
        result = self.run_compiled(compiled, stats)
        # Mispredict check runs after every compiled execution; on
        # divergence it evicts exactly this rule's cache entry, so the
        # next call re-plans with the harvested cardinality feedback.
        # (Statically-empty rules never ran a plan — ``last_plan`` would
        # be a previous query's.)
        if compiled.kind != "empty":
            self._adaptive_check(key)
        return result

    def compile_rule(self, logical, stats):
        """Lower one optimized non-recursive rule to a
        :class:`CompiledRule`.

        Performs the same validation and plan choice as :meth:`execute`
        but stops before touching any tuples beyond trie construction:
        the result pins the catalog relations it read (``guards``) and
        holds one generated function per GHD bag.
        """
        guards = _relation_guards(logical)
        if logical.has_empty_guard:
            return CompiledRule("empty", logical.rule, guards,
                                logical=logical)
        self._validate(logical)
        agg = logical.aggregate
        if agg is not None and agg.op == "COUNT" and agg.arg != "*":
            if agg.arg in logical.head_vars:
                raise PlanError("COUNT argument %r is a head variable"
                                % agg.arg)
            pseudo_head = tuple(logical.head_vars) + (agg.arg,)
            pseudo = logical.with_head(pseudo_head)
            inner = self._compile_plan(pseudo, guards, stats)
            return CompiledRule("count_distinct", logical.rule, guards,
                                inner=inner, logical=logical)
        return self._compile_plan(logical, guards, stats)

    def _compile_plan(self, logical, guards, stats):
        """Choose the GHD and lower every bag to generated code.

        Structurally identical bags (same evaluation order, head split,
        semiring, and per-input layouts) share one compiled source via
        the plan cache's bag-source tier — codegen runs once per shape,
        not once per bag.
        """
        agg = logical.aggregate
        aggregate_mode = logical.aggregate_mode
        stats.ghd_builds += 1
        plan_rule(logical, self._options())
        atoms = logical.atoms
        ghd = logical.ghd
        duplicates = logical.duplicates
        global_order = logical.global_order
        sig_names = logical.sig_names()
        semiring = semiring_for(agg.op) if aggregate_mode else EXISTS
        parents = ghd.parent_map()
        head = frozenset(logical.head_vars)
        bags = {}
        signatures = {}
        for node in ghd.nodes_bottom_up():
            parent = parents[node]
            shared = node.chi_set & parent.chi_set if parent is not None \
                else frozenset()
            keep = set(shared)
            if not aggregate_mode:
                for child in node.children:
                    keep |= node.chi_set & child.chi_set
            wanted = {a for a in node.chi if a in head or a in keep}
            eval_order = tuple(bag_evaluation_order(node.chi, wanted,
                                                    global_order))
            # The generated function (like the interpreter's
            # ``evaluate_bag``) emits columns as ``eval_order[:k]`` —
            # record exactly that, or the baked pass-up key orders
            # would address permuted columns.
            out_attrs = tuple(eval_order[:len(wanted)])
            signature = bag_signature(
                node, out_attrs,
                [signatures[id(c)] for c in node.children],
                aggregation_sig=(semiring.name, aggregate_mode),
                edge_names=sig_names)
            signatures[id(node)] = signature
            canonical_out = canonical_attr_indexes(node.edges, out_attrs,
                                                   edge_names=sig_names)
            specs = []
            base_inputs = []
            for edge in node.edges:
                atom = atoms[edge.index]
                ordered_vars = tuple(a for a in eval_order
                                     if a in atom.variables)
                key_order = tuple(atom.variables.index(a)
                                  for a in ordered_vars)
                trie = self.cache.get(atom.relation, key_order,
                                      self.config.layout_level,
                                      self.config.density_threshold())
                annotated = atom.annotated \
                    and (id(node), edge.index) not in duplicates
                kinds = tuple(
                    trie_level_kind(trie, depth,
                                    self.config.layout_level)
                    for depth in range(len(ordered_vars)))
                base_inputs.append(BagInput(trie, ordered_vars,
                                            annotated=annotated,
                                            name=atom.name))
                specs.append(InputSpec(atom.name, ordered_vars,
                                       annotated=annotated, kinds=kinds))
            # Pass-up inputs have statically known shapes: the child's
            # out attributes are fixed by the GHD, and aggregate-mode
            # results always carry annotations (materialize-mode
            # pass-ups are unannotated semijoin filters).
            passups = []
            for child in node.children:
                child_out = bags[id(child)].out_attrs
                if not child_out:
                    continue
                if aggregate_mode:
                    up_attrs = list(child_out)
                    annotated = True
                else:
                    up_attrs = [a for a in child_out
                                if a in node.chi_set]
                    if not up_attrs:
                        # Disconnected child: nothing flows up as a
                        # semijoin filter; it acts as an existence
                        # guard at runtime and its columns re-enter in
                        # the top-down pass.
                        continue
                    annotated = False
                ordered_vars = tuple(a for a in eval_order
                                     if a in up_attrs)
                key_order = tuple(up_attrs.index(a)
                                  for a in ordered_vars)
                passups.append((ordered_vars, key_order, annotated))
                kind = static_level_kind(self.config.layout_level)
                specs.append(InputSpec(
                    "pass:" + ",".join(up_attrs), ordered_vars,
                    annotated=annotated,
                    kinds=(kind,) * len(ordered_vars)))
            input_names = [atoms[e.index].name for e in node.edges] \
                + ["pass:%s" % ",".join(sorted(c.chi_set & node.chi_set))
                   for c in node.children]
            # The bag-source tier is keyed on this signature alone, so
            # the fused flag must join it — fused and per-tuple plans
            # for the same shape are distinct compiled artifacts.
            bag_sig = ("bag", eval_order, len(out_attrs), semiring.name,
                       tuple(spec.signature() for spec in specs),
                       self.config.fused_kernels)
            generated = self.plans.get_bag_code(bag_sig)
            if generated is None:
                stats.codegen_runs += 1
                with maybe_span(self.config.tracer, "codegen", "compile",
                                bag=",".join(node.chi)):
                    generated = generate_bag_plan(
                        eval_order, len(out_attrs), specs, semiring,
                        fused=self.config.fused_kernels)
                self.plans.put_bag_code(bag_sig, generated)
            else:
                stats.bag_codegen_reuses += 1
            bags[id(node)] = CompiledBag(
                eval_order, out_attrs, base_inputs, passups, generated,
                chi=node.chi, width=node.width(),
                input_names=input_names, signature=signature,
                canonical_out=canonical_out)
        return CompiledRule("plan", logical.rule, guards, ghd=ghd,
                            duplicates=duplicates,
                            global_order=global_order, semiring=semiring,
                            aggregate_mode=aggregate_mode, bags=bags,
                            logical=logical)

    def run_compiled(self, compiled, stats):
        """Execute a :class:`CompiledRule` against the current catalog."""
        if compiled.kind == "empty":
            return self._empty_output(compiled.rule)
        if compiled.kind == "count_distinct":
            distinct = self._run_compiled_plan(compiled.inner, stats)
            return _finish_count_distinct(compiled.logical, distinct,
                                          dict(self.env))
        return self._run_compiled_plan(compiled, stats)

    def _run_compiled_plan(self, compiled, stats):
        """Yannakakis over precompiled bags (mirrors
        :meth:`_execute_plan` with all planning already done)."""
        logical = compiled.logical
        ghd = compiled.ghd
        semiring = compiled.semiring
        aggregate_mode = compiled.aggregate_mode
        marks = (self.cache.hits, self.cache.misses,
                 self.cache.level0_hits, self.cache.level0_misses)
        # The parallel knobs deliberately stay out of the cache key, so
        # the forked bag is re-chosen per run from the baked tries.
        parallel_node = None
        if self.config.parallel_workers > 1:
            best_size = -1
            for node in ghd.nodes_bottom_up():
                size = sum(inp.trie.cardinality for inp
                           in compiled.bags[id(node)].base_inputs)
                if size > best_size:
                    parallel_node, best_size = id(node), size
        self._parallel_node = parallel_node
        retained = {}
        memo = {}
        plan = PhysicalPlan(rule=compiled.rule, ghd=ghd,
                            global_order=compiled.global_order,
                            aggregate_mode=aggregate_mode)
        self.last_plan = plan
        for node in ghd.nodes_bottom_up():
            cbag = compiled.bags[id(node)]
            reused = self._memo_probe(memo, cbag.signature,
                                      cbag.canonical_out, cbag.out_attrs)
            bag_plan = BagPlan(
                chi=cbag.chi, eval_order=cbag.eval_order,
                out_attrs=cbag.out_attrs,
                inputs=list(cbag.input_names), width=cbag.width,
                reused_from_signature=reused is not None)
            plan.bags.append(bag_plan)
            if reused is not None:
                retained[id(node)] = reused
                continue
            bag_plan.parallelized = parallel_node is not None \
                and id(node) == parallel_node
            result = self._timed_bag(
                bag_plan,
                lambda: self._run_compiled_bag(node, cbag, semiring,
                                               aggregate_mode, retained,
                                               stats, bag_plan))
            retained[id(node)] = result
            self._memo_store(memo, cbag.signature, result,
                             cbag.canonical_out, logical)
        stats.trie_cache_hits += self.cache.hits - marks[0]
        stats.trie_cache_misses += self.cache.misses - marks[1]
        stats.level0_cache_hits += self.cache.level0_hits - marks[2]
        stats.level0_cache_misses += self.cache.level0_misses - marks[3]
        if self.cache.arena is not None:
            stats.shm_bytes_mapped = self.cache.arena.nbytes
        root_result = retained[id(ghd.root)]
        if aggregate_mode:
            return self._finish_aggregate(logical, root_result)
        return self._finish_materialize(logical, ghd, retained, root_result)

    def _run_compiled_bag(self, node, cbag, semiring, aggregate_mode,
                          retained, stats, bag_plan=None):
        """Evaluate one bag through its generated function.

        Child pass-ups are built exactly as in :meth:`_evaluate_bag`;
        should a pass-up's runtime shape ever disagree with the baked
        spec, the reference interpreter evaluates the same inputs
        instead (cannot happen with the current planner, but the guard
        keeps the fallback airtight).
        """
        inputs = list(cbag.base_inputs)
        tries = [bag_input.trie for bag_input in cbag.base_inputs]
        scalar_factor = 1.0
        dead = False
        spec_ok = True
        passups = iter(cbag.passups)
        for child in node.children:
            child_result = retained[id(child)]
            if _is_disconnected_child(child_result, node.chi_set):
                if not _bag_alive(child_result, semiring.zero):
                    dead = True
                elif aggregate_mode:
                    scalar_factor *= _child_scalar(child_result, semiring)
                continue
            passed = self._pass_up(child_result, node.chi_set,
                                   aggregate_mode, semiring)
            if passed is None:
                spec_ok = False
                continue
            relation, annotated = passed
            spec = next(passups, None)
            if spec is None:
                spec_ok = False
                cols = relation_columns(relation)
                ordered_vars = tuple(a for a in cbag.eval_order
                                     if a in cols)
                key_order = tuple(cols.index(a) for a in ordered_vars)
            else:
                ordered_vars, key_order, spec_annotated = spec
                if annotated != spec_annotated:
                    spec_ok = False
            trie = Trie(relation, key_order=key_order,
                        optimizer=SetOptimizer(self.config.layout_level,
                                               self.config.density_threshold()))
            inputs.append(BagInput(trie, ordered_vars,
                                   annotated=annotated,
                                   name=relation.name))
            tries.append(trie)
        if bag_plan is not None:
            bag_plan.input_profiles = _input_profiles(inputs)
        eval_order, out_count = cbag.eval_order, cbag.out_count
        if dead:
            result = BagResult(cbag.out_attrs,
                               np.empty((0, out_count), dtype=np.uint32),
                               annotations=np.empty(0),
                               scalar=semiring.zero)
        elif not spec_ok:
            result = evaluate_bag(eval_order, out_count, inputs,
                                  semiring, self.config)
        elif self._parallel_node is not None \
                and id(node) == self._parallel_node:
            from .parallel import evaluate_bag_parallel
            stats.compiled_bag_calls += 1
            result = evaluate_bag_parallel(
                eval_order, out_count, inputs, semiring, self.config,
                cache=self.cache, stats=stats,
                compiled=(cbag.generated, tries))
        else:
            # The interpreter's vectorized whole-bag shortcuts answer
            # identically and are cheaper than any loop nest, so the
            # compiled path keeps them as a pre-flight probe.
            probe = BagEvaluator(eval_order, out_count, inputs, semiring,
                                 self.config)
            fast = probe.try_fast_paths()
            if fast is not None:
                result = fast
            else:
                stats.compiled_bag_calls += 1
                if cbag.generated.fused:
                    stats.fused_blocks += 1
                result = cbag.generated(tries, self.config)
        if aggregate_mode and scalar_factor != 1.0:
            if result.scalar is not None:
                result.scalar *= scalar_factor
            if result.annotations is not None:
                result.annotations = result.annotations * scalar_factor
        return result

    # -- finalization ---------------------------------------------------------

    def _finish_aggregate(self, logical, root_result):
        env = dict(self.env)
        rule = logical.rule
        guard_factor = _guard_annotation_factor(logical)
        if not logical.head_vars:
            agg_value = root_result.scalar
            if agg_value is None:
                # Root had out attributes beyond the (empty) head; fold
                # its annotation column.
                semiring = semiring_for(logical.aggregate.op)
                values = root_result.annotations \
                    if root_result.annotations is not None \
                    else np.zeros(0)
                agg_value = semiring.fold_leaf(values)
            value = eval_expression(logical.assignment,
                                    agg_value * guard_factor, env)
            return Relation.scalar(rule.head_name, float(value))
        # Reorder the root's columns into head order.
        order = [root_result.out_attrs.index(v) for v in logical.head_vars]
        data = root_result.data[:, order]
        annotations = root_result.annotations
        if annotations is not None and guard_factor != 1.0:
            annotations = annotations * guard_factor
        final = eval_expression(logical.assignment, annotations, env)
        final = np.broadcast_to(np.asarray(final, dtype=np.float64),
                                (data.shape[0],)).copy()
        return Relation(rule.head_name, data, final)

    def _finish_materialize(self, logical, ghd, retained, root_result):
        env = dict(self.env)
        rule = logical.rule
        head = list(logical.head_vars)
        root_attrs = list(root_result.out_attrs)
        if not head:
            # 0-ary materialization head: the rule asserts the empty
            # tuple iff the body is satisfiable (an EXISTS fold).  With
            # an annotation the head becomes a scalar carrying the
            # assignment's value; without one it is a 0-ary relation of
            # cardinality 0 or 1.
            exists = bool(root_result.scalar) \
                or root_result.data.shape[0] > 0
            if logical.annotation is not None \
                    and logical.assignment is not None:
                value = eval_expression(logical.assignment, None, env) \
                    if exists else EXISTS.zero
                return Relation.scalar(rule.head_name, float(value))
            return Relation(rule.head_name,
                            np.empty((1 if exists else 0, 0),
                                     dtype=np.uint32))
        if set(head) <= set(root_attrs) and (
                self.config.skip_top_down
                or all(not n.children for n in [ghd.root])):
            data, annotations = root_result.data, root_result.annotations
            attrs = root_attrs
        else:
            data, attrs, annotations = _top_down_join(ghd, retained)
            if self.last_plan is not None:
                self.last_plan.used_top_down = True
        order = [attrs.index(v) for v in head]
        data = data[:, order]
        if len(order) < len(attrs):
            relation = Relation(rule.head_name, data).deduplicated()
            data = relation.data
            annotations = None
        if logical.annotation is not None and logical.assignment is not None:
            value = eval_expression(logical.assignment, None, env)
            annotations = np.broadcast_to(
                np.asarray(value, dtype=np.float64),
                (data.shape[0],)).copy()
        elif logical.annotation is None:
            # Plain conjunctive rule: no annotation column in the head.
            annotations = None
        return Relation(rule.head_name, data, annotations)

    # -- COUNT(var): distinct -------------------------------------------------

    def _execute_count_distinct(self, logical, agg):
        """``<<COUNT(v)>>`` counts *distinct* bindings of ``v`` per head
        tuple (the paper's ``N(;w) :- Edge(x,y); w=<<COUNT(x)>>`` counts
        nodes, not edges)."""
        if agg.arg in logical.head_vars:
            raise PlanError("COUNT argument %r is a head variable"
                            % agg.arg)
        pseudo_head = tuple(logical.head_vars) + (agg.arg,)
        pseudo = logical.with_head(pseudo_head)
        distinct = self._execute_plan(pseudo)
        return _finish_count_distinct(logical, distinct, dict(self.env))

    def _empty_output(self, rule):
        if rule.annotation is not None and not rule.head_vars:
            if rule.aggregates:
                # Match the dynamically-empty path: the assignment is
                # applied to the semiring zero, so COUNT(*)+5 over a
                # statically empty guard answers 5, not 0.
                semiring = semiring_for(rule.aggregates[0].op)
                value = eval_expression(rule.assignment, semiring.zero,
                                        dict(self.env))
                return Relation.scalar(rule.head_name, float(value))
            return Relation.scalar(rule.head_name, EXISTS.zero)
        width = len(rule.head_vars)
        annotations = np.empty(0) if rule.annotation is not None else None
        return Relation(rule.head_name,
                        np.empty((0, width), dtype=np.uint32), annotations)


# -- helpers ------------------------------------------------------------------


def _relation_guards(logical):
    """``(name, relation, version)`` pins for every catalog relation a
    rule's body resolved to (plan-cache and bag-memo validation).

    Identity alone used to suffice (relations were immutable); in-place
    mutation bumps ``relation.version``, so the version rides along and
    a cached plan compiled against stale contents is rejected even
    though the object identity still matches.
    """
    return tuple((a.name, a.source, getattr(a.source, "version", 0))
                 for a in list(logical.atoms) + list(logical.guard_atoms))


def _guard_annotation_factor(logical):
    """Product of the matched guard atoms' annotations.

    A fully-constant atom contributes no join attributes, but under
    semiring semantics its selected tuple's annotation still multiplies
    into every derivation — exactly like any other body atom's.
    Unannotated guards contribute 1.
    """
    factor = 1.0
    for guard in logical.guard_atoms:
        relation = guard.relation
        if relation.annotations is not None and relation.cardinality:
            factor *= float(np.prod(relation.annotations))
    return factor


def _input_profiles(inputs):
    """Cheap per-input profiles for EXPLAIN ANALYZE's cost prediction.

    O(#inputs) attribute reads — root cardinality, tuple count, and the
    optimizer's chosen root-set layout kind — captured at the moment
    the bag's inputs (base tries plus pass-ups) are assembled.
    """
    profiles = []
    for bag_input in inputs:
        trie = bag_input.trie
        root_set = trie.root.set
        profiles.append({
            "name": bag_input.name,
            "variables": tuple(bag_input.variables),
            "root_card": int(root_set.cardinality),
            "cardinality": int(trie.cardinality),
            "kind": root_set.kind,
        })
    return profiles


def _largest_bag_node(ghd, atoms):
    """``id()`` of the GHD node with the most input tuples — the bag
    worth forking for (everything else stays serial in the parent)."""
    best = None
    best_size = -1
    for node in ghd.nodes_bottom_up():
        size = sum(atoms[edge.index].relation.cardinality
                   for edge in node.edges)
        if size > best_size:
            best, best_size = node, size
    return id(best) if best is not None else None


def _finish_count_distinct(logical, distinct, env):
    """Finalizer for ``<<COUNT(v)>>``: group the materialized pseudo
    head (head attributes + the count argument) and count the distinct
    bindings per group.  Shared by the interpreted and compiled paths.
    """
    head_name = logical.rule.head_name
    if not logical.head_vars:
        value = eval_expression(logical.assignment,
                                float(distinct.cardinality), env)
        return Relation.scalar(head_name, float(value))
    keys = distinct.data[:, :-1]
    order = np.lexsort(tuple(keys[:, c]
                             for c in range(keys.shape[1] - 1, -1, -1)))
    keys = keys[order]
    new_group = np.ones(keys.shape[0], dtype=bool)
    new_group[1:] = np.any(keys[1:] != keys[:-1], axis=1)
    group_ids = np.cumsum(new_group) - 1
    counts = np.bincount(group_ids).astype(np.float64)
    heads = keys[new_group]
    values = eval_expression(logical.assignment, counts, env)
    values = np.broadcast_to(np.asarray(values, dtype=np.float64),
                             (heads.shape[0],)).copy()
    return Relation(head_name, heads, values)


def _is_disconnected_child(child_result, parent_chi):
    """True when a child bag shares no attributes with its parent —
    joining it degenerates to a scalar factor (aggregate mode) or an
    existence guard (materialize mode; any columns it does carry
    re-enter in the top-down pass)."""
    return not any(a in parent_chi for a in child_result.out_attrs)


def _child_scalar(child_result, semiring):
    """A disconnected child's contribution as a single semiring value."""
    if child_result.scalar is not None:
        return child_result.scalar
    if child_result.annotations is not None \
            and len(child_result.annotations):
        return semiring.fold_leaf(child_result.annotations)
    return semiring.zero


def _bag_alive(result, zero=0.0):
    """Whether a bag result admits at least one satisfying binding.

    An attribute-less bag signals emptiness with ``scalar ==
    semiring.zero`` (the fold over no bindings), so the caller must
    supply its semiring's zero — MIN's is ``inf``, not ``0.0``.
    """
    if result.data.shape[0] > 0:
        return True
    return result.scalar is not None and result.scalar != zero


def _top_down_join(ghd, retained):
    """Yannakakis' top-down pass: join retained bag results along the
    tree.  Annotations multiply across bags (each bag's annotation is the
    product over its own relations only, so the total product is exact).
    """
    def rec(node):
        result = retained[id(node)]
        attrs = list(result.out_attrs)
        data = result.data
        annotations = result.annotations
        if not attrs:
            # An attribute-less bag (e.g. a fully-selected guard
            # component) is a pure existence test: join through it as a
            # zero-column identity row so sibling subtrees still
            # cross-product, or kill the subtree when it is empty.
            data = np.empty((1 if _bag_alive(result) else 0, 0),
                            dtype=np.uint32)
            annotations = None
        for child in node.children:
            child_data, child_attrs, child_ann = rec(child)
            data, attrs, annotations = _hash_join(
                data, attrs, annotations,
                child_data, child_attrs, child_ann)
        return data, attrs, annotations

    data, attrs, annotations = rec(ghd.root)
    return data, attrs, annotations


def _hash_join(left, left_attrs, left_ann, right, right_attrs, right_ann):
    """Pairwise hash join used only for the acyclic top-down assembly."""
    shared = [a for a in left_attrs if a in right_attrs]
    left_keys = [left_attrs.index(a) for a in shared]
    right_keys = [right_attrs.index(a) for a in shared]
    right_extra = [i for i, a in enumerate(right_attrs) if a not in shared]
    table = {}
    for row_index in range(right.shape[0]):
        key = tuple(int(right[row_index, c]) for c in right_keys)
        table.setdefault(key, []).append(row_index)
    out_rows = []
    out_ann = []
    for row_index in range(left.shape[0]):
        key = tuple(int(left[row_index, c]) for c in left_keys)
        for match in table.get(key, ()):
            combined = list(left[row_index]) \
                + [right[match, c] for c in right_extra]
            out_rows.append(combined)
            if left_ann is not None or right_ann is not None:
                product = (left_ann[row_index]
                           if left_ann is not None else 1.0) \
                    * (right_ann[match] if right_ann is not None else 1.0)
                out_ann.append(product)
    attrs = list(left_attrs) + [right_attrs[c] for c in right_extra]
    data = np.asarray(out_rows, dtype=np.uint32).reshape(len(out_rows),
                                                         len(attrs))
    annotations = np.asarray(out_ann) if out_ann else None
    return data, attrs, annotations
