"""Multi-core execution: partition Algorithm 1's outermost loop.

The paper's engine runs every benchmark on 48 threads by splitting the
generic join's top-level attribute across workers — each worker owns a
slice of the level-0 candidate values and the partial aggregates sum at
the end.  This module reproduces that strategy with forked worker
processes (Python threads would serialize on the GIL): the parent
builds the tries, forks, and each child evaluates the same bag with a
``restrict_level0`` partition set.

Scope: single-bag aggregate queries with an empty head (COUNT(*)-style)
— the shape of every pattern benchmark in the paper.  Everything else
raises :class:`~repro.errors.PlanError` and should run on the
single-process engine.
"""

import multiprocessing

import numpy as np

from ..errors import PlanError
from ..ghd.attribute_order import (bag_evaluation_order,
                                   global_attribute_order)
from ..ghd.decompose import decompose
from ..query.hypergraph import Hypergraph
from ..query.parser import parse_rule
from ..sets.intersect import intersect_many
from ..sets.uint import UintSet
from .executor import eval_expression, normalize_atom
from .generic_join import BagEvaluator, BagInput
from .semiring import semiring_for

#: Fork-shared state: set by the parent immediately before forking so
#: children inherit the tries copy-on-write instead of pickling them.
_SHARED = {}


def _count_partition(values):
    """Worker body: evaluate the shared bag restricted to ``values``."""
    spec = _SHARED["spec"]
    evaluator = BagEvaluator(
        spec["order"], 0, spec["inputs"], spec["semiring"],
        spec["config"], restrict_level0=UintSet(values))
    return evaluator.run().scalar


def parallel_count(database, query_text, workers=2):
    """Run a COUNT-style single-bag aggregate query across ``workers``
    forked processes; returns the same scalar as ``database.query``.

    Falls back to in-process evaluation when ``workers <= 1`` or the
    platform cannot fork.
    """
    rule = parse_rule(query_text)
    aggregates = rule.aggregates
    if rule.head_vars or rule.annotation is None or not aggregates \
            or (aggregates[0].op == "COUNT" and aggregates[0].arg != "*"):
        raise PlanError("parallel_count supports aggregate rules with an "
                        "empty head (COUNT(*)/SUM/MIN/MAX)")
    if rule.recursive:
        raise PlanError("parallel_count does not support recursion")
    semiring = semiring_for(aggregates[0].op)
    atoms = [normalize_atom(atom, database.catalog) for atom in rule.body]
    atoms = [a for a in atoms if a.variables]
    if any(a.relation.cardinality == 0 for a in atoms):
        return semiring.zero
    hypergraph = Hypergraph(_View(a) for a in atoms)
    ghd = decompose(hypergraph, use_ghd=False)  # one bag, by design
    order = bag_evaluation_order(
        ghd.root.chi, (), global_attribute_order(ghd))
    inputs = []
    for atom in atoms:
        ordered = tuple(a for a in order if a in atom.variables)
        key_order = tuple(atom.variables.index(a) for a in ordered)
        trie = database._trie_cache.get(atom.relation, key_order,
                                        database.config.layout_level)
        inputs.append(BagInput(trie, ordered, annotated=atom.annotated,
                               name=atom.name))
    level0_sets = [bag_input.trie.root.set for bag_input in inputs
                   if bag_input.variables
                   and bag_input.variables[0] == order[0]]
    candidates = intersect_many(
        level0_sets, counter=database.config.counter,
        simd=database.config.simd).to_array() \
        if len(level0_sets) > 1 else level0_sets[0].to_array()
    if candidates.size == 0:
        return semiring.zero

    partitions = [chunk for chunk
                  in np.array_split(candidates, max(workers, 1))
                  if chunk.size]
    spec = {"order": order, "inputs": inputs, "semiring": semiring,
            "config": database.config}
    if workers <= 1 or len(partitions) <= 1 or not _can_fork():
        partials = [_run_inline(spec, chunk) for chunk in partitions]
    else:
        _SHARED["spec"] = spec
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=len(partitions)) as pool:
                partials = pool.map(_count_partition, partitions)
        finally:
            _SHARED.pop("spec", None)
    total = semiring.zero
    for partial in partials:
        total = semiring.plus(total, partial)
    value = eval_expression(rule.assignment, total, dict(database._env))
    return float(value)


def _run_inline(spec, values):
    evaluator = BagEvaluator(spec["order"], 0, spec["inputs"],
                             spec["semiring"], spec["config"],
                             restrict_level0=UintSet(values))
    return evaluator.run().scalar


def _can_fork():
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - platform probing
        return False


class _View:
    """Hypergraph adapter (same protocol as the executor's)."""

    def __init__(self, atom):
        self.name = atom.name
        self.variables = atom.variables
