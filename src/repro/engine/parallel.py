"""Skew-aware multi-core execution: morsel-driven work stealing.

The paper's engine runs every benchmark on 48 threads by splitting the
generic join's top-level attribute across workers with *dynamic load
balancing* — essential on power-law graphs, where a handful of hub
vertices own most of the join work.  A static split (one contiguous
chunk of level-0 values per worker) serializes on whichever worker drew
the hubs; this module instead:

1. estimates a per-candidate cost from the tries (the candidate's total
   child-set cardinality, i.e. its degree under the join),
2. packs candidates into many fine-grained *morsels* of roughly equal
   cost, isolating hub vertices in their own morsels,
3. pushes the morsels — largest first — onto a shared task queue, and
4. forks workers that pull morsels until the queue drains, so an idle
   worker steals work a loaded one would otherwise still be holding.

Workers are forked processes (Python threads would serialize on the
GIL).  The fork discipline is *share-then-fork*: the parent builds
every trie through the :class:`~repro.engine.executor.TrieCache`
before spawning, and children never construct tries themselves.  With
``EngineConfig.shared_tries`` the cache additionally places each
trie's bulk arrays into a
:class:`~repro.storage.arena.SharedTrieArena`, so children map the
same physical ``/dev/shm`` pages zero-copy — refcount updates touch
only the small ndarray view objects, never the payload pages.  Without
an arena, children fall back to plain copy-on-write reads of the
parent's heap (correct, but CPython refcounting progressively copies
the touched pages).  See ``docs/performance.md`` for the full
discipline.

:func:`evaluate_bag_parallel` is a drop-in replacement for
:func:`~repro.engine.generic_join.evaluate_bag` covering aggregate
*and* materializing heads (partial result arrays concatenate in
candidate order; level-0 partitions are disjoint, so no cross-worker
duplicates can arise).  ``RuleExecutor`` routes the largest bag of any
plan here when ``EngineConfig.parallel_workers > 1``, which covers
multi-bag GHD plans and recursion for free.  :func:`parallel_count`
remains as the historical entry point for single-bag COUNT-style
queries.
"""

import multiprocessing
import os
import queue as queue_module
import time
import traceback

import numpy as np

from ..errors import ExecutionError, PlanError
from ..ghd.attribute_order import (bag_evaluation_order,
                                   global_attribute_order)
from ..ghd.decompose import decompose
from ..query.hypergraph import Hypergraph
from ..query.parser import parse_rule
from ..sets.intersect import intersect_many
from ..sets.uint import UintSet
from ..lir.build import normalize_atom
from .executor import eval_expression
from .generic_join import BagEvaluator, BagInput, BagResult
from .semiring import semiring_for
from .stats import ExecStats

#: Fork-shared state: set by the parent immediately before forking so
#: children inherit the tries (and the morsel value arrays) copy-on-write
#: instead of pickling them.  Always cleared in a ``finally`` — a worker
#: failure must not leave a stale spec behind.
_SHARED = {}

#: Poll interval while draining worker results; long enough to be cheap,
#: short enough to notice a dead worker quickly.
_POLL_SECONDS = 0.2


class Morsel:
    """One unit of schedulable work: a contiguous run of sorted level-0
    candidate values, its estimated cost, and the worker it would belong
    to under a static round-robin assignment (``home``) — executing on
    any other worker counts as a steal."""

    __slots__ = ("index", "values", "cost", "home")

    def __init__(self, index, values, cost, home=0):
        self.index = index
        self.values = values
        self.cost = cost
        self.home = home

    def __repr__(self):
        return "Morsel(#%d, %d values, cost=%.0f)" % (
            self.index, self.values.size, self.cost)


# -- morsel construction ------------------------------------------------------


def estimate_morsel_costs(candidates, inputs, level0_attr):
    """Per-candidate cost estimate from the tries' level-0 fan-out.

    For every input whose trie starts at the level-0 attribute, the
    candidate's child-set cardinality (its degree in that relation) is
    added; candidates a trie does not contain contribute nothing for it.
    The unit baseline keeps zero-degree candidates schedulable.
    """
    costs = np.ones(candidates.size, dtype=np.float64)
    for bag_input in inputs:
        if not bag_input.variables \
                or bag_input.variables[0] != level0_attr:
            continue
        root = bag_input.trie.root
        if root.children is None:
            continue
        keys = root.set.to_array()
        if keys.size == 0:
            continue
        cards = np.fromiter(
            (child.set.cardinality for child in root.children),
            dtype=np.float64, count=len(root.children))
        ranks = np.minimum(np.searchsorted(keys, candidates),
                           keys.size - 1)
        member = keys[ranks] == candidates
        costs += np.where(member, cards[ranks], 0.0)
    return costs


def build_morsels(candidates, costs, workers, morsels_per_worker):
    """Pack sorted candidates into contiguous, roughly equal-cost morsels.

    The target cost is ``total / (workers * morsels_per_worker)``.  A
    candidate whose own cost reaches the target (a hub vertex) is cut
    into its own morsel so it can never hide inside a bigger chunk —
    the skew handling that makes stealing effective on power-law
    graphs.
    """
    total = float(costs.sum())
    target = max(total / max(workers * morsels_per_worker, 1), 1.0)
    morsels = []

    def emit(start, stop, acc):
        morsels.append(Morsel(len(morsels), candidates[start:stop], acc))

    start = 0
    acc = 0.0
    for i in range(candidates.size):
        cost = float(costs[i])
        if cost >= target and i > start:
            # Flush the light run so the hub starts its own morsel.
            emit(start, i, acc)
            start, acc = i, 0.0
        acc += cost
        if acc >= target:
            emit(start, i + 1, acc)
            start, acc = i + 1, 0.0
    if start < candidates.size:
        emit(start, candidates.size, acc)
    return morsels


def _level0_candidates(inputs, order, config, cache=None):
    """Sorted array of level-0 candidate values for a bag.

    Uses the trie cache's memoized level-0 intersection when every
    participating trie is cache-owned (base relations); pass-up tries
    are transient, so their intersections are computed directly.
    """
    participating = [bag_input for bag_input in inputs
                     if bag_input.variables
                     and bag_input.variables[0] == order[0]]
    sets = [bag_input.trie.root.set for bag_input in participating]
    if cache is not None and participating and all(
            getattr(bag_input.trie, "_cache_owned", False)
            for bag_input in participating):
        return cache.level0_intersection(sets, config)
    if len(sets) == 1:
        return sets[0].to_array()
    return intersect_many(
        sets, counter=config.counter,
        algorithm=config.uint_algorithm,
        adaptive=config.adaptive_algorithms,
        simd=config.simd).to_array()


# -- worker bodies ------------------------------------------------------------


def _morsel_runner(spec):
    """Build the per-morsel evaluation closure for one schedule.

    All per-morsel dispatch — the compiled/interpreted branch, the spec
    dict lookups, the config fetch — is resolved *once* here, so the
    hot loop's per-morsel cost is one closure call plus the evaluation
    itself.  (Fused kernels take this further: the closure call then
    covers the whole morsel in a handful of numpy block ops.)
    """
    compiled = spec.get("compiled")
    config = spec["config"]
    if compiled is not None:
        function, tries = compiled

        def run(values):
            return function(tries, config,
                            restrict=UintSet.from_sorted(values))
        return run
    order = spec["order"]
    out_count = spec["out_count"]
    inputs = spec["inputs"]
    semiring = spec["semiring"]

    def run(values):
        return BagEvaluator(
            order, out_count, inputs, semiring, config,
            restrict_level0=UintSet.from_sorted(values)).run()
    return run


def _evaluate_morsel(spec, values):
    """Evaluate the shared bag restricted to one morsel's values.

    The bound runner is cached on the spec, so repeated calls pay one
    dict hit plus the closure call — and this function stays the
    monkeypatchable seam the failure-injection tests rely on.
    """
    run = spec.get("_runner")
    if run is None:
        run = spec["_runner"] = _morsel_runner(spec)
    return run(values)


def _pack(result, out_count):
    """Queue-transportable form of a partial :class:`BagResult`."""
    if out_count == 0:
        return ("scalar", result.scalar)
    return ("rows", result.data, result.annotations)


def _worker_main(worker_id, tasks, results):
    """Forked worker: pull morsel indexes until the sentinel arrives.

    Per-morsel wall time and lane-op deltas (from this process's
    copy-on-write :class:`~repro.sets.cost.OpCounter`) ride back with
    every result so the parent can attribute work per worker.

    When metrics are enabled, the worker's copy-on-write registry is
    reset at startup (child-local — the parent's instruments are
    untouched) so everything it accumulates is *this worker's* delta;
    the final state ships back with the ``done`` message and the
    parent merges it, labeled by lane, into the live registry.  Without
    this, hot-path observations made inside forked children
    (``intersection.size`` and friends) would be silently lost to
    copy-on-write.
    """
    spec = _SHARED["spec"]
    counter = spec["config"].counter
    morsels = spec["morsels"]
    metrics = getattr(spec["config"], "metrics", None)
    if metrics is not None and not getattr(metrics, "enabled", False):
        metrics = None
    if metrics is not None:
        metrics.reset()  # child copy starts from zero → state is a delta
    try:
        while True:
            index = tasks.get()
            if index is None:
                break
            values = morsels[index]
            ops_before = counter.total_ops
            start = time.perf_counter()
            result = _evaluate_morsel(spec, values)
            elapsed = time.perf_counter() - start
            # ``start`` rides along for lane attribution: perf_counter
            # is CLOCK_MONOTONIC on Linux, so the parent's tracer can
            # place this morsel on the worker's timeline directly.
            results.put(("ok", worker_id, index,
                         _pack(result, spec["out_count"]),
                         start, elapsed, counter.total_ops - ops_before))
    except Exception:
        results.put(("error", worker_id, traceback.format_exc()))
    finally:
        state = metrics.to_state() if metrics is not None else None
        results.put(("done", worker_id, state))


# -- drivers ------------------------------------------------------------------


def _run_forked(spec, schedule, workers, strategy, stats):
    """Fork ``workers`` processes and drain the morsel schedule.

    ``"steal"`` shares one task queue (idle workers pull whatever is
    next); ``"static"`` gives every worker a private queue holding
    exactly its home morsels, reproducing the straggler behaviour of
    the old ``np.array_split`` partitioner for comparison.

    Cleanup is unconditional: the fork-shared spec is popped and every
    surviving worker is terminated in a ``finally``, so a worker
    exception can never leak ``_SHARED`` state or zombie processes.
    """
    context = multiprocessing.get_context("fork")
    results = context.Queue()
    processes = []
    failures = []
    partials = {}
    by_index = {morsel.index: morsel for morsel in schedule}
    child_ops = 0
    tracer = getattr(spec["config"], "tracer", None)
    if tracer is not None and not tracer.enabled:
        tracer = None
    metrics = getattr(spec["config"], "metrics", None)
    if metrics is not None and not getattr(metrics, "enabled", False):
        metrics = None
    _SHARED["spec"] = spec
    try:
        if strategy == "static":
            task_queues = [context.Queue() for _ in range(workers)]
            for morsel in schedule:
                task_queues[morsel.home].put(morsel.index)
            for task_queue in task_queues:
                task_queue.put(None)
        else:
            shared_queue = context.Queue()
            for morsel in schedule:
                shared_queue.put(morsel.index)
            for _ in range(workers):
                shared_queue.put(None)
            task_queues = [shared_queue] * workers
        for worker_id in range(workers):
            process = context.Process(
                target=_worker_main,
                args=(worker_id, task_queues[worker_id], results),
                daemon=True)
            process.start()
            processes.append(process)
        done = 0
        while done < len(processes):
            try:
                message = results.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                if not any(p.is_alive() for p in processes):
                    failures.append("worker process died unexpectedly")
                    break
                continue
            kind = message[0]
            if kind == "done":
                done += 1
                # Worker-side metric observations (a delta — the child
                # reset its copy-on-write registry at startup) merge
                # into the parent's live registry, attributed by lane.
                state = message[2] if len(message) > 2 else None
                if state is not None and metrics is not None:
                    metrics.merge_state(
                        state, labels={"lane": "worker-%d" % message[1]})
            elif kind == "error":
                failures.append(message[2])
            else:
                (_, worker_id, index, payload, started, elapsed,
                 ops) = message
                partials[index] = payload
                child_ops += ops
                morsel = by_index[index]
                stolen = worker_id != morsel.home
                stats.record_morsel(
                    index, worker_id, morsel.values.size, morsel.cost,
                    elapsed, ops, stolen=stolen, started=started)
                if tracer is not None:
                    tracer.record(
                        "morsel:%d" % index, "execute", started,
                        started + elapsed,
                        lane="worker-%d" % worker_id,
                        args={"size": int(morsel.values.size),
                              "ops": int(ops), "stolen": stolen})
    finally:
        _SHARED.pop("spec", None)
        for process in processes:
            if process.is_alive():
                process.terminate()
            process.join()
    if failures:
        raise ExecutionError("parallel worker failed:\n%s" % failures[0])
    if len(partials) != len(schedule):
        raise ExecutionError(
            "parallel execution lost %d morsel(s)"
            % (len(schedule) - len(partials)))
    if child_ops:
        # Children charge their own counter copies; fold the totals back
        # so the parent's op accounting covers the forked work.
        spec["config"].counter.charge("parallel_workers",
                                      scalar=child_ops)
    return partials


def _run_inline(spec, schedule, stats):
    """Morsel loop without forking (single effective worker, or the
    platform cannot fork).  Keeps the morsel granularity — and therefore
    the per-morsel stats — while paying zero fork/queue overhead."""
    partials = {}
    counter = spec["config"].counter
    # Hoisted out of the hot loop: when tracing is off the loop body
    # touches no span machinery at all (asserted zero-allocation by the
    # tracing micro-benchmark in tests/obs/test_trace.py).
    tracer = getattr(spec["config"], "tracer", None)
    if tracer is not None and not tracer.enabled:
        tracer = None
    for morsel in schedule:
        ops_before = counter.total_ops
        start = time.perf_counter()
        try:
            result = _evaluate_morsel(spec, morsel.values)
        except Exception:
            raise ExecutionError("parallel worker failed:\n%s"
                                 % traceback.format_exc())
        elapsed = time.perf_counter() - start
        ops = counter.total_ops - ops_before
        partials[morsel.index] = _pack(result, spec["out_count"])
        stats.record_morsel(morsel.index, 0, morsel.values.size,
                            morsel.cost, elapsed, ops, started=start)
        if tracer is not None:
            tracer.record("morsel:%d" % morsel.index, "execute", start,
                          start + elapsed, lane="worker-0",
                          args={"size": int(morsel.values.size),
                                "ops": int(ops)})
    return partials


def _combine(partials, out_count, eval_order, semiring):
    """Merge per-morsel partials into one :class:`BagResult`.

    Morsels partition the sorted level-0 candidates into disjoint
    contiguous runs, and (for materializing heads) level 0 is an output
    attribute — so concatenating partials in morsel-index order
    reproduces the serial evaluator's row order exactly, with no
    cross-worker duplicates to eliminate.
    """
    ordered = [partials[index] for index in sorted(partials)]
    if out_count == 0:
        total = semiring.zero
        for payload in ordered:
            total = semiring.plus(total, payload[1])
        return BagResult((), np.empty((0, 0), dtype=np.uint32),
                         scalar=total)
    datas = [payload[1] for payload in ordered]
    anns = [payload[2] for payload in ordered]
    data = np.concatenate(datas) if datas \
        else np.empty((0, out_count), dtype=np.uint32)
    if all(ann is None for ann in anns):
        annotations = None
    else:
        annotations = np.concatenate(
            [ann if ann is not None
             else np.ones(block.shape[0], dtype=np.float64)
             for ann, block in zip(anns, datas)]) if anns \
            else np.empty(0, dtype=np.float64)
    return BagResult(eval_order[:out_count], data,
                     annotations=annotations)


def evaluate_bag_parallel(eval_order, out_count, inputs, semiring, config,
                          workers=None, strategy=None, threshold=None,
                          morsels_per_worker=None, cache=None, stats=None,
                          compiled=None):
    """Drop-in replacement for
    :func:`~repro.engine.generic_join.evaluate_bag` that partitions the
    outermost loop across forked workers.

    Falls back to the serial evaluator when a vectorized fast path
    answers the bag outright, the candidate count is below
    ``threshold``, only one morsel remains, or ``workers <= 1``; the
    outcome is recorded in ``stats.mode`` either way.

    ``compiled`` is an optional ``(generated, tries)`` pair from the
    compiled pipeline: every morsel then runs the generated function
    with its values as the level-0 ``restrict`` set.  Forked children
    inherit the ``exec``-compiled function copy-on-write, so nothing is
    pickled.
    """
    workers = config.parallel_workers if workers is None else workers
    strategy = config.parallel_strategy if strategy is None else strategy
    if threshold is None:
        # Calibrated fork-cost threshold when a tuning profile is
        # active; plain config value otherwise (duck-typed so bare
        # config stand-ins in tests keep working).
        effective = getattr(config, "effective_parallel_threshold", None)
        threshold = effective() if callable(effective) \
            else config.parallel_threshold
    morsels_per_worker = config.parallel_morsels_per_worker \
        if morsels_per_worker is None else morsels_per_worker
    if stats is None:
        stats = ExecStats(strategy=strategy, workers=workers)
    probe = BagEvaluator(eval_order, out_count, inputs, semiring, config)
    fast = probe.try_fast_paths()
    if fast is not None:
        stats.mode = "fast-path"
        return fast

    fused = compiled is not None \
        and getattr(compiled[0], "fused", False)

    def run_serial():
        if compiled is not None:
            if fused:
                stats.fused_blocks += 1
            function, tries = compiled
            return function(tries, config)
        return probe.run()

    candidates = _level0_candidates(inputs, eval_order, config, cache)
    if workers <= 1 or candidates.size < max(threshold, 2):
        stats.mode = "serial"
        return run_serial()
    if strategy == "static":
        chunks = [chunk for chunk
                  in np.array_split(candidates, workers) if chunk.size]
        schedule = [Morsel(i, chunk, float(chunk.size), home=i)
                    for i, chunk in enumerate(chunks)]
    else:
        costs = estimate_morsel_costs(candidates, inputs, eval_order[0])
        morsels = build_morsels(candidates, costs, workers,
                                morsels_per_worker)
        # Largest-first dispatch: heavy morsels start immediately, the
        # light tail backfills — the classic LPT schedule.
        schedule = sorted(morsels, key=lambda m: -m.cost)
    if len(schedule) <= 1:
        stats.mode = "serial"
        return run_serial()
    n_workers = min(workers, len(schedule))
    if strategy != "static":
        # Work stealing decouples worker count from partition count, so
        # never oversubscribe the machine: extra forks on a saturated
        # CPU only add timesharing and copy-on-write overhead.  (The
        # static strategy deliberately keeps the old one-fork-per-chunk
        # behaviour it reproduces.)
        n_workers = min(n_workers, _available_cpus())
        for position, morsel in enumerate(schedule):
            morsel.home = position % n_workers
    spec = {"order": tuple(eval_order), "out_count": out_count,
            "inputs": list(inputs), "semiring": semiring,
            "config": config, "compiled": compiled,
            "morsels": {m.index: m.values for m in schedule}}
    if fused:
        # One block-kernel invocation per morsel (forked workers charge
        # into copy-on-write stats, so the parent accounts up front).
        stats.fused_blocks += len(schedule)
    if n_workers > 1 and _can_fork():
        stats.mode = "forked"
        stats.workers = n_workers
        partials = _run_forked(spec, schedule, n_workers, strategy, stats)
    else:
        stats.mode = "inline"
        stats.workers = 1
        partials = _run_inline(spec, schedule, stats)
    return _combine(partials, out_count, eval_order, semiring)


# -- historical single-bag COUNT entry point ----------------------------------


def parallel_count(database, query_text, workers=2, strategy=None):
    """Run a COUNT-style single-bag aggregate query across ``workers``
    forked processes; returns the same scalar as ``database.query``.

    Kept as the direct entry point for empty-head aggregates (new code
    should prefer ``Database(parallel_workers=N).query(...)``, which
    also handles materializing heads and multi-bag plans).  Falls back
    to in-process evaluation when ``workers <= 1`` or the platform
    cannot fork.  The result preserves the aggregate's value type —
    integer-valued MIN/MAX/COUNT results are not coerced to ``float``.
    """
    rule = parse_rule(query_text)
    aggregates = rule.aggregates
    if rule.head_vars or rule.annotation is None or not aggregates \
            or (aggregates[0].op == "COUNT" and aggregates[0].arg != "*"):
        raise PlanError("parallel_count supports aggregate rules with an "
                        "empty head (COUNT(*)/SUM/MIN/MAX)")
    if rule.recursive:
        raise PlanError("parallel_count does not support recursion")
    semiring = semiring_for(aggregates[0].op)
    atoms = [normalize_atom(atom, database.catalog) for atom in rule.body]
    atoms = [a for a in atoms if a.variables]
    if any(a.relation.cardinality == 0 for a in atoms):
        return semiring.zero
    hypergraph = Hypergraph(atoms)
    ghd = decompose(hypergraph, use_ghd=False)  # one bag, by design
    order = bag_evaluation_order(
        ghd.root.chi, (), global_attribute_order(ghd))
    cache = database._trie_cache
    marks = (cache.hits, cache.misses, cache.level0_hits,
             cache.level0_misses)
    inputs = []
    for atom in atoms:
        ordered = tuple(a for a in order if a in atom.variables)
        key_order = tuple(atom.variables.index(a) for a in ordered)
        # Build-before-fork: tries come from the shared cache, in the
        # parent, so forked children only ever read them.
        trie = cache.get(atom.relation, key_order,
                         database.config.layout_level)
        inputs.append(BagInput(trie, ordered, annotated=atom.annotated,
                               name=atom.name))
    config = database.config
    strategy = config.parallel_strategy if strategy is None else strategy
    stats = ExecStats(strategy=strategy, workers=max(workers, 1))
    result = evaluate_bag_parallel(
        order, 0, inputs, semiring, config, workers=workers,
        strategy=strategy, threshold=2, cache=cache, stats=stats)
    stats.trie_cache_hits = cache.hits - marks[0]
    stats.trie_cache_misses = cache.misses - marks[1]
    stats.level0_cache_hits = cache.level0_hits - marks[2]
    stats.level0_cache_misses = cache.level0_misses - marks[3]
    database._executor.last_stats = stats
    value = eval_expression(rule.assignment, result.scalar,
                            dict(database._env))
    if isinstance(value, np.generic):
        value = value.item()
    return value


def _can_fork():
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - platform probing
        return False


def _available_cpus():
    """CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)
