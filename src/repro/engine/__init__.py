"""Execution engine: semirings, generic WCOJ, Yannakakis, recursion."""

from .codegen import (GeneratedQuery, InputSpec, compile_count_rule,
                      generate_bag_plan, generate_count_plan,
                      trie_level_kind)
from .config import EngineConfig
from ..lir.build import normalize_atom
from .executor import RuleExecutor, TrieCache, eval_expression
from .generic_join import (BagEvaluator, BagInput, BagResult,
                           assemble_chunks, evaluate_bag)
from .parallel import evaluate_bag_parallel, parallel_count
from .plan import BagPlan, PhysicalPlan
from .plan_cache import (CompiledBag, CompiledRule, PlanCache,
                         config_signature)
from .recursion import execute_recursive
from .semiring import (COUNT, EXISTS, MAX, MIN, SUM, Semiring, is_monotone,
                       semiring_for)
from .stats import ExecStats, MorselStat

__all__ = [
    "EngineConfig",
    "RuleExecutor", "TrieCache", "eval_expression", "normalize_atom",
    "BagEvaluator", "BagInput", "BagResult", "assemble_chunks",
    "evaluate_bag",
    "BagPlan", "PhysicalPlan",
    "GeneratedQuery", "InputSpec", "compile_count_rule",
    "generate_bag_plan", "generate_count_plan", "trie_level_kind",
    "CompiledBag", "CompiledRule", "PlanCache", "config_signature",
    "evaluate_bag_parallel", "parallel_count",
    "ExecStats", "MorselStat",
    "execute_recursive",
    "COUNT", "EXISTS", "MAX", "MIN", "SUM", "Semiring", "is_monotone",
    "semiring_for",
]
