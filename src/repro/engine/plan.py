"""Physical plan records: what ``Database.explain`` reports.

A :class:`PhysicalPlan` captures the compiled shape of one rule — the
chosen GHD, the global attribute order, and per-bag execution detail
(evaluation order, retained attributes, input relations and their trie
orders) — in the spirit of the paper's Figure 1 pipeline stages.
"""

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class BagPlan:
    """Execution detail of one GHD bag."""

    chi: Tuple[str, ...]
    eval_order: Tuple[str, ...]
    out_attrs: Tuple[str, ...]
    inputs: List[str] = field(default_factory=list)
    width: float = 0.0
    reused_from_signature: bool = False
    parallelized: bool = False
    #: Observability (EXPLAIN ANALYZE): wall seconds and simulated lane
    #: ops this bag's evaluation actually took.  Recorded by the
    #: executor on every run (cheap: two clock reads and one counter
    #: delta per bag); ``None`` on bags that never evaluated (reused
    #: results, plain ``explain``).
    actual_seconds: float = None
    actual_ops: int = None
    #: Cost-model prediction captured at evaluation time under the
    #: planner's cardinality estimates (hints/feedback substituted).
    #: Only recorded when ``config.adaptive`` — the mispredict check in
    #: the executor compares it against ``actual_ops``.
    predicted_ops: int = None
    #: Per-input profiles captured when the bag's inputs were assembled:
    #: ``{"name", "variables", "root_card", "cardinality", "kind"}``
    #: dicts feeding the cost-model prediction in
    #: :mod:`repro.obs.explain`.
    input_profiles: List = field(default_factory=list)

    def describe(self):
        """One-line rendering for explain output."""
        reuse = "  [reused identical bag result]" \
            if self.reused_from_signature else ""
        parallel = "  [parallel outer loop]" if self.parallelized else ""
        return ("bag chi=(%s) eval=(%s) out=(%s) width=%.2f inputs=[%s]%s%s"
                % (",".join(self.chi), ",".join(self.eval_order),
                   ",".join(self.out_attrs), self.width,
                   ", ".join(self.inputs), reuse, parallel))


@dataclass
class PhysicalPlan:
    """Full compiled plan for one rule."""

    rule: object
    ghd: object
    global_order: Tuple[str, ...]
    bags: List[BagPlan] = field(default_factory=list)
    aggregate_mode: bool = False
    used_top_down: bool = False

    def describe(self):
        lines = [
            "rule: %s" % self.rule,
            "mode: %s" % ("aggregate (early aggregation)"
                          if self.aggregate_mode else "materialize"),
            "global attribute order: %s" % (list(self.global_order),),
            "GHD (width %.2f, %d bags):" % (self.ghd.width(),
                                            self.ghd.n_nodes),
        ]
        lines.extend(self.ghd.describe())
        if self.bags:
            lines.append("physical bags (bottom-up):")
            lines.extend("  " + bag.describe() for bag in self.bags)
        lines.append("top-down pass: %s"
                     % ("ran" if self.used_top_down
                        else "elided (App. B.2)"))
        return "\n".join(lines)
