"""The generic worst-case optimal join over tries (paper Algorithm 1).

One GHD bag is evaluated by binding its attributes one at a time in the
bag's evaluation order; at each level the candidate values are the
intersection of the sets offered by every relation containing that
attribute.  The intersection kernels provide the min property, so the
whole bag runs within its AGM bound.

The evaluator splits the attribute order into an *output* prefix and an
*aggregated* suffix: output levels enumerate and emit values, while
suffix levels fold annotations with the rule's semiring without ever
materializing bindings — the "early aggregation" that GHD plans enable
(paper §3.1.1).  Two leaf-level fast paths keep the inner loop
vectorized: unannotated counting uses set cardinalities directly, and
annotated folds gather annotation vectors with one ``searchsorted``.
"""

import numpy as np

from ..errors import ExecutionError
from ..sets.intersect import _config_crossover, intersect_many
from .semiring import EXISTS, Semiring


class BagInput:
    """One relation participating in a bag's generic join.

    ``variables`` must equal the trie's level order restricted to this
    atom — i.e. ``trie.key_order`` already reflects the bag evaluation
    order.
    """

    __slots__ = ("trie", "variables", "annotated", "name")

    def __init__(self, trie, variables, annotated=False, name=None):
        self.trie = trie
        self.variables = tuple(variables)
        self.annotated = annotated
        self.name = name if name is not None else trie.name
        if len(self.variables) != trie.arity:
            raise ExecutionError(
                "input %s has %d variables but trie arity %d"
                % (self.name, len(self.variables), trie.arity))


class BagResult:
    """Materialized output of one bag.

    ``data`` is an ``(n, k)`` uint32 matrix over ``out_attrs``;
    ``annotations`` is a parallel float array (or ``None``);
    0-attribute aggregates expose the folded value as :attr:`scalar`.
    """

    __slots__ = ("out_attrs", "data", "annotations", "scalar")

    def __init__(self, out_attrs, data, annotations=None, scalar=None):
        self.out_attrs = tuple(out_attrs)
        self.data = data
        self.annotations = annotations
        self.scalar = scalar

    @property
    def cardinality(self):
        """Number of result tuples."""
        return int(self.data.shape[0])

    def __repr__(self):
        if self.scalar is not None and not self.out_attrs:
            return "BagResult(scalar=%s)" % self.scalar
        return "BagResult(%s, %d tuples)" % (list(self.out_attrs),
                                             self.cardinality)


def empty_bag_result(eval_order, out_count, semiring):
    """The :class:`BagResult` of a bag with no bindings."""
    if out_count == 0:
        return BagResult((), np.empty((0, 0), dtype=np.uint32),
                         scalar=semiring.zero)
    return BagResult(tuple(eval_order)[:out_count],
                     np.empty((0, out_count), dtype=np.uint32),
                     annotations=np.empty(0, dtype=np.float64))


def assemble_chunks(eval_order, out_count, chunks, semiring):
    """Concatenate emission chunks into one :class:`BagResult`.

    A chunk is ``(prefix_tuple, values_array, ann_array)``: either a
    pure-leaf run (``values`` holds the last output column for one
    prefix) or a boundary emission (``values`` empty, the prefix is a
    complete row with one annotation).  Shared by the interpreting
    :class:`BagEvaluator` and the generated code, which guarantees both
    produce byte-identical result arrays for the same chunk stream.
    """
    out_attrs = tuple(eval_order)[:out_count]
    if not chunks:
        return empty_bag_result(eval_order, out_count, semiring)
    rows = []
    anns = []
    for prefix, values, factors in chunks:
        if values.shape[0]:
            block = np.empty((values.shape[0], out_count),
                             dtype=np.uint32)
            for column, value in enumerate(prefix):
                block[:, column] = value
            block[:, out_count - 1] = values
            rows.append(block)
            anns.append(factors)
        else:
            rows.append(np.asarray(prefix,
                                   dtype=np.uint32).reshape(1, -1))
            anns.append(factors)
    data = np.concatenate(rows) if rows \
        else np.empty((0, out_count), dtype=np.uint32)
    annotations = np.concatenate(anns) if anns else None
    return BagResult(out_attrs, data, annotations=annotations)


class BagEvaluator:
    """Runs Algorithm 1 for one bag.

    Parameters
    ----------
    eval_order:
        The bag's attributes, output attributes first.
    out_count:
        How many leading attributes of ``eval_order`` are emitted.
    inputs:
        :class:`BagInput` list.
    semiring:
        Fold for the aggregated suffix (ignored when
        ``out_count == len(eval_order)``); :data:`EXISTS` gives
        set-semantics projection.
    config:
        :class:`~repro.engine.config.EngineConfig` supplying the
        intersection switches and op counter.
    """

    def __init__(self, eval_order, out_count, inputs, semiring, config,
                 restrict_level0=None):
        self.order = tuple(eval_order)
        self.out_count = out_count
        self.inputs = list(inputs)
        self.semiring = semiring if semiring is not None else EXISTS
        if not isinstance(self.semiring, Semiring):
            raise ExecutionError("semiring must be a Semiring instance")
        self.config = config
        #: Optional extra set intersected at level 0 — the hook the
        #: parallel driver uses to partition the outermost loop across
        #: workers (the paper's multi-core strategy).
        self.restrict_level0 = restrict_level0
        self.n_levels = len(self.order)
        # Precompute, per level, which inputs participate and at which of
        # their own levels the attribute sits.
        self.participants = []
        for level, attr in enumerate(self.order):
            rows = []
            for index, bag_input in enumerate(self.inputs):
                if attr in bag_input.variables:
                    position = bag_input.variables.index(attr)
                    is_last = position == len(bag_input.variables) - 1
                    rows.append((index, is_last))
            if not rows:
                raise ExecutionError("attribute %r not covered by any "
                                     "input" % (attr,))
            self.participants.append(rows)
        self._cursors = [bag_input.trie.root for bag_input in self.inputs]
        self._chunks = []       # (prefix_tuple, values_array, ann_array)
        self._prefix = []
        # Observability hooks, resolved once so the per-intersection
        # cost when disabled is a single ``is not None`` check.
        self._metrics = getattr(config, "metrics", None)
        tracer = getattr(config, "tracer", None)
        self._trace = tracer if (tracer is not None and tracer.enabled
                                 and tracer.capture_intersections) \
            else None

    # -- public -------------------------------------------------------------

    def run(self):
        """Evaluate the bag and return a :class:`BagResult`."""
        fast = self.try_fast_paths()
        if fast is not None:
            return fast
        if self.out_count == 0:
            scalar, _ = self._fold(0, 1.0)
            return BagResult((), np.empty((0, 0), dtype=np.uint32),
                             scalar=scalar)
        self._emit(0, 1.0)
        return self._assemble()

    def try_fast_paths(self):
        """Probe the serial short-circuits without entering the loop nest.

        Returns a finished :class:`BagResult` when an input is empty or a
        vectorized whole-bag path applies, else ``None``.  The parallel
        driver calls this before morselizing — the fast paths are already
        cheaper than any fork, and they do not compose with
        ``restrict_level0`` partitioning.
        """
        if any(inp.trie.cardinality == 0 for inp in self.inputs):
            return self._empty_result()
        if self.restrict_level0 is not None:
            return None
        fast = self._try_identity_scan()
        if fast is not None:
            return fast
        return self._try_vectorized_two_level()

    # -- identity scan fast path ----------------------------------------------

    def _try_identity_scan(self):
        """A bag with a single input whose attributes are all emitted is
        just that relation's (already sorted, deduplicated) tuples —
        no joins happen, so skip the loop nest entirely."""
        if len(self.inputs) != 1 or self.out_count != self.n_levels:
            return None
        bag_input = self.inputs[0]
        if bag_input.variables != self.order:
            return None
        data = bag_input.trie.sorted_data
        if bag_input.annotated:
            annotations = np.array(bag_input.trie.sorted_annotations)
        else:
            annotations = np.ones(data.shape[0], dtype=np.float64)
        return BagResult(self.order, data, annotations=annotations)

    # -- vectorized two-level fast path ---------------------------------------

    def _try_vectorized_two_level(self):
        """Whole-bag vectorized evaluation for the shape that graph
        analytics compile to: ``Agg(x; ...) :- B(x,z), U1(z), U2(z), ...``
        — one binary atom ordered (out, aggregated) plus unary atoms over
        either variable, aggregating ``z`` away per ``x``.

        This plays the role of the paper's generated C++ inner loop for
        PageRank/SSSP-style rules: instead of intersecting per ``x``, the
        binary relation's sorted tuple array is filtered against the
        unary sets with vectorized searches and segment-reduced per
        ``x``.  Returns ``None`` when the bag does not fit, falling back
        to the generic recursion.  Disabled with ``simd=False`` (the
        "-S" ablation runs scalar loops).
        """
        if not self.config.simd or self.out_count != 1 \
                or self.n_levels != 2:
            return None
        if self.semiring.name not in ("SUM", "COUNT", "MIN", "MAX",
                                      "EXISTS"):
            return None
        out_attr, agg_attr = self.order
        binary = None
        unary_agg = []
        unary_out = []
        for bag_input in self.inputs:
            if bag_input.variables == (out_attr, agg_attr):
                if binary is not None:
                    return None  # two binary atoms: generic path
                binary = bag_input
            elif bag_input.variables == (agg_attr,):
                unary_agg.append(bag_input)
            elif bag_input.variables == (out_attr,):
                unary_out.append(bag_input)
            else:
                return None
        if binary is None or binary.annotated:
            return None
        pairs = binary.trie.sorted_data
        if pairs.shape[0] == 0:
            return self._empty_result()
        out_col = pairs[:, 0]
        agg_col = pairs[:, 1]
        factors = np.ones(pairs.shape[0], dtype=np.float64)
        mask = np.ones(pairs.shape[0], dtype=bool)
        counter = self.config.counter
        counter.charge("vectorized_two_level",
                       simd=-(-pairs.shape[0] // 4),
                       elements=int(pairs.shape[0]))
        for bag_input in unary_agg:
            keys = bag_input.trie.root.set.to_array()
            positions = np.searchsorted(keys, agg_col)
            clipped = np.minimum(positions, keys.size - 1)
            found = keys[clipped] == agg_col
            mask &= found
            counter.charge("vectorized_two_level",
                           simd=-(-pairs.shape[0] // 4))
            if bag_input.annotated:
                annotations = bag_input.trie.root.annotations
                factors *= np.where(found, annotations[clipped], 1.0)
        if not mask.any():
            return self._empty_result()
        out_keys = out_col[mask]
        values = factors[mask]
        # Segment-reduce per out key (out_col is sorted ascending).
        boundaries = np.ones(out_keys.shape[0], dtype=bool)
        boundaries[1:] = out_keys[1:] != out_keys[:-1]
        starts = np.nonzero(boundaries)[0]
        group_keys = out_keys[starts]
        if self.semiring.name in ("SUM", "COUNT"):
            reduced = np.add.reduceat(values, starts)
        elif self.semiring.name == "MIN":
            reduced = np.minimum.reduceat(values, starts)
        elif self.semiring.name == "MAX":
            reduced = np.maximum.reduceat(values, starts)
        else:  # EXISTS
            reduced = np.ones(starts.size, dtype=np.float64)
        # Unary atoms over the out variable filter the groups and
        # multiply their annotations after the reduction.
        keep = np.ones(group_keys.shape[0], dtype=bool)
        for bag_input in unary_out:
            keys = bag_input.trie.root.set.to_array()
            positions = np.searchsorted(keys, group_keys)
            clipped = np.minimum(positions, keys.size - 1)
            found = keys[clipped] == group_keys
            keep &= found
            counter.charge("vectorized_two_level",
                           simd=-(-group_keys.shape[0] // 4))
            if bag_input.annotated:
                annotations = bag_input.trie.root.annotations
                reduced = np.where(found, reduced * annotations[clipped],
                                   reduced)
        group_keys = group_keys[keep]
        reduced = reduced[keep]
        data = group_keys.reshape(-1, 1).astype(np.uint32)
        return BagResult((out_attr,), data,
                         annotations=reduced.astype(np.float64))

    # -- helpers -------------------------------------------------------------

    def _empty_result(self):
        return empty_bag_result(self.order, self.out_count, self.semiring)

    def _level_sets(self, level):
        return [self._cursors[index].set
                for index, _ in self.participants[level]]

    def _intersect(self, level):
        sets = self._level_sets(level)
        if level == 0 and self.restrict_level0 is not None:
            sets = sets + [self.restrict_level0]
        if len(sets) == 1:
            return sets[0]
        tracer = self._trace
        start = tracer.now() if tracer is not None else 0.0
        result = intersect_many(
            sets, counter=self.config.counter,
            algorithm=self.config.uint_algorithm,
            adaptive=self.config.adaptive_algorithms,
            simd=self.config.simd,
            crossover=_config_crossover(self.config))
        if tracer is not None:
            tracer.record(
                "intersect:L%d" % level, "intersect", start, tracer.now(),
                args={"inputs": [int(s.cardinality) for s in sets],
                      "out": int(result.cardinality)})
        if self._metrics is not None:
            self._metrics.observe("intersection.size",
                                  int(result.cardinality))
        return result

    def _descend(self, level, value):
        """Advance participating cursors into ``value``; returns the
        annotation product collected from inputs that just bound their
        last attribute, plus an undo list."""
        ann = 1.0
        undo = []
        for index, is_last in self.participants[level]:
            cursor = self._cursors[index]
            if is_last:
                if self.inputs[index].annotated:
                    ann *= cursor.annotation(value)
            else:
                undo.append((index, cursor))
                self._cursors[index] = cursor.child(value)
        return ann, undo

    def _undo(self, undo):
        for index, cursor in undo:
            self._cursors[index] = cursor

    def _leaf_annotated_fold(self, level, values, ann):
        """Vectorized per-value annotation products at the deepest level."""
        factors = np.full(values.shape[0], ann, dtype=np.float64)
        for index, _ in self.participants[level]:
            bag_input = self.inputs[index]
            if not bag_input.annotated:
                continue
            node = self._cursors[index]
            member_values = node.set.to_array()
            ranks = np.searchsorted(member_values, values)
            factors *= node.annotations[ranks]
        return factors

    def _leaf_has_annotations(self, level):
        return any(self.inputs[index].annotated
                   for index, _ in self.participants[level])

    # -- aggregated suffix ----------------------------------------------------

    def _fold(self, level, ann):
        """Fold the semiring over levels ``[level, n_levels)``.

        Returns ``(value, found)`` — ``found`` distinguishes "no
        bindings" from a fold that legitimately equals the semiring zero
        (e.g. annotations summing to 0.0).
        """
        candidates = self._intersect(level)
        if candidates.cardinality == 0:
            return self.semiring.zero, False
        semiring = self.semiring
        if level == self.n_levels - 1:
            if not self._leaf_has_annotations(level):
                if semiring is EXISTS:
                    return 1.0, True
                if semiring.name in ("SUM", "COUNT"):
                    return ann * candidates.cardinality, True
                return ann, True  # MIN/MAX of a constant product
            values = candidates.to_array()
            factors = self._leaf_annotated_fold(level, values, ann)
            return semiring.fold_leaf(factors), True
        total = semiring.zero
        found = False
        for value in candidates:
            child_ann, undo = self._descend(level, value)
            deeper, deeper_found = self._fold(level + 1, ann * child_ann)
            self._undo(undo)
            if deeper_found:
                total = semiring.plus(total, deeper) if found else deeper
                found = True
                if semiring is EXISTS:
                    return 1.0, True  # early exit: one witness suffices
        return total, found

    # -- output prefix --------------------------------------------------------

    def _emit(self, level, ann):
        candidates = self._intersect(level)
        if candidates.cardinality == 0:
            return
        at_out_leaf = level == self.out_count - 1
        pure_leaf = at_out_leaf and self.out_count == self.n_levels
        if pure_leaf:
            values = candidates.to_array()
            if self._leaf_has_annotations(level):
                factors = self._leaf_annotated_fold(level, values, ann)
            else:
                factors = np.full(values.shape[0], ann, dtype=np.float64)
            self._chunks.append((tuple(self._prefix), values, factors))
            return
        for value in candidates:
            child_ann, undo = self._descend(level, value)
            prefix_ann = ann * child_ann
            self._prefix.append(value)
            if at_out_leaf:
                deeper, found = self._fold(level + 1, 1.0)
                if found:
                    self._chunks.append((
                        tuple(self._prefix),
                        np.empty(0, dtype=np.uint32),
                        np.asarray([prefix_ann * deeper])))
            else:
                self._emit(level + 1, prefix_ann)
            self._prefix.pop()
            self._undo(undo)

    def _assemble(self):
        return assemble_chunks(self.order, self.out_count, self._chunks,
                               self.semiring)


def evaluate_bag(eval_order, out_count, inputs, semiring, config):
    """Convenience wrapper around :class:`BagEvaluator`."""
    return BagEvaluator(eval_order, out_count, inputs, semiring,
                        config).run()
