"""Compiled-plan caching for the code-generating execution path.

EmptyHeaded compiles a query once and amortizes the compilation over
repeated executions; this module supplies the three cache tiers that
make the compiled path's repeat cost approach the pure join work:

* **program tier** — query text → parsed rule ASTs, so a repeated
  ``Database.query`` call skips the parser entirely;
* **rule tier** — rule text → :class:`CompiledRule` (GHD choice, global
  order, per-bag generated functions, baked base tries), guarded by
  catalog relation *identity* so replacing a relation (new load,
  recursion round) transparently invalidates;
* **bag-source tier** — normalized bag signature (attribute order +
  head split + semiring + per-input layouts/annotations) → compiled
  :class:`~repro.engine.codegen.GeneratedQuery`, so structurally
  identical bags across different rules share one ``exec``.

Every tier keys on :func:`config_signature` — the engine switches that
change results or plan shape — so ablation configs never cross-hit.
"""

from .codegen import GeneratedQuery  # noqa: F401  (re-export for callers)

#: Default per-tier entry cap; oldest entries evict first (dict order).
MAX_ENTRIES = 256


def config_signature(config):
    """The :class:`~repro.engine.config.EngineConfig` switches a cached
    plan depends on.  Anything that alters plan shape, kernel choice,
    or result layout must appear here; the op counter and the
    scheduling-only knobs (``parallel_*``, ``shared_tries`` — which
    change where plans run, not what they compute) must not."""
    adaptive = getattr(config, "adaptive", False)
    tuning = getattr(config, "tuning", None)
    # Tuned constants change layout choices and generated dispatch, so a
    # tuned config must never share plans with the default config (the
    # fuzzer runs both in one process).  Re-planning alone (adaptive
    # with no profile) changes constants not at all, but the adaptive
    # flag still participates so evictions never bleed across configs.
    tuning_sig = (tuning.signature()
                  if adaptive and tuning is not None else None)
    return (config.layout_level, config.adaptive_algorithms, config.simd,
            config.use_ghd, config.push_selections,
            config.eliminate_redundant_bags, config.skip_top_down,
            config.uint_algorithm, config.prune_attributes,
            config.fold_constants, config.fused_kernels,
            adaptive, tuning_sig)


class CompiledBag:
    """One GHD bag lowered to a generated function plus its runtime
    wiring: the baked base-relation tries (in spec order), the static
    shape of every child pass-up input, and the bag-equivalence
    signature the redundant-bag elimination memoizes on."""

    __slots__ = ("eval_order", "out_attrs", "out_count", "base_inputs",
                 "passups", "generated", "chi", "width", "input_names",
                 "signature", "canonical_out")

    def __init__(self, eval_order, out_attrs, base_inputs, passups,
                 generated, chi=(), width=0.0, input_names=(),
                 signature=None, canonical_out=()):
        self.eval_order = tuple(eval_order)
        self.out_attrs = tuple(out_attrs)
        self.out_count = len(self.out_attrs)
        #: BagInput list over cache-owned tries (base relations only).
        self.base_inputs = list(base_inputs)
        #: ``(ordered_vars, key_order, annotated)`` per pass-up child,
        #: in child order, for children that pass a relation up.
        self.passups = list(passups)
        self.generated = generated
        self.chi = tuple(chi)
        self.width = width
        self.input_names = list(input_names)
        #: Structural signature (ghd.equivalence) for run-time reuse.
        self.signature = signature
        self.canonical_out = tuple(canonical_out)


class CompiledRule:
    """A rule compiled for repeated execution.

    ``kind`` selects the runtime driver:

    ``"plan"``
        Normal GHD plan — ``bags`` maps ``id(node)`` to
        :class:`CompiledBag`, walked bottom-up over ``ghd``.
    ``"count_distinct"``
        ``<<COUNT(v)>>`` rules — ``inner`` holds the compiled pseudo
        materialization plan; the distinct-count finalizer runs on its
        result.
    ``"empty"``
        A 0-ary guard atom was empty at compile time — the rule's
        result is statically empty.

    ``guards`` pins the catalog relations the compilation read as
    ``(name, relation, version)`` triples; the cache revalidates them by
    identity *and* mutation version before reuse.  ``logical`` keeps
    the optimized :class:`~repro.lir.ir.LogicalRule` the plan was
    lowered from — the finalizers read the *rewritten* assignment
    expression and head from it, not from the raw AST rule.
    """

    __slots__ = ("kind", "rule", "guards", "ghd", "duplicates",
                 "global_order", "semiring", "aggregate_mode", "bags",
                 "inner", "logical")

    def __init__(self, kind, rule, guards, ghd=None, duplicates=(),
                 global_order=(), semiring=None, aggregate_mode=False,
                 bags=None, inner=None, logical=None):
        self.kind = kind
        self.rule = rule
        self.guards = tuple(guards)
        self.ghd = ghd
        self.duplicates = duplicates
        self.global_order = tuple(global_order)
        self.semiring = semiring
        self.aggregate_mode = aggregate_mode
        self.bags = bags if bags is not None else {}
        self.inner = inner
        self.logical = logical

    def valid(self, catalog):
        """True while every relation the compilation saw is still the
        installed one *and* unmutated.

        The identity check catches wholesale replacement (rule heads,
        recursion rounds); the version check catches in-place mutation
        (``Database.append`` / ``delete``), whose baked tries would
        otherwise serve stale contents.
        """
        return all(catalog.get(name) is relation
                   and getattr(relation, "version", 0) == version
                   for name, relation, version in self.guards)


class PlanCache:
    """Three-tier cache: programs, compiled rules, generated bag code."""

    def __init__(self, max_entries=MAX_ENTRIES):
        self.max_entries = max_entries
        self._programs = {}
        self._rules = {}
        self._bag_code = {}

    # -- program tier -------------------------------------------------------

    def get_program(self, key):
        """Parsed rules for ``(text, config_signature)`` or ``None``."""
        return self._programs.get(key)

    def put_program(self, key, rules):
        self._evict(self._programs)
        self._programs[key] = rules

    # -- rule tier ----------------------------------------------------------

    def get_rule(self, key, catalog):
        """Valid :class:`CompiledRule` for the key, or ``None``.

        Stale entries (a guard relation was replaced) are dropped on
        probe, so the caller recompiles exactly once per invalidation.
        """
        compiled = self._rules.get(key)
        if compiled is None:
            return None
        if not compiled.valid(catalog):
            del self._rules[key]
            return None
        return compiled

    def put_rule(self, key, compiled):
        self._evict(self._rules)
        self._rules[key] = compiled

    def evict_rule(self, key):
        """Surgically drop one compiled rule (mispredict-driven
        re-planning): the next execution re-plans from scratch with
        whatever cardinality feedback the executor has accumulated.
        Returns whether an entry was present."""
        return self._rules.pop(key, None) is not None

    # -- bag-source tier ----------------------------------------------------

    def get_bag_code(self, signature):
        """Compiled :class:`GeneratedQuery` for a bag signature."""
        return self._bag_code.get(signature)

    def put_bag_code(self, signature, generated):
        self._evict(self._bag_code)
        self._bag_code[signature] = generated

    # -- maintenance --------------------------------------------------------

    def _evict(self, tier):
        while len(tier) >= self.max_entries:
            tier.pop(next(iter(tier)))

    def clear(self):
        self._programs.clear()
        self._rules.clear()
        self._bag_code.clear()

    def sizes(self):
        """Per-tier entry counts — feeds the observability gauges."""
        return {"programs": len(self._programs),
                "rules": len(self._rules),
                "bag_code": len(self._bag_code)}

    def __len__(self):
        return len(self._programs) + len(self._rules) \
            + len(self._bag_code)
