"""The versioned tuning profile read by every adaptive dispatch site.

This module must stay importable by :mod:`repro.engine.config` without
creating an import cycle, so it depends on nothing but the standard
library — no numpy, no engine, no sets.  The calibration side
(:mod:`repro.tune.calibrate`) is where the heavy imports live.

A profile is a plain JSON file::

    {
      "version": 1,
      "source": "calibrated",
      "fingerprint": {"platform": "...", "python": "...", ...},
      "galloping_crossover": 8.0,
      "density_threshold": 256.0,
      "parallel_threshold": 128,
      "fused_block_rows": 8388608,
      "fused_probe_crossover": 16.0
    }

Loading is deliberately forgiving: a missing file, unparseable JSON, a
version mismatch, or out-of-range values all yield ``None`` — callers
fall back to the hard-coded defaults, so a stale profile can never
crash or corrupt a query (the "profile absent or stale ⇒ behavior
identical to defaults" acceptance bar).
"""

import json
import os
import platform
from dataclasses import dataclass, field

#: Bump when the profile schema or the semantics of a field change.
#: Profiles with any other version are ignored (clean fallback).
PROFILE_VERSION = 1

#: Defaults mirroring the engine's hard-coded constants.  Kept in sync
#: by tests against ``repro.sets.cost`` / ``repro.engine.fused`` — this
#: module cannot import them (layering).
DEFAULT_GALLOPING_CROSSOVER = 32.0
DEFAULT_DENSITY_THRESHOLD = 256.0      # sets.cost.SIMD_REGISTER_BITS
DEFAULT_PARALLEL_THRESHOLD = 64        # engine.config default
DEFAULT_FUSED_BLOCK_ROWS = 1 << 23    # engine.fused.MAX_BLOCK_ROWS
DEFAULT_FUSED_PROBE_CROSSOVER = None   # None = sweep disabled (default path)

#: Sanity clamps applied on load: a corrupt or adversarial profile can
#: shift constants, never break correctness, but absurd values would
#: still hurt (e.g. fused_block_rows=1 would fall back on every block).
_BOUNDS = {
    "galloping_crossover": (1.0, 4096.0),
    "density_threshold": (1.0, 1 << 20),
    "parallel_threshold": (2, 1 << 24),
    "fused_block_rows": (1 << 12, 1 << 28),
    "fused_probe_crossover": (1.0, 4096.0),
}


def machine_fingerprint():
    """Identify the machine a profile was calibrated on (informational:
    mismatches are reported, never rejected — ratios transfer better
    across hosts than absolute timings do)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


def _clamp(name, value):
    low, high = _BOUNDS[name]
    return min(max(value, low), high)


@dataclass
class TuningProfile:
    """Calibrated dispatch constants, one source of truth for adaptive
    execution.

    ``None`` for any field means "use the engine default" — the config
    accessors skip it.  ``fused_probe_crossover`` defaults to ``None``
    because the skew-aware fused sweep is opt-in even under adaptive
    execution until a calibration has priced it.
    """

    galloping_crossover: float = DEFAULT_GALLOPING_CROSSOVER
    density_threshold: float = DEFAULT_DENSITY_THRESHOLD
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD
    fused_block_rows: int = DEFAULT_FUSED_BLOCK_ROWS
    fused_probe_crossover: float = DEFAULT_FUSED_PROBE_CROSSOVER
    source: str = "default"
    fingerprint: dict = field(default_factory=machine_fingerprint)
    version: int = PROFILE_VERSION

    def signature(self):
        """Hashable identity for plan-cache keying: two configs with
        different tuned constants must never share compiled plans."""
        return (self.version,
                self.galloping_crossover,
                self.density_threshold,
                self.parallel_threshold,
                self.fused_block_rows,
                self.fused_probe_crossover)

    def to_dict(self):
        return {
            "version": self.version,
            "source": self.source,
            "fingerprint": dict(self.fingerprint),
            "galloping_crossover": self.galloping_crossover,
            "density_threshold": self.density_threshold,
            "parallel_threshold": self.parallel_threshold,
            "fused_block_rows": self.fused_block_rows,
            "fused_probe_crossover": self.fused_probe_crossover,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a profile from a dict, or ``None`` when the payload
        is not a usable version-``PROFILE_VERSION`` profile."""
        if not isinstance(data, dict):
            return None
        if data.get("version") != PROFILE_VERSION:
            return None
        try:
            kwargs = {}
            for name in ("galloping_crossover", "density_threshold",
                         "fused_probe_crossover"):
                value = data.get(name)
                kwargs[name] = (None if value is None
                                else _clamp(name, float(value)))
            for name in ("parallel_threshold", "fused_block_rows"):
                value = data.get(name)
                kwargs[name] = (None if value is None
                                else int(_clamp(name, int(value))))
            return cls(source=str(data.get("source", "loaded")),
                       fingerprint=dict(data.get("fingerprint") or {}),
                       **kwargs)
        except (TypeError, ValueError):
            return None

    def save(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def describe(self):
        """One-line-per-field summary for the CLI."""
        lines = ["tuning profile (version %d, source=%s)"
                 % (self.version, self.source)]
        for name in ("galloping_crossover", "density_threshold",
                     "parallel_threshold", "fused_block_rows",
                     "fused_probe_crossover"):
            lines.append("  %-22s %s" % (name, getattr(self, name)))
        host = self.fingerprint or {}
        if host:
            lines.append("  calibrated on: %s (%s cpus)"
                         % (host.get("platform", "?"),
                            host.get("cpu_count", "?")))
        return "\n".join(lines)


def load_profile(path):
    """Load a profile from ``path``; ``None`` on *any* failure.

    Missing file, malformed JSON, wrong version, wrong types — all are
    treated as "no profile": the engine must keep running on defaults
    rather than fail a query because a tuning file went stale.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return TuningProfile.from_dict(data)
