"""Machine (and optional dataset) calibration microbenchmarks.

Each fitter times the *actual numpy kernels* the engine dispatches
between and locates the input regime where the winner flips, producing
one field of the :class:`~repro.tune.profile.TuningProfile`:

* ``galloping_crossover`` — the cardinality ratio where the
  galloping-family (``searchsorted``) kernel starts beating the
  shuffling-family (``intersect1d``) kernel.  The paper's hardware put
  this at 32:1; numpy's ``intersect1d`` pays a concatenate+sort over
  both inputs, so on this substrate the real crossover is far lower —
  which is exactly the kind of machine-dependent constant calibration
  exists to correct.
* ``density_threshold`` — the inverse-density (range/cardinality) below
  which bitset blocks beat sorted-uint arrays.
* ``parallel_threshold`` — candidate count where forking workers
  amortizes; derived from fork overhead vs per-candidate serial cost.
* ``fused_block_rows`` — expansion budget sized so one fused block
  stays within a fixed latency envelope.
* ``fused_probe_crossover`` — skew ratio where the fused kernel's
  tile+probe sweep beats CSR ``np.repeat`` expansion.

Determinism: all inputs come from ``np.random.default_rng(seed)`` and
the clock is injectable (``timer=``), so tests can drive the fit with a
fake monotone counter and assert two runs produce identical profiles.
All fits clamp into the sanity bounds of :mod:`repro.tune.profile`.
"""

import os
import time

import numpy as np

from ..sets.intersect import uint_shuffling, uint_simd_galloping
from .profile import TuningProfile, machine_fingerprint

#: Repetitions per timed point; the minimum is kept (standard
#: microbenchmark noise floor).
_REPS = 5
_QUICK_REPS = 3

#: Latency envelope one fused block expansion should fit in (seconds).
_FUSED_BLOCK_BUDGET_S = 0.1


def _sorted_unique(rng, size, span):
    """A sorted unique uint32 sample of ``size`` values in [0, span)."""
    size = int(size)
    span = max(int(span), size)
    values = rng.choice(span, size=size, replace=False)
    return np.sort(values).astype(np.uint32)


def _best_of(timer, reps, fn, *args):
    """Minimum wall time of ``reps`` calls to ``fn``."""
    best = None
    for _ in range(reps):
        start = timer()
        fn(*args)
        elapsed = timer() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _flip_point(grid, win_small):
    """Geometric midpoint of the first sustained win flip along ``grid``.

    ``win_small[i]`` says the "small-regime" kernel won at ``grid[i]``.
    Returns the midpoint between the last winning and first losing grid
    point, or ``None`` when one kernel wins everywhere (caller keeps
    the default)."""
    for i in range(1, len(grid)):
        if not win_small[i] and all(not w for w in win_small[i:]):
            return float(np.sqrt(grid[i - 1] * grid[i]))
    return None


def _fit_galloping_crossover(rng, timer, reps):
    """Time shuffling vs galloping across a skew-ratio grid."""
    small_size = 256
    ratios = (1, 2, 4, 8, 16, 32, 64, 128)
    shuffling_wins = []
    for ratio in ratios:
        large_size = small_size * ratio
        span = large_size * 8
        a = _sorted_unique(rng, small_size, span)
        b = _sorted_unique(rng, large_size, span)
        t_shuffle = _best_of(timer, reps, uint_shuffling, a, b)
        t_gallop = _best_of(timer, reps, uint_simd_galloping, a, b)
        shuffling_wins.append(t_shuffle <= t_gallop)
    return _flip_point(ratios, shuffling_wins)


def _fit_density_threshold(rng, timer, reps):
    """Time uint-array vs bitset intersection across an inverse-density
    grid (span / cardinality; smaller = denser)."""
    from ..sets.bitset import BitSet
    from ..sets.intersect import intersect_bitsets, intersect_uint_arrays

    card = 2048
    inverse_densities = (2, 8, 32, 128, 512, 2048)
    bitset_wins = []
    for inv in inverse_densities:
        span = card * inv
        a = _sorted_unique(rng, card, span)
        b = _sorted_unique(rng, card, span)
        bs_a, bs_b = BitSet(a), BitSet(b)
        t_uint = _best_of(timer, reps, intersect_uint_arrays, a, b)
        t_bits = _best_of(timer, reps, intersect_bitsets, bs_a, bs_b)
        bitset_wins.append(t_bits <= t_uint)
    return _flip_point(inverse_densities, bitset_wins)


def _fit_parallel_threshold(timer, reps):
    """Candidate count where forking a worker pool amortizes.

    Forks are priced directly (``os.fork`` + wait on POSIX, skipped
    elsewhere); per-candidate serial cost comes from a small timed
    probe loop.  threshold ≈ fork_overhead / per_candidate_cost."""
    probe = np.arange(4096, dtype=np.uint32)
    per_candidate = _best_of(
        timer, reps, lambda: np.searchsorted(probe, probe).sum())
    per_candidate = max(per_candidate / probe.size, 1e-9)
    fork_cost = None
    if hasattr(os, "fork"):
        try:
            for _ in range(reps):
                start = timer()
                pid = os.fork()
                if pid == 0:
                    os._exit(0)
                os.waitpid(pid, 0)
                elapsed = timer() - start
                if fork_cost is None or elapsed < fork_cost:
                    fork_cost = elapsed
        except OSError:
            fork_cost = None
    if fork_cost is None:
        return None
    return int(fork_cost / per_candidate)


def _fit_fused_block_rows(timer, reps):
    """Rows of one representative fused block that fit the latency
    envelope.

    The timed block mirrors what :class:`repro.engine.fused` actually
    does per level — CSR ``np.repeat`` expansion, a value gather, a
    packed ``uint64`` probe, and the keep-mask compression — at a row
    count large enough to spill cache, so the fitted throughput prices
    memory bandwidth, not just ``np.repeat``."""
    rows = 1 << 21
    fanout = 8
    parents = np.arange(rows // fanout, dtype=np.int64)
    counts = np.full(parents.size, fanout, dtype=np.int64)
    values = np.arange(1 << 16, dtype=np.uint32)
    src = np.arange(rows) % values.size
    packed = np.arange(1 << 16, dtype=np.uint64) << np.uint64(32)

    def block():
        parent = np.repeat(parents, counts)
        vals = values[src]
        pk = (parent.astype(np.uint64) << np.uint64(32)) \
            | vals.astype(np.uint64)
        idx = np.searchsorted(packed, pk)
        clamped = np.minimum(idx, packed.size - 1)
        keep = packed[clamped] == pk
        parent[keep]
        vals[keep]

    elapsed = _best_of(timer, reps, block)
    if elapsed <= 0:
        return None
    rows_per_second = rows / elapsed
    return int(rows_per_second * _FUSED_BLOCK_BUDGET_S)


def _fit_fused_probe_crossover(rng, timer, reps):
    """Skew ratio where tiling root keys + batched probes beats CSR
    repeat-expansion inside the fused kernel.

    Models the kernel's two strategies on a skewed frontier: a frontier
    of ``frontier`` prefixes whose generator expands ``fanout`` children
    each (repeat path, ``frontier * fanout`` rows) vs tiling a root set
    of ``width`` keys (sweep path, ``frontier * width`` rows of pure
    searchsorted probes)."""
    frontier = 512
    width = 64
    values = np.sort(rng.choice(1 << 20, size=1 << 14, replace=False)
                     .astype(np.uint32))
    root = np.sort(rng.choice(values, size=width, replace=False))
    ratios = (1, 2, 4, 8, 16, 32, 64)
    repeat_wins = []
    parents = np.arange(frontier)
    for ratio in ratios:
        fanout = width * ratio
        counts = np.full(frontier, fanout, dtype=np.int64)
        src = np.arange(frontier * fanout) % values.size

        def repeat_path():
            # CSR expansion: repeat parents over counts, gather child
            # values, then probe-filter them against another input.
            np.repeat(parents, counts)
            vals = values[src]
            idx = np.searchsorted(values, vals)
            clamped = np.minimum(idx, values.size - 1)
            values[clamped] == vals

        def sweep_path():
            # Skew sweep: tile the small root set across the frontier
            # and probe; work is frontier*width regardless of fanout.
            np.repeat(parents, width)
            vals = np.tile(root, frontier)
            idx = np.searchsorted(values, vals)
            clamped = np.minimum(idx, values.size - 1)
            values[clamped] == vals

        t_repeat = _best_of(timer, reps, repeat_path)
        t_sweep = _best_of(timer, reps, sweep_path)
        repeat_wins.append(t_repeat <= t_sweep)
    return _flip_point(ratios, repeat_wins)


def _fit_dataset_crossover(sets, timer, reps):
    """Re-fit the galloping crossover on real adjacency sets sampled
    from a loaded dataset: pair the smallest sets against the largest
    and find the observed flip."""
    arrays = sorted((s for s in sets if s.size >= 4), key=lambda s: s.size)
    if len(arrays) < 2:
        return None
    small = arrays[0]
    ratios, shuffling_wins = [], []
    for large in arrays[1:]:
        ratio = large.size / small.size
        if ratio < 1.5:
            continue
        t_shuffle = _best_of(timer, reps, uint_shuffling, small, large)
        t_gallop = _best_of(timer, reps, uint_simd_galloping, small, large)
        ratios.append(ratio)
        shuffling_wins.append(t_shuffle <= t_gallop)
    if len(ratios) < 2:
        return None
    order = np.argsort(ratios)
    ratios = [ratios[i] for i in order]
    shuffling_wins = [shuffling_wins[i] for i in order]
    return _flip_point(ratios, shuffling_wins)


def calibrate(seed=0, timer=None, quick=False, dataset_sets=None):
    """Run the calibration suite and return a :class:`TuningProfile`.

    Parameters
    ----------
    seed:
        Seeds the synthetic inputs; same seed + same timer ⇒ identical
        profile (the determinism test drives ``timer`` with a fake
        counter).
    timer:
        Clock returning monotonically increasing seconds; defaults to
        :func:`time.perf_counter`.
    quick:
        Fewer repetitions per point (CI smoke).
    dataset_sets:
        Optional iterable of sorted ``uint32`` adjacency arrays sampled
        from a loaded dataset; when given, the galloping crossover is
        re-fit on real skew and overrides the synthetic fit.
    """
    rng = np.random.default_rng(seed)
    if timer is None:
        timer = time.perf_counter
    reps = _QUICK_REPS if quick else _REPS

    defaults = TuningProfile()
    crossover = _fit_galloping_crossover(rng, timer, reps)
    density = _fit_density_threshold(rng, timer, reps)
    par_threshold = _fit_parallel_threshold(timer, reps)
    block_rows = _fit_fused_block_rows(timer, reps)
    probe_crossover = _fit_fused_probe_crossover(rng, timer, reps)
    source = "calibrated"
    if dataset_sets is not None:
        observed = _fit_dataset_crossover(list(dataset_sets), timer, reps)
        if observed is not None:
            crossover = observed
            source = "calibrated+dataset"

    raw = TuningProfile(
        galloping_crossover=(defaults.galloping_crossover
                             if crossover is None else crossover),
        density_threshold=(defaults.density_threshold
                           if density is None else density),
        parallel_threshold=(defaults.parallel_threshold
                            if par_threshold is None else par_threshold),
        fused_block_rows=(defaults.fused_block_rows
                          if block_rows is None else block_rows),
        fused_probe_crossover=probe_crossover,
        source=source,
        fingerprint=machine_fingerprint(),
    )
    # Round-trip through from_dict to apply the sanity clamps uniformly.
    profile = TuningProfile.from_dict(raw.to_dict())
    return raw if profile is None else profile
