"""Adaptive self-tuning: machine/dataset calibration and tuned profiles.

The engine's dispatch constants — the galloping crossover
(:data:`repro.sets.cost.GALLOPING_CROSSOVER`), the uint-vs-bitset layout
density threshold, ``parallel_threshold``, the fused block budget — are
the paper's hard-coded guesses for 2016 hardware.  This package closes
the observe→adapt loop the ROADMAP names:

* :class:`TuningProfile` (:mod:`repro.tune.profile`) — a versioned,
  JSON-serializable bundle of calibrated constants that every dispatch
  site reads through :class:`repro.engine.config.EngineConfig`
  accessors, replacing import-time snapshots with one source of truth.
* :func:`calibrate` (:mod:`repro.tune.calibrate`) — targeted
  microbenchmarks fitting the real crossover points on the current
  machine (and optionally on sampled sets from a loaded dataset).

Activation is explicit: ``Database(adaptive=True)`` / ``--adaptive``
turns on both the tuned constants (when a profile is attached) and
mispredict-driven re-planning in the executor.  With no profile and
``adaptive=False`` — the default — behavior is bit-identical to the
untuned engine.
"""

from .profile import PROFILE_VERSION, TuningProfile, load_profile
from .calibrate import calibrate

__all__ = ["PROFILE_VERSION", "TuningProfile", "calibrate", "load_profile"]
