"""Abstract syntax tree for the EmptyHeaded query language (paper §2.3).

The language is datalog-like: conjunctive rules with optional semiring
aggregation annotations in the head (``Name(x;w:long)``) and a limited
Kleene-star recursion marker (``Name(...)*`` or ``Name(...)*[i=5]``).
Table 1 of the paper shows the full surface syntax this AST covers.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Aggregation operators supported by the semiring machinery.
AGGREGATE_OPS = ("SUM", "MIN", "MAX", "COUNT")


@dataclass(frozen=True)
class Variable:
    """A query variable, e.g. ``x``."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Constant:
    """A literal term, e.g. ``'start'`` or ``3`` — expresses a selection."""

    value: object

    def __str__(self):
        if isinstance(self.value, str):
            return "'%s'" % self.value
        return str(self.value)


@dataclass(frozen=True)
class Atom:
    """One body atom ``Name(t1, ..., tk)``."""

    name: str
    terms: Tuple[object, ...]  # Variable | Constant

    @property
    def variables(self):
        """Names of the variable terms, in positional order."""
        return tuple(t.name for t in self.terms if isinstance(t, Variable))

    @property
    def selections(self):
        """``(position, Constant)`` pairs for the constant terms."""
        return tuple((i, t) for i, t in enumerate(self.terms)
                     if isinstance(t, Constant))

    def __str__(self):
        return "%s(%s)" % (self.name, ",".join(str(t) for t in self.terms))


# -- annotation expressions -------------------------------------------------

@dataclass(frozen=True)
class Num:
    """Numeric literal inside an annotation expression."""

    value: float


@dataclass(frozen=True)
class Ref:
    """Reference to a scalar relation (e.g. ``N`` in ``y = 1/N``)."""

    name: str


@dataclass(frozen=True)
class Agg:
    """An embedded aggregation ``<<OP(arg)>>``; ``arg`` is ``"*"`` or a
    variable name."""

    op: str
    arg: str


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic inside an annotation expression."""

    op: str  # one of + - * /
    left: object
    right: object


def expression_aggregates(expr):
    """Collect every :class:`Agg` node inside an expression tree."""
    if isinstance(expr, Agg):
        return [expr]
    if isinstance(expr, BinOp):
        return expression_aggregates(expr.left) \
            + expression_aggregates(expr.right)
    return []


def expression_refs(expr):
    """Collect every :class:`Ref` name inside an expression tree."""
    if isinstance(expr, Ref):
        return [expr.name]
    if isinstance(expr, BinOp):
        return expression_refs(expr.left) + expression_refs(expr.right)
    return []


def render_expression(expr):
    """Render an expression tree back to query syntax."""
    if isinstance(expr, Num):
        value = expr.value
        return str(int(value)) if float(value).is_integer() \
            else str(value)
    if isinstance(expr, Ref):
        return expr.name
    if isinstance(expr, Agg):
        return "<<%s(%s)>>" % (expr.op, expr.arg)
    if isinstance(expr, BinOp):
        return "%s%s%s" % (render_expression(expr.left), expr.op,
                           render_expression(expr.right))
    return repr(expr)


# -- rules -------------------------------------------------------------------

@dataclass(frozen=True)
class HeadAnnotation:
    """The ``;w:type`` part of a rule head."""

    var: str
    type: str


@dataclass
class Rule:
    """One rule ``Head(...) :- body ; assignment .``.

    Attributes
    ----------
    head_name / head_vars:
        Output relation name and its key variables.
    annotation:
        Optional :class:`HeadAnnotation` for the aggregated value.
    recursive:
        Whether the head carried a Kleene-star marker.
    iterations:
        Fixed iteration count from ``*[i=k]`` (``None`` = run to
        fixpoint).
    body:
        The conjunctive body atoms.
    assignment:
        Expression tree assigned to the annotation variable, or ``None``.
    """

    head_name: str
    head_vars: Tuple[str, ...]
    annotation: Optional[HeadAnnotation]
    recursive: bool
    iterations: Optional[int]
    body: Tuple[Atom, ...]
    assignment: Optional[object]

    @property
    def body_variables(self):
        """All distinct variable names in body order of first appearance."""
        seen = []
        for atom in self.body:
            for name in atom.variables:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    @property
    def aggregates(self):
        """The :class:`Agg` nodes of the assignment expression."""
        if self.assignment is None:
            return []
        return expression_aggregates(self.assignment)

    @property
    def is_aggregation(self):
        """Whether the head declares an annotation column."""
        return self.annotation is not None

    def references(self, name):
        """Whether any body atom refers to relation ``name``."""
        return any(atom.name == name for atom in self.body)

    def __str__(self):
        head_inner = ",".join(self.head_vars)
        if self.annotation is not None:
            head_inner += ";%s:%s" % (self.annotation.var,
                                      self.annotation.type)
        star = ""
        if self.recursive:
            star = "*" if self.iterations is None \
                else "*[i=%d]" % self.iterations
        body = ",".join(str(a) for a in self.body)
        tail = ""
        if self.assignment is not None and self.annotation is not None:
            tail = "; %s=%s" % (self.annotation.var,
                                render_expression(self.assignment))
        return "%s(%s)%s :- %s%s." % (self.head_name, head_inner, star,
                                      body, tail)


def clone_rule(rule, **changes):
    """Copy a :class:`Rule` with some fields replaced.

    The engine uses this for derived rules: recursion flattens the
    Kleene-star marker off, and ``<<COUNT(v)>>`` extends the head with
    the counted variable for its distinct-materialization step.
    """
    values = dict(head_name=rule.head_name, head_vars=rule.head_vars,
                  annotation=rule.annotation, recursive=rule.recursive,
                  iterations=rule.iterations, body=rule.body,
                  assignment=rule.assignment)
    values.update(changes)
    return Rule(**values)


@dataclass
class Program:
    """A sequence of rules executed in order (paper's PageRank is three)."""

    rules: list = field(default_factory=list)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)
