"""Query language: AST, lexer, parser, and hypergraph representation."""

from .ast import (AGGREGATE_OPS, Agg, Atom, BinOp, Constant, HeadAnnotation,
                  Num, Program, Ref, Rule, Variable, expression_aggregates,
                  expression_refs)
from .hypergraph import HyperEdge, Hypergraph
from .lexer import Token, tokenize
from .parser import parse, parse_rule

__all__ = [
    "AGGREGATE_OPS", "Agg", "Atom", "BinOp", "Constant", "HeadAnnotation",
    "Num", "Program", "Ref", "Rule", "Variable", "expression_aggregates",
    "expression_refs",
    "HyperEdge", "Hypergraph",
    "Token", "tokenize",
    "parse", "parse_rule",
]
