"""Recursive-descent parser for the EmptyHeaded query language.

Grammar (Table 1 of the paper, plus Appendix A.2 / B.1.2 forms)::

    program    := rule+
    rule       := head ':-' atoms (';' assignment)? '.'
    head       := IDENT '(' vars? (';' IDENT ':' IDENT)? ')' star?
    star       := '*' ('[' 'i' '=' NUMBER ']')?
    atoms      := atom (',' atom)*
    atom       := IDENT '(' term (',' term)* ')'
    term       := IDENT | STRING | NUMBER
    assignment := IDENT '=' expr
    expr       := mul (('+'|'-') mul)*
    mul        := unit (('*'|'/') unit)*
    unit       := NUMBER | IDENT | aggregate | '(' expr ')'
    aggregate  := '<<' IDENT '(' ('*' | IDENT) ')' '>>'

Identifiers may end in primes (``x'``, ``R'``) as the paper's Barbell
query uses.
"""

from ..errors import QuerySyntaxError
from .ast import (AGGREGATE_OPS, Agg, Atom, BinOp, Constant, HeadAnnotation,
                  Num, Program, Ref, Rule, Variable)
from .lexer import tokenize


class _Parser:
    def __init__(self, text):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token helpers -----------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.index]

    def error(self, message):
        raise QuerySyntaxError(message, self.current.position, self.text)

    def advance(self):
        token = self.current
        self.index += 1
        return token

    def accept(self, kind, text=None):
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            return None
        return self.advance()

    def expect(self, kind, text=None):
        token = self.accept(kind, text)
        if token is None:
            want = text if text is not None else kind
            self.error("expected %r, found %r" % (want, self.current.text))
        return token

    # -- grammar -----------------------------------------------------------

    def parse_program(self):
        rules = []
        while self.current.kind != "EOF":
            rules.append(self.parse_rule())
        if not rules:
            self.error("empty query")
        return Program(rules)

    def parse_rule(self):
        head_name = self.expect("IDENT").text
        self.expect("SYMBOL", "(")
        head_vars = []
        annotation = None
        if not self.accept("SYMBOL", ")"):
            while self.current.kind == "IDENT" \
                    and self.tokens[self.index + 1].text != ":":
                head_vars.append(self.advance().text)
                if not self.accept("SYMBOL", ","):
                    break
            if self.accept("SYMBOL", ";") or (head_vars == []
                                              and self.current.kind
                                              == "IDENT"):
                ann_var = self.expect("IDENT").text
                self.expect("SYMBOL", ":")
                ann_type = self.expect("IDENT").text
                annotation = HeadAnnotation(ann_var, ann_type)
            self.expect("SYMBOL", ")")
        recursive = False
        iterations = None
        if self.accept("SYMBOL", "*"):
            recursive = True
            if self.accept("SYMBOL", "["):
                self.expect("IDENT", "i")
                self.expect("SYMBOL", "=")
                iterations = int(self.expect("NUMBER").text)
                self.expect("SYMBOL", "]")
        self.expect("SYMBOL", ":-")
        body = [self.parse_atom()]
        while self.accept("SYMBOL", ","):
            body.append(self.parse_atom())
        assignment = None
        if self.accept("SYMBOL", ";"):
            assigned_var = self.expect("IDENT").text
            if annotation is not None and assigned_var != annotation.var:
                self.error("assignment to %r but head annotates %r"
                           % (assigned_var, annotation.var))
            self.expect("SYMBOL", "=")
            assignment = self.parse_expression()
        self.expect("SYMBOL", ".")
        if annotation is not None and assignment is None:
            self.error("head annotation %r lacks an assignment"
                       % annotation.var)
        return Rule(head_name=head_name, head_vars=tuple(head_vars),
                    annotation=annotation, recursive=recursive,
                    iterations=iterations, body=tuple(body),
                    assignment=assignment)

    def parse_atom(self):
        name = self.expect("IDENT").text
        self.expect("SYMBOL", "(")
        terms = [self.parse_term()]
        while self.accept("SYMBOL", ","):
            terms.append(self.parse_term())
        self.expect("SYMBOL", ")")
        return Atom(name, tuple(terms))

    def parse_term(self):
        token = self.current
        if token.kind == "IDENT":
            self.advance()
            return Variable(token.text)
        if token.kind == "STRING":
            self.advance()
            return Constant(token.text[1:-1])
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.text)
            return Constant(int(value) if value.is_integer() else value)
        self.error("expected a term, found %r" % token.text)

    # -- annotation expressions ---------------------------------------------

    def parse_expression(self):
        node = self.parse_mul()
        while self.current.text in ("+", "-") \
                and self.current.kind == "SYMBOL":
            op = self.advance().text
            node = BinOp(op, node, self.parse_mul())
        return node

    def parse_mul(self):
        node = self.parse_unit()
        while self.current.text in ("*", "/") \
                and self.current.kind == "SYMBOL":
            op = self.advance().text
            node = BinOp(op, node, self.parse_unit())
        return node

    def parse_unit(self):
        if self.accept("SYMBOL", "<<"):
            op = self.expect("IDENT").text.upper()
            if op not in AGGREGATE_OPS:
                self.error("unknown aggregate %r (supported: %s)"
                           % (op, ", ".join(AGGREGATE_OPS)))
            self.expect("SYMBOL", "(")
            if self.accept("SYMBOL", "*"):
                arg = "*"
            else:
                arg = self.expect("IDENT").text
            self.expect("SYMBOL", ")")
            self.expect("SYMBOL", ">>")
            return Agg(op, arg)
        if self.current.kind == "NUMBER":
            return Num(float(self.advance().text))
        if self.current.kind == "IDENT":
            return Ref(self.advance().text)
        if self.accept("SYMBOL", "("):
            node = self.parse_expression()
            self.expect("SYMBOL", ")")
            return node
        self.error("expected an expression, found %r" % self.current.text)
        return None


def parse(text):
    """Parse query text into a :class:`~repro.query.ast.Program`."""
    return _Parser(text).parse_program()


def parse_rule(text):
    """Parse text expected to contain exactly one rule."""
    program = parse(text)
    if len(program) != 1:
        raise QuerySyntaxError("expected exactly one rule, found %d"
                               % len(program))
    return program.rules[0]
