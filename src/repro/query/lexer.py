"""Tokenizer for the EmptyHeaded query language."""

import re
from dataclasses import dataclass

from ..errors import QuerySyntaxError

#: Token kinds emitted by the lexer.
TOKEN_KINDS = ("IDENT", "NUMBER", "STRING", "SYMBOL", "EOF")

_TOKEN_RE = re.compile(r"""
    (?P<WS>\s+|\#[^\n]*|//[^\n]*)
  | (?P<NUMBER>\d+\.\d+|\.\d+|\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<STRING>'[^']*'|"[^"]*")
  | (?P<SYMBOL>:-|<<|>>|[(),;:.*\[\]=+\-/<>])
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    position: int

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.text)


def tokenize(text):
    """Split query text into tokens, dropping whitespace and comments.

    Comments run from ``#`` or ``//`` to end of line.  Raises
    :class:`~repro.errors.QuerySyntaxError` on unrecognized characters.
    """
    tokens = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError("unexpected character %r"
                                   % text[position], position, text)
        if match.lastgroup != "WS":
            tokens.append(Token(match.lastgroup, match.group(), position))
        position = match.end()
    tokens.append(Token("EOF", "", length))
    return tokens
