"""Query hypergraphs (paper §2.1).

A conjunctive query maps to a hypergraph with one vertex per variable and
one hyperedge per body atom.  The GHD compiler and the AGM-bound machinery
both operate on this representation.
"""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class HyperEdge:
    """One hyperedge: a body atom's variable set plus its identity.

    ``index`` keeps atoms with identical variable sets distinct (the
    triangle query has three edges over pairwise-different variables, but
    e.g. self-join queries repeat variable sets).
    """

    index: int
    relation: str
    variables: Tuple[str, ...]

    @property
    def varset(self):
        """The hyperedge's variables as a frozenset."""
        return frozenset(self.variables)

    def __str__(self):
        return "%s(%s)" % (self.relation, ",".join(self.variables))


class Hypergraph:
    """Hypergraph of a conjunctive rule body."""

    def __init__(self, atoms):
        self.edges = []
        vertices = []
        for index, atom in enumerate(atoms):
            variables = atom.variables
            self.edges.append(HyperEdge(index, atom.name, variables))
            for v in variables:
                if v not in vertices:
                    vertices.append(v)
        self.vertices = tuple(vertices)
        self.atoms = tuple(atoms)

    @property
    def n_vertices(self):
        """Number of distinct variables."""
        return len(self.vertices)

    @property
    def n_edges(self):
        """Number of hyperedges (body atoms)."""
        return len(self.edges)

    def edges_covering(self, vertex):
        """Hyperedges whose variable set contains ``vertex``."""
        return [e for e in self.edges if vertex in e.varset]

    def connected_components(self, edges=None, separator=frozenset()):
        """Partition ``edges`` into components connected through variables
        *outside* ``separator``.

        This is the decomposition step of the GHD search: after a bag
        covers ``separator``, the remaining edges split into independent
        subproblems.  Returns a list of edge lists.
        """
        remaining = list(self.edges if edges is None else edges)
        components = []
        while remaining:
            seed = remaining.pop()
            component = [seed]
            frontier = set(seed.varset) - separator
            changed = True
            while changed:
                changed = False
                still = []
                for edge in remaining:
                    if (edge.varset - separator) & frontier:
                        component.append(edge)
                        frontier |= edge.varset - separator
                        changed = True
                    else:
                        still.append(edge)
                remaining = still
            components.append(component)
        return components

    def is_connected(self):
        """Whether the whole query is one connected component."""
        if not self.edges:
            return True
        return len(self.connected_components()) == 1

    def __str__(self):
        return "Hypergraph(V=%s, E=[%s])" % (
            list(self.vertices), ", ".join(str(e) for e in self.edges))
