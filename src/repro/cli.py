"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``query``
    Load an edge-list file (or a named synthetic dataset) and run a
    query program.
``explain``
    Show the compiled plan (GHD, widths, attribute orders) for a query.
``datasets``
    List the built-in Table 3 analog datasets with their profiles.
``bench``
    Quick triangle-count timing across engine configurations on one
    dataset — a taste of the paper's ablation tables.
``top``
    Live monitor over a telemetry query log (``--telemetry DIR``):
    QPS, latency quantiles, plan-cache tiers, worker lanes.
``fuzz``
    Differential query fuzzer (forwards to ``python -m repro.fuzz``):
    random datalog programs cross-checked over every execution path.
``serve``
    Long-lived query daemon over a newline-delimited-JSON socket
    protocol: warm plan/trie caches, admission control with
    backpressure, a version-stamped result cache, graceful drain
    (``docs/serving.md``).

Examples
--------
::

    python -m repro datasets
    python -m repro query --dataset patents \
        "T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>."
    python -m repro explain --dataset higgs \
        "B(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,p),\
Edge(p,q),Edge(q,r),Edge(p,r); w=<<COUNT(*)>>."
    python -m repro bench --dataset googleplus
"""

import argparse
import sys
import time

from .api import Database
from .graphs.datasets import DATASETS, dataset_profile, load_dataset, \
    read_edgelist
from .graphs.patterns import TRIANGLE_COUNT


def _build_database(args):
    """Construct a :class:`Database` from the shared loader flags
    (no data loaded — ``repro serve`` can start with an empty catalog
    and let clients populate it over the wire)."""
    overrides = dict(parallel_workers=args.workers,
                     parallel_strategy=args.parallel_strategy)
    if getattr(args, "execution_mode", None):
        # Only override when the flag is given, so the
        # REPRO_EXECUTION_MODE environment default still applies.
        overrides["execution_mode"] = args.execution_mode
    if getattr(args, "fused", False):
        overrides["execution_mode"] = "compiled"
        overrides["fused_kernels"] = True
    if getattr(args, "shared_tries", False):
        overrides["shared_tries"] = True
    if getattr(args, "no_incremental_views", False):
        overrides["incremental_views"] = False
    if getattr(args, "adaptive", False):
        overrides["adaptive"] = True
    profile_path = getattr(args, "tuning_profile", None)
    if profile_path:
        from .tune.profile import load_profile
        profile = load_profile(profile_path)
        if profile is None:
            print("warning: tuning profile %r is missing or stale; "
                  "running with default constants" % profile_path,
                  file=sys.stderr)
        else:
            overrides["tuning"] = profile
            overrides["adaptive"] = True
    return Database(ordering=args.ordering,
                    layout_level=args.layout_level,
                    use_ghd=not args.no_ghd,
                    simd=not args.no_simd,
                    **overrides)


def _load_database(args):
    db = _build_database(args)
    if args.dataset:
        edges = load_dataset(args.dataset)
    elif args.edges:
        edges = read_edgelist(args.edges)
    else:
        raise SystemExit("provide --dataset <name> or --edges <file>")
    db.load_graph("Edge", [tuple(e) for e in edges], prune=args.prune,
                  undirected=not args.directed)
    return db


def _add_loader_flags(parser):
    parser.add_argument("--dataset", choices=sorted(DATASETS),
                        help="built-in Table 3 analog dataset")
    parser.add_argument("--edges", help="whitespace edge-list file")
    parser.add_argument("--prune", action="store_true",
                        help="symmetric filtering (src < dst)")
    parser.add_argument("--directed", action="store_true",
                        help="do not mirror edges")
    parser.add_argument("--ordering", default="degree",
                        help="node ordering scheme (default: degree)")
    parser.add_argument("--layout-level", default="set",
                        help="layout optimizer granularity")
    parser.add_argument("--no-ghd", action="store_true",
                        help="force single-node GHD plans")
    parser.add_argument("--no-simd", action="store_true",
                        help="scalar intersection kernels")
    parser.add_argument("--workers", type=int, default=1,
                        help="forked worker processes for the largest "
                             "bag (default: 1 = serial)")
    parser.add_argument("--parallel-strategy", default="steal",
                        choices=["steal", "static"],
                        help="morsel scheduling: work stealing (default) "
                             "or one static chunk per worker")
    parser.add_argument("--execution-mode", default=None,
                        choices=["interpreted", "compiled"],
                        help="bag execution: generic interpreter "
                             "(default) or generated code with plan "
                             "caching (also: REPRO_EXECUTION_MODE)")
    parser.add_argument("--fused", action="store_true",
                        help="fused numpy block kernels (implies "
                             "--execution-mode compiled)")
    parser.add_argument("--shared-tries", action="store_true",
                        help="place tries in shared memory so forked "
                             "workers map them zero-copy")
    parser.add_argument("--no-incremental-views", action="store_true",
                        help="refresh stale materialized views by "
                             "re-running their defining program "
                             "instead of semi-naive delta evaluation")
    parser.add_argument("--adaptive", action="store_true",
                        help="adaptive execution: tuned dispatch "
                             "constants and mispredict-driven "
                             "re-planning")
    parser.add_argument("--tuning-profile", metavar="FILE",
                        help="calibration profile from 'repro tune' "
                             "(implies --adaptive; stale profiles are "
                             "ignored with a warning)")


def cmd_query(args):
    """``repro query``: run a program and print its result."""
    db = _load_database(args)
    if args.trace:
        db.enable_tracing(path=args.trace)
    if args.metrics:
        db.enable_metrics()
    if args.telemetry:
        db.enable_telemetry(directory=args.telemetry,
                            slow_query_seconds=args.slow_query)
    if args.explain_logical:
        print(db.explain_logical(args.query))
        return 0
    if args.explain_analyze:
        report = db.explain_analyze(args.query)
        print(report)
        if args.metrics:
            print(db.metrics.describe(), file=sys.stderr)
        if args.trace:
            print("trace written to %s" % args.trace, file=sys.stderr)
        return 0
    start = time.perf_counter()
    result = db.query(args.query)
    elapsed = time.perf_counter() - start
    if result.relation.is_scalar():
        print(result.scalar)
    else:
        limit = args.limit
        for row_index, row in enumerate(result.tuples()):
            if row_index >= limit:
                print("... (%d more)" % (result.count - limit))
                break
            if result.annotations is not None:
                print(row, result.annotations[row_index])
            else:
                print(row)
    print("-- %d tuple(s), %.3fs, %d simulated ops"
          % (result.count, elapsed, db.counter.total_ops),
          file=sys.stderr)
    if db.last_stats is not None:
        print(db.last_stats.describe(), file=sys.stderr)
    if args.metrics:
        print(db.metrics.describe(), file=sys.stderr)
    if args.trace:
        print("trace written to %s" % args.trace, file=sys.stderr)
    if args.telemetry:
        db.disable_telemetry()  # flush query log, dump, metrics.prom
        print("telemetry written to %s" % args.telemetry,
              file=sys.stderr)
    return 0


def cmd_top(args):
    """``repro top``: live monitor over a telemetry query log."""
    import os
    from .obs.telemetry import read_query_log, render_top
    log_path = args.log
    if os.path.isdir(log_path):
        log_path = os.path.join(log_path, "queries.jsonl")
    while True:
        records = read_query_log(log_path, limit=args.limit)
        frame = render_top(records, window=args.window)
        if args.once:
            print(frame)
            return 0
        # Clear-screen redraw, plain enough for any terminal.
        print("\x1b[2J\x1b[H" + frame, flush=True)
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_explain(args):
    """``repro explain``: print the compiled plan."""
    db = _load_database(args)
    print(db.explain(args.query))
    return 0


def cmd_datasets(args):
    """``repro datasets``: list the built-in dataset profiles."""
    del args
    header = "%-12s %7s %9s %6s  %s" % ("name", "nodes", "edges",
                                        "skew", "description")
    print(header)
    print("-" * len(header))
    for name in sorted(DATASETS):
        profile = dataset_profile(name)
        print("%-12s %7d %9d %6.2f  %s"
              % (name, profile["nodes"], profile["undirected_edges"],
                 profile["density_skew"], profile["description"]))
    return 0


def cmd_bench(args):
    """``repro bench``: quick ablation timings on one dataset."""
    configurations = [
        ("full engine", {}),
        ("-R (uint only)", {"layout_level": "uint_only"}),
        ("-S (no simd)", {"simd": False}),
        ("-GHD (single bag)", {"use_ghd": False}),
        ("4 workers (steal)", {"parallel_workers": 4,
                               "parallel_threshold": 0}),
    ]
    edges = load_dataset(args.dataset)
    print("triangle counting on %s (%d edges, pruned):"
          % (args.dataset, edges.shape[0]))
    for label, overrides in configurations:
        db = Database(**overrides)
        db.load_graph("Edge", [tuple(e) for e in edges], prune=True)
        db.query(TRIANGLE_COUNT)       # warm tries
        db.counter.reset()
        start = time.perf_counter()
        count = db.query(TRIANGLE_COUNT).scalar
        elapsed = time.perf_counter() - start
        print("  %-18s %8.3fs  %10d ops  (%d triangles)"
              % (label, elapsed, db.counter.total_ops, count))
    return 0


def cmd_tune(args):
    """``repro tune``: calibrate dispatch constants on this machine."""
    dataset_sets = None
    if args.dataset or args.edges:
        import numpy as np
        if args.dataset:
            edges = load_dataset(args.dataset)
        else:
            edges = read_edgelist(args.edges)
        edges = np.asarray([tuple(e) for e in edges], dtype=np.int64)
        # Per-source adjacency sizes give the dataset's real skew; the
        # dataset fitter pairs small sets against large ones.
        sources, counts = np.unique(edges[:, 0], return_counts=True)
        order = np.argsort(counts)
        picks = list(sources[order[:2]]) + list(sources[order[-4:]])
        dataset_sets = [
            np.unique(edges[edges[:, 0] == s, 1]).astype(np.uint32)
            for s in picks]
    from .tune.calibrate import calibrate
    profile = calibrate(seed=args.seed, quick=args.quick,
                        dataset_sets=dataset_sets)
    print(profile.describe())
    if args.out:
        profile.save(args.out)
        print("profile written to %s" % args.out, file=sys.stderr)
    return 0


def cmd_serve(args):
    """``repro serve``: run the long-lived query daemon."""
    from .serve import QueryService
    if args.dataset or args.edges:
        db = _load_database(args)
    else:
        db = _build_database(args)
    if args.telemetry:
        db.enable_telemetry(directory=args.telemetry,
                            slow_query_seconds=args.slow_query)
    elif db.telemetry is None:
        # Memory-only hub: the status op and OpenMetrics still work,
        # nothing hits disk.
        db.enable_telemetry(directory=None,
                            slow_query_seconds=args.slow_query)
    metrics_server = None
    if args.metrics_port is not None:
        metrics_server = db.serve_metrics(host=args.host,
                                          port=args.metrics_port)
        print("openmetrics on %s:%d"
              % metrics_server.server_address[:2], file=sys.stderr)
    service = QueryService(
        db, host=args.host, port=args.port,
        max_inflight=args.max_inflight,
        default_timeout=args.timeout,
        drain_timeout=args.drain_timeout,
        cache_capacity=args.cache_capacity,
        debug=args.debug, announce=True)
    try:
        service.serve_forever()
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
        db.close()
    return 0


def cmd_fuzz(args):
    """``repro fuzz``: delegate to the differential fuzzer CLI."""
    from .fuzz.__main__ import main as fuzz_main
    return fuzz_main(args.fuzz_args)


def build_parser():
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EmptyHeaded reproduction: a relational engine for "
                    "graph processing")
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="run a query program")
    _add_loader_flags(query)
    query.add_argument("query", help="datalog-like program text")
    query.add_argument("--limit", type=int, default=20,
                       help="max tuples to print")
    query.add_argument("--trace", metavar="FILE",
                       help="write a Chrome trace-event JSON of the "
                            "query lifecycle (chrome://tracing)")
    query.add_argument("--metrics", action="store_true",
                       help="print the metrics registry to stderr")
    query.add_argument("--telemetry", metavar="DIR",
                       help="continuous telemetry directory: rotating "
                            "JSONL query log, flight-recorder dumps, "
                            "and an OpenMetrics snapshot (see 'repro "
                            "top')")
    query.add_argument("--slow-query", type=float, metavar="SECONDS",
                       help="slow-query promotion budget: a query "
                            "slower than this re-runs traced and the "
                            "trace is archived (needs --telemetry)")
    query.add_argument("--explain-analyze", action="store_true",
                       help="print the GHD plan annotated with actual "
                            "timings and cost-model error instead of "
                            "the result tuples")
    query.add_argument("--explain-logical", action="store_true",
                       help="print the optimizer's pass-by-pass logical "
                            "plan (rewrites, GHD choice, pushdown, "
                            "attribute order) without executing")
    query.set_defaults(func=cmd_query)

    explain = sub.add_parser("explain", help="show the compiled plan")
    _add_loader_flags(explain)
    explain.add_argument("query")
    explain.set_defaults(func=cmd_explain)

    datasets = sub.add_parser("datasets",
                              help="list built-in synthetic datasets")
    datasets.set_defaults(func=cmd_datasets)

    top = sub.add_parser("top",
                         help="live monitor over a telemetry query log "
                              "(qps, latency quantiles, cache tiers, "
                              "lanes)")
    top.add_argument("log", help="telemetry directory or queries.jsonl "
                                 "path")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh period in seconds (default: 2)")
    top.add_argument("--window", type=float, default=60.0,
                     help="trailing stats window in seconds "
                          "(default: 60)")
    top.add_argument("--limit", type=int, default=10000,
                     help="max log records to load per refresh")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (no clear-screen)")
    top.set_defaults(func=cmd_top)

    bench = sub.add_parser("bench",
                           help="quick ablation timing on one dataset")
    bench.add_argument("--dataset", choices=sorted(DATASETS),
                       default="patents")
    bench.set_defaults(func=cmd_bench)

    tune = sub.add_parser("tune",
                          help="calibrate dispatch constants (machine "
                               "and optionally dataset) into a tuning "
                               "profile")
    tune.add_argument("--out", metavar="FILE",
                      help="write the profile JSON here (use with "
                           "--tuning-profile or REPRO_TUNING_PROFILE)")
    tune.add_argument("--seed", type=int, default=0,
                      help="seed for the synthetic microbenchmarks")
    tune.add_argument("--quick", action="store_true",
                      help="fewer repetitions per timed point")
    tune.add_argument("--dataset", choices=sorted(DATASETS),
                      help="also fit the galloping crossover on this "
                           "built-in dataset's real skew")
    tune.add_argument("--edges", help="whitespace edge-list file for "
                                      "the dataset fit")
    tune.set_defaults(func=cmd_tune)

    serve = sub.add_parser(
        "serve",
        help="long-lived query daemon: warm caches, admission control, "
             "result caching, graceful drain (see docs/serving.md)")
    _add_loader_flags(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port; 0 picks a free one and prints it "
                            "(default: 0)")
    serve.add_argument("--max-inflight", type=int, default=32,
                       help="admission slots before requests are "
                            "rejected with retry_after (default: 32)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-query timeout (requests may "
                            "carry their own; default: none)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="graceful-shutdown budget for in-flight "
                            "requests (default: 5)")
    serve.add_argument("--cache-capacity", type=int, default=256,
                       help="result-cache entries (default: 256)")
    serve.add_argument("--telemetry", metavar="DIR",
                       help="telemetry directory (query log, flight "
                            "recorder, OpenMetrics); omitted = "
                            "memory-only hub")
    serve.add_argument("--slow-query", type=float, metavar="SECONDS",
                       help="slow-query promotion budget")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="also serve GET /metrics (OpenMetrics) on "
                            "this port")
    serve.add_argument("--debug", action="store_true",
                       help="honor per-request fault-injection fields "
                            "(debug_sleep); tests only")
    serve.set_defaults(func=cmd_serve)

    fuzz = sub.add_parser("fuzz", add_help=False,
                          help="differential query fuzzer "
                               "(python -m repro.fuzz)")
    fuzz.add_argument("fuzz_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to repro.fuzz")
    fuzz.set_defaults(func=cmd_fuzz)
    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        # argparse.REMAINDER refuses leading options; hand the tail to
        # the fuzzer's own parser untouched.
        from .fuzz.__main__ import main as fuzz_main
        return fuzz_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
