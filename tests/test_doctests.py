"""Run the doctest examples embedded in module/class docstrings."""

import doctest

import pytest

import repro
import repro.api
import repro.sets.uint
import repro.storage.builder
import repro.storage.dictionary

MODULES = [repro, repro.api, repro.sets.uint, repro.storage.builder,
           repro.storage.dictionary]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, "%d doctest failure(s) in %s" % (
        result.failed, module.__name__)


def test_doctests_actually_ran():
    total = sum(doctest.testmod(m).attempted for m in MODULES)
    assert total >= 5
