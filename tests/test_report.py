"""Tests for the benchmark report renderer (benchmarks/report.py)."""

import importlib.util
import json
import pathlib
import sys

import pytest

REPORT_PATH = (pathlib.Path(__file__).resolve().parent.parent
               / "benchmarks" / "report.py")
spec = importlib.util.spec_from_file_location("bench_report", REPORT_PATH)
report = importlib.util.module_from_spec(spec)
spec.loader.exec_module(report)


@pytest.fixture
def sample_data():
    def bench(name, group, mean, **extra):
        return {"name": name, "group": group,
                "stats": {"mean": mean}, "extra_info": extra}

    return {"benchmarks": [
        bench("test_emptyheaded[gp]", "table05:gp", 0.010,
              model_ops=100),
        bench("test_scalar[gp]", "table05:gp", 0.002, model_ops=900),
        bench("test_thing[x]", "fig10:ratio=8", 0.001),
    ]}


class TestRender:
    def test_groups_and_tables(self, sample_data):
        text = report.render(sample_data)
        assert "### table05" in text
        assert "### fig10" in text
        assert "**table05:gp**" in text
        assert "| engine/variant | wall (ms) | rel | model_ops |" in text

    def test_rows_sorted_by_wall_time(self, sample_data):
        text = report.render(sample_data)
        lines = [l for l in text.splitlines() if l.startswith("| ")]
        scalar_row = next(i for i, l in enumerate(lines)
                          if "scalar[gp]" in l)
        eh_row = next(i for i, l in enumerate(lines)
                      if "emptyheaded[gp]" in l)
        assert scalar_row < eh_row

    def test_relative_column(self, sample_data):
        text = report.render(sample_data)
        assert "1.00x" in text
        assert "5.00x" in text  # 10ms vs 2ms

    def test_expectations_prefixed(self, sample_data):
        text = report.render(sample_data)
        assert "Paper Table 5" in text
        assert "Paper Figure 10" in text

    def test_phase_breakdown_section(self):
        data = {"benchmarks": [
            {"name": "test_repeated[compiled]", "group": "codegen:tri",
             "stats": {"mean": 0.01},
             "extra_info": {"phase_compile_ms": 4.0,
                            "phase_execute_ms": 6.0}},
            {"name": "test_other", "group": "fig10:x",
             "stats": {"mean": 0.01}, "extra_info": {}},
        ]}
        text = report.render(data)
        assert "### phase breakdown (compile vs execute)" in text
        assert "| codegen:tri | repeated[compiled] | 4.000 | 6.000 " \
               "| 40.0% |" in text

    def test_phase_breakdown_absent_without_stamps(self, sample_data):
        assert "phase breakdown" not in report.render(sample_data)

    def test_every_experiment_has_an_expectation(self):
        """Each bench module's group prefix must have commentary."""
        bench_dir = REPORT_PATH.parent
        prefixes = set()
        for module in bench_dir.glob("bench_*.py"):
            for line in module.read_text().splitlines():
                if "benchmark.group = " in line and '"' in line:
                    literal = line.split('"')[1]
                    prefixes.add(literal.split(":")[0])
        missing = {p for p in prefixes
                   if p and p not in report.EXPECTATIONS}
        assert not missing, missing

    def test_main_requires_argument(self, capsys):
        with pytest.raises(SystemExit):
            report.main([])

    def test_main_renders_file(self, tmp_path, sample_data, capsys):
        path = tmp_path / "results.json"
        path.write_text(json.dumps(sample_data))
        assert report.main([str(path)]) == 0
        assert "table05" in capsys.readouterr().out


class TestDiff:
    """The --diff mode compares machine-relative speedup ratios."""

    @staticmethod
    def dump(tmp_path, filename, rows):
        data = {"benchmarks": [
            {"name": name, "group": group, "stats": {"mean": 0.01},
             "extra_info": {"speedup": speedup}}
            for name, group, speedup in rows]}
        path = tmp_path / filename
        path.write_text(json.dumps(data))
        return str(path)

    def test_no_regression_passes(self, tmp_path, capsys):
        base = self.dump(tmp_path, "base.json",
                         [("fused", "codegen:triangle", 20.0)])
        current = self.dump(tmp_path, "cur.json",
                            [("fused", "codegen:triangle", 18.0)])
        assert report.main(["--diff", base, current]) == 0
        assert "perf diff" in capsys.readouterr().out

    def test_regression_beyond_threshold_fails(self, tmp_path, capsys):
        base = self.dump(tmp_path, "base.json",
                         [("fused", "codegen:triangle", 20.0)])
        current = self.dump(tmp_path, "cur.json",
                            [("fused", "codegen:triangle", 10.0)])
        assert report.main(["--diff", base, current]) == 1
        out = capsys.readouterr()
        assert "REGRESSION" in out.out
        assert "FAIL" in out.err

    def test_threshold_is_configurable(self, tmp_path):
        base = self.dump(tmp_path, "base.json",
                         [("fused", "codegen:triangle", 20.0)])
        current = self.dump(tmp_path, "cur.json",
                            [("fused", "codegen:triangle", 10.0)])
        assert report.main(["--diff", base, current,
                            "--threshold", "2.5"]) == 0

    def test_new_row_without_baseline_does_not_fail(self, tmp_path,
                                                    capsys):
        base = self.dump(tmp_path, "base.json",
                         [("serial", "parallel:scaling", 1.0)])
        current = self.dump(tmp_path, "cur.json",
                            [("serial", "parallel:scaling", 1.0),
                             ("fused-4w", "parallel:scaling", 15.0)])
        assert report.main(["--diff", base, current]) == 0
        assert "only in current" in capsys.readouterr().out


class TestTrajectory:
    """BENCH_<n>.json perf-history sequence under baselines/."""

    dump = staticmethod(TestDiff.dump)

    def test_append_numbers_sequentially(self, tmp_path):
        results = self.dump(tmp_path, "cur.json",
                            [("fused", "codegen:triangle", 2.0)])
        trajectory = tmp_path / "baselines"
        first = report.append_trajectory(str(trajectory), results)
        second = report.append_trajectory(str(trajectory), results)
        assert first.endswith("BENCH_1.json")
        assert second.endswith("BENCH_2.json")
        assert report.trajectory_entries(str(trajectory)) == [
            (1, first), (2, second)]

    def test_latest_baseline_picks_highest_index(self, tmp_path):
        results = self.dump(tmp_path, "cur.json",
                            [("fused", "codegen:triangle", 2.0)])
        trajectory = tmp_path / "baselines"
        report.append_trajectory(str(trajectory), results)
        latest = report.append_trajectory(str(trajectory), results)
        assert report.latest_baseline(str(trajectory)) == latest

    def test_latest_baseline_falls_back_to_legacy_file(self, tmp_path):
        legacy_dir = tmp_path / "baselines"
        legacy_dir.mkdir()
        legacy = legacy_dir / "bench_results.json"
        legacy.write_text("{}")
        assert report.latest_baseline(str(legacy_dir)) == str(legacy)

    def test_latest_baseline_none_when_empty(self, tmp_path):
        assert report.latest_baseline(str(tmp_path / "missing")) is None

    def test_main_diff_latest(self, tmp_path, capsys):
        base = self.dump(tmp_path, "base.json",
                         [("fused", "codegen:triangle", 20.0)])
        trajectory = tmp_path / "baselines"
        report.append_trajectory(str(trajectory), base)
        current = self.dump(tmp_path, "cur.json",
                            [("fused", "codegen:triangle", 18.0)])
        assert report.main(["--diff-latest", str(trajectory),
                            current]) == 0
        out = capsys.readouterr().out
        assert "BENCH_1.json" in out
        assert "perf diff" in out

    def test_main_diff_latest_regression_fails(self, tmp_path):
        base = self.dump(tmp_path, "base.json",
                         [("fused", "codegen:triangle", 20.0)])
        trajectory = tmp_path / "baselines"
        report.append_trajectory(str(trajectory), base)
        current = self.dump(tmp_path, "cur.json",
                            [("fused", "codegen:triangle", 10.0)])
        assert report.main(["--diff-latest", str(trajectory),
                            current]) == 1

    def test_main_diff_latest_empty_dir_passes(self, tmp_path, capsys):
        current = self.dump(tmp_path, "cur.json",
                            [("fused", "codegen:triangle", 10.0)])
        assert report.main(["--diff-latest",
                            str(tmp_path / "missing"), current]) == 0
        assert "nothing to diff" in capsys.readouterr().out

    def test_main_append_trajectory(self, tmp_path, capsys):
        current = self.dump(tmp_path, "cur.json",
                            [("fused", "codegen:triangle", 10.0)])
        trajectory = tmp_path / "baselines"
        assert report.main([current, "--append-trajectory",
                            str(trajectory)]) == 0
        assert "BENCH_1.json" in capsys.readouterr().out
        assert (trajectory / "BENCH_1.json").exists()
