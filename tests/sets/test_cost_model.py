"""Tests of the simulated SIMD cost model, including the min property.

The min property (paper §2.1) — intersection cost bounded by the smaller
operand — is what makes the generic join worst-case optimal.  These
tests verify it holds (within logs/constants) for the kernels the
dispatcher relies on, and that it *fails* for shuffling, exactly the
trade-off the paper's Algorithm 2 navigates.
"""

import numpy as np

from repro.sets import (BitSet, OpCounter, SIMD_REGISTER_BITS,
                        SIMD_UINT32_LANES, UintSet, intersect,
                        intersect_uint_arrays)


def _cost(algorithm, small_size, large_size, seed=0):
    rng = np.random.default_rng(seed)
    domain = 10 ** 6
    small = np.sort(rng.choice(domain, small_size,
                               replace=False)).astype(np.uint32)
    large = np.sort(rng.choice(domain, large_size,
                               replace=False)).astype(np.uint32)
    counter = OpCounter()
    intersect_uint_arrays(small, large, counter=counter,
                          algorithm=algorithm)
    return counter.total_ops


class TestMinProperty:
    def test_galloping_cost_independent_of_large_set_scale(self):
        """Galloping cost grows ~log in the larger set: 64x more data in
        the large set must cost far less than 64x more ops."""
        base = _cost("simd_galloping", 64, 4096)
        scaled = _cost("simd_galloping", 64, 4096 * 64)
        assert scaled < base * 3

    def test_shuffling_cost_scales_with_large_set(self):
        base = _cost("shuffling", 64, 4096)
        scaled = _cost("shuffling", 64, 4096 * 64)
        assert scaled > base * 30  # linear in |large|: no min property

    def test_adaptive_dispatch_preserves_min_property(self):
        """The hybrid dispatcher must route skewed inputs to galloping,
        keeping cost near the small set's size."""
        rng = np.random.default_rng(7)
        small = np.sort(rng.choice(10 ** 6, 64,
                                   replace=False)).astype(np.uint32)
        large = np.sort(rng.choice(10 ** 6, 200000,
                                   replace=False)).astype(np.uint32)
        counter = OpCounter()
        intersect_uint_arrays(small, large, counter=counter)
        # Within a generous constant*log of the small cardinality.
        assert counter.total_ops < 64 * 64

    def test_uint_bitset_cost_proportional_to_uint_side(self):
        rng = np.random.default_rng(8)
        small = UintSet(np.sort(rng.choice(10 ** 6, 32, replace=False)))
        dense = BitSet(range(0, 10 ** 6, 2))
        counter = OpCounter()
        intersect(small, dense, counter)
        assert counter.total_ops < 32 * 8


class TestCounterMechanics:
    def test_charge_accumulates(self):
        counter = OpCounter()
        counter.charge("x", simd=2, scalar=3, elements=10, nbytes=40)
        counter.charge("x", simd=1)
        counter.charge("y", scalar=5)
        assert counter.simd_ops == 3
        assert counter.scalar_ops == 8
        assert counter.total_ops == 11
        assert counter.intersections == 3
        assert counter.by_algorithm["x"]["calls"] == 2

    def test_reset(self):
        counter = OpCounter()
        counter.charge("x", simd=1)
        counter.reset()
        assert counter.total_ops == 0
        assert counter.by_algorithm == {}

    def test_snapshot_is_plain_data(self):
        counter = OpCounter()
        counter.charge("x", simd=1, scalar=2)
        snap = counter.snapshot()
        assert snap["total_ops"] == 3
        snap["by_algorithm"]["x"]["simd"] = 999
        assert counter.by_algorithm["x"]["simd"] == 1  # copy, not alias

    def test_lane_constants_match_paper_hardware(self):
        assert SIMD_UINT32_LANES == 4      # SSE 128-bit (footnote 7)
        assert SIMD_REGISTER_BITS == 256   # AVX (footnote 2)


class TestBitsetEconomics:
    def test_dense_bitset_and_beats_uint_shuffling(self):
        """One simulated AVX AND covers 256 values: on dense data the
        bitset pair must charge far fewer ops than the uint pair
        (the Figure 5 crossover's cause)."""
        dense = list(range(8192))
        bit_counter = OpCounter()
        intersect(BitSet(dense), BitSet(dense), bit_counter)
        uint_counter = OpCounter()
        intersect(UintSet(dense), UintSet(dense), uint_counter,
                  algorithm="shuffling")
        assert bit_counter.total_ops * 10 < uint_counter.total_ops

    def test_sparse_bitset_pays_offset_overhead(self):
        """On very sparse data each value occupies its own block, so the
        bitset loses to uint — the other side of Figure 5."""
        sparse = list(range(0, 8192 * 300, 300))
        bit_counter = OpCounter()
        intersect(BitSet(sparse), BitSet(sparse), bit_counter)
        uint_counter = OpCounter()
        intersect(UintSet(sparse), UintSet(sparse), uint_counter,
                  algorithm="shuffling")
        assert bit_counter.total_ops > uint_counter.total_ops
