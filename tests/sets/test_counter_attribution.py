"""Counter attribution: each kernel must charge under its own name.

The benchmark harness attributes work per algorithm through
``OpCounter.by_algorithm``; misattribution would silently corrupt the
figures, so pin the mapping here.
"""

import numpy as np
import pytest

from repro.sets import (BitSet, BlockedSet, OpCounter, PShortSet, UintSet,
                        VariantSet, intersect)
from repro.sets.algebra import difference, union


def sets(a=(1, 2, 3, 300), b=(2, 3, 4, 300)):
    return list(a), list(b)


CASES = [
    (UintSet, UintSet, {"algorithm": "shuffling"}, "shuffling"),
    (UintSet, UintSet, {"algorithm": "v1"}, "v1"),
    (UintSet, UintSet, {"algorithm": "galloping"}, "galloping"),
    (UintSet, UintSet, {"algorithm": "simd_galloping"}, "simd_galloping"),
    (UintSet, UintSet, {"algorithm": "bmiss"}, "bmiss"),
    (UintSet, UintSet, {"simd": False}, "scalar_merge"),
    (BitSet, BitSet, {}, "bitset_and"),
    (UintSet, BitSet, {}, "uint_bitset"),
    (PShortSet, PShortSet, {}, "pshort"),
    (BlockedSet, BlockedSet, {}, "block_offsets"),
    (VariantSet, UintSet, {}, "variant_decode"),
]


@pytest.mark.parametrize("layout_a,layout_b,kwargs,expected", CASES)
def test_attribution(layout_a, layout_b, kwargs, expected):
    a, b = sets()
    counter = OpCounter()
    intersect(layout_a(a), layout_b(b), counter, **kwargs)
    assert expected in counter.by_algorithm, counter.by_algorithm


def test_scalar_galloping_attribution():
    counter = OpCounter()
    small = UintSet([5])
    large = UintSet(range(0, 4000, 2))
    intersect(small, large, counter, simd=False)  # ratio >> 32
    assert "scalar_galloping" in counter.by_algorithm


def test_union_difference_attribution():
    a, b = sets()
    counter = OpCounter()
    union(UintSet(a), UintSet(b), counter)
    difference(UintSet(a), UintSet(b), counter)
    union(BitSet(a), BitSet(b), counter)
    difference(BitSet(a), BitSet(b), counter)
    for key in ("union", "difference", "bitset_or", "bitset_andnot"):
        assert key in counter.by_algorithm, key


def test_adaptive_dispatch_attribution_matches_choice():
    counter = OpCounter()
    small = UintSet([1, 2])
    large = UintSet(np.arange(0, 10000, 3))
    intersect(small, large, counter)
    assert list(counter.by_algorithm) == ["simd_galloping"]
    counter2 = OpCounter()
    intersect(UintSet([1, 2, 3]), UintSet([2, 3, 4]), counter2)
    assert list(counter2.by_algorithm) == ["shuffling"]
