"""Unit tests for the block-composite layout (paper §4.3, Block Level)."""

from repro.sets import BlockedSet
from repro.sets.blocked import BLOCK_SPAN


class TestBlockedSet:
    def test_round_trip_mixed_density(self):
        sparse = list(range(0, 2000, 97))
        dense = list(range(4096, 4096 + 256))
        values = sorted(set(sparse + dense))
        s = BlockedSet(values)
        assert list(s.to_array()) == values

    def test_dense_block_becomes_bitset(self):
        dense = list(range(0, BLOCK_SPAN))  # fills block 0 entirely
        s = BlockedSet(dense)
        assert s.block_kinds() == ["bitset"]

    def test_sparse_block_stays_uint(self):
        sparse = [0, 100, 200]  # 3 of 256 slots
        s = BlockedSet(sparse)
        assert s.block_kinds() == ["uint"]

    def test_mixed_blocks(self):
        values = list(range(0, 256)) + [512, 600]
        s = BlockedSet(values)
        assert s.block_kinds() == ["bitset", "uint"]
        assert s.block_ids.tolist() == [0, 2]

    def test_threshold_configurable(self):
        values = list(range(0, 256, 4))  # density 1/4
        default = BlockedSet(values)           # threshold 1/8 -> dense
        strict = BlockedSet(values, dense_threshold=0.5)
        assert default.block_kinds() == ["bitset"]
        assert strict.block_kinds() == ["uint"]

    def test_contains(self):
        values = [1, 300, 700]
        s = BlockedSet(values)
        assert all(s.contains(v) for v in values)
        assert not s.contains(2)
        assert not s.contains(1000)

    def test_empty(self):
        s = BlockedSet([])
        assert s.cardinality == 0 and list(s.to_array()) == []

    def test_min_max(self):
        s = BlockedSet([42, 9000])
        assert s.min_value == 42 and s.max_value == 9000
