"""Unit tests for the layout optimizers (paper §4.3–4.4)."""

import numpy as np
import pytest

from repro.sets import (LEVELS, OpCounter, SetOptimizer, UintSet, BitSet,
                        build_set, choose_set_layout, intersect,
                        layout_histogram, oracle_intersection_cost)
from repro.sets.optimizer import OracleCounter


class TestAlgorithm3:
    """The set-level decision: bitset iff range/cardinality < 256."""

    def test_dense_set_becomes_bitset(self):
        assert choose_set_layout(np.arange(1000)) == "bitset"

    def test_sparse_set_stays_uint(self):
        assert choose_set_layout(np.arange(0, 1000 * 300, 300)) == "uint"

    def test_boundary(self):
        # inverse density exactly 256 -> uint; just below -> bitset
        base = np.array([0, 255])     # range 256, card 2 -> 128 < 256
        assert choose_set_layout(base) == "bitset"
        wide = np.array([0, 511])     # range 512, card 2 -> 256, not <
        assert choose_set_layout(wide) == "uint"

    def test_empty_set_is_uint(self):
        assert choose_set_layout(np.empty(0)) == "uint"


class TestBuildSet:
    def test_levels(self):
        dense = np.arange(300)
        assert build_set(dense, "relation").kind == "uint"
        assert build_set(dense, "uint_only").kind == "uint"
        assert build_set(dense, "bitset_only").kind == "bitset"
        assert build_set(dense, "set").kind == "bitset"
        assert build_set(dense, "block").kind == "block"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            build_set(np.arange(3), "nope")

    def test_levels_constant_lists_all(self):
        assert set(LEVELS) == {"relation", "set", "block", "uint_only",
                               "bitset_only"}


class TestSetOptimizer:
    def test_tracks_histogram_and_overhead(self):
        optimizer = SetOptimizer("set")
        optimizer.build(np.arange(300))          # dense -> bitset
        optimizer.build(np.arange(0, 10 ** 6, 5000))  # sparse -> uint
        assert optimizer.histogram == {"bitset": 1, "uint": 1}
        assert optimizer.decision_seconds > 0

    def test_invalid_level_rejected_eagerly(self):
        with pytest.raises(ValueError):
            SetOptimizer("bogus")

    def test_layout_histogram_helper(self):
        sets = [UintSet([1]), UintSet([2]), BitSet([3])]
        assert layout_histogram(sets) == {"uint": 2, "bitset": 1}


class TestOracle:
    def test_oracle_never_worse_than_any_configuration(self):
        rng = np.random.default_rng(0)
        a = np.sort(rng.choice(4000, 300, replace=False))
        b = np.sort(rng.choice(4000, 900, replace=False))
        oracle_cost, combo = oracle_intersection_cost(a, b)
        # Compare against the engine's own set-level decision.
        counter = OpCounter()
        intersect(build_set(a, "set"), build_set(b, "set"), counter)
        assert oracle_cost <= counter.total_ops
        assert combo[0] in ("uint", "bitset")

    def test_oracle_picks_bitsets_on_dense_data(self):
        dense = np.arange(2048)
        _, combo = oracle_intersection_cost(dense, dense)
        assert combo[:2] == ("bitset", "bitset")

    def test_oracle_counter_accumulates(self):
        audit = OracleCounter()
        audit.observe(UintSet([1, 2, 3]), UintSet([2, 3, 4]))
        audit.observe(UintSet([1]), UintSet([1]))
        assert audit.intersections == 2
        assert audit.oracle_ops > 0
