"""Property-based tests over set layouts and intersections (hypothesis).

DESIGN.md invariants: every layout round-trips arbitrary uint32 sets;
every intersection kernel on every layout pair computes exactly the
set-theoretic intersection; rank/contains agree with sorted position.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sets import (BitPackedSet, BitSet, BlockedSet, PShortSet,
                        UINT_ALGORITHMS, UintSet, VariantSet, intersect,
                        intersect_uint_arrays)

LAYOUTS = [UintSet, BitSet, PShortSet, VariantSet, BitPackedSet, BlockedSet]

#: Mixed-scale value domain: small dense values, mid-range, and values
#: near the uint32 ceiling, to exercise block/prefix boundaries.
values_strategy = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=600),
        st.integers(min_value=0, max_value=2 ** 20),
        st.integers(min_value=2 ** 32 - 4000, max_value=2 ** 32 - 1),
    ),
    max_size=120)


@given(values=values_strategy)
@settings(max_examples=60, deadline=None)
def test_every_layout_round_trips(values):
    expected = sorted(set(values))
    for layout in LAYOUTS:
        s = layout(values)
        assert list(s.to_array()) == expected, layout.__name__
        assert s.cardinality == len(expected)


@given(a=values_strategy, b=values_strategy,
       pair=st.sampled_from([(la, lb) for la in LAYOUTS for lb in LAYOUTS]))
@settings(max_examples=80, deadline=None)
def test_every_layout_pair_intersects_correctly(a, b, pair):
    layout_a, layout_b = pair
    expected = sorted(set(a) & set(b))
    out = intersect(layout_a(a), layout_b(b))
    assert list(out.to_array()) == expected


@given(a=values_strategy, b=values_strategy,
       algorithm=st.sampled_from(UINT_ALGORITHMS + ("scalar",)))
@settings(max_examples=80, deadline=None)
def test_every_uint_algorithm_is_exact(a, b, algorithm):
    expected = sorted(set(a) & set(b))
    arr_a = np.unique(np.asarray(a, dtype=np.uint32)) \
        if a else np.empty(0, dtype=np.uint32)
    arr_b = np.unique(np.asarray(b, dtype=np.uint32)) \
        if b else np.empty(0, dtype=np.uint32)
    if algorithm == "scalar":
        out = intersect_uint_arrays(arr_a, arr_b, simd=False)
    else:
        out = intersect_uint_arrays(arr_a, arr_b, algorithm=algorithm)
    assert out.tolist() == expected


@given(values=values_strategy)
@settings(max_examples=40, deadline=None)
def test_contains_matches_membership(values):
    universe = sorted(set(values))
    probes = universe[:10] + [v + 1 for v in universe[:10]
                              if v + 1 < 2 ** 32]
    for layout in LAYOUTS:
        s = layout(values)
        member = set(universe)
        for probe in probes:
            assert s.contains(probe) == (probe in member), layout.__name__


@given(values=st.lists(st.integers(min_value=0, max_value=5000),
                       min_size=1, max_size=80))
@settings(max_examples=40, deadline=None)
def test_rank_is_sorted_position(values):
    expected = sorted(set(values))
    for layout in (UintSet, BitSet):
        s = layout(values)
        for index, value in enumerate(expected):
            assert s.rank(value) == index, layout.__name__


@given(values=values_strategy)
@settings(max_examples=40, deadline=None)
def test_self_intersection_is_identity(values):
    for layout in LAYOUTS:
        s = layout(values)
        out = intersect(s, s)
        assert list(out.to_array()) == sorted(set(values))


@given(a=values_strategy, b=values_strategy)
@settings(max_examples=40, deadline=None)
def test_intersection_bounded_by_min_cardinality(a, b):
    out = intersect(UintSet(a), BitSet(b))
    assert out.cardinality <= min(len(set(a)), len(set(b)))
