"""Unit tests for the pshort, variant, and bitpacked layouts (App. C.1)."""

import numpy as np
import pytest

from repro.sets import BitPackedSet, PShortSet, UintSet, VariantSet
from repro.sets.bitpacked import pack_bits, unpack_bits
from repro.sets.variant import decode_varint_deltas, encode_varint_deltas


class TestPShort:
    def test_round_trip(self):
        values = [65536, 65636, 65736]  # the paper's C.1.1 example
        s = PShortSet(values)
        assert list(s.to_array()) == values
        assert s.prefixes.tolist() == [1]
        assert s.groups[0].tolist() == [0, 100, 200]

    def test_multiple_prefixes(self):
        values = [1, 2, 70000, 70001, 140000]
        s = PShortSet(values)
        assert list(s.to_array()) == values
        assert len(s.prefixes) == 3

    def test_contains(self):
        s = PShortSet([1, 70000])
        assert s.contains(1) and s.contains(70000)
        assert not s.contains(2)
        assert not s.contains(70001)
        assert not s.contains(140000)

    def test_empty(self):
        s = PShortSet([])
        assert s.cardinality == 0 and list(s.to_array()) == []

    def test_min_max(self):
        s = PShortSet([5, 131072])
        assert s.min_value == 5 and s.max_value == 131072

    def test_compresses_clustered_values(self):
        clustered = list(range(100000, 100512))
        assert PShortSet(clustered).nbytes < UintSet(clustered).nbytes


class TestVariantCodec:
    def test_codec_round_trip(self):
        arr = np.array([0, 2, 4, 300, 2 ** 31], dtype=np.uint32)
        buf = encode_varint_deltas(arr)
        assert decode_varint_deltas(buf, arr.size).tolist() == arr.tolist()

    def test_small_deltas_one_byte_each(self):
        # paper C.1.2 example: S = {0, 2, 4} encodes in 3 bytes
        arr = np.array([0, 2, 4], dtype=np.uint32)
        assert encode_varint_deltas(arr).size == 3

    def test_layout_round_trip(self):
        values = [7, 9, 1000, 10 ** 6, 2 ** 32 - 1]
        s = VariantSet(values)
        assert list(s.to_array()) == values
        assert s.min_value == 7 and s.max_value == 2 ** 32 - 1

    def test_empty(self):
        assert VariantSet([]).cardinality == 0

    def test_compression_on_dense_runs(self):
        dense = list(range(5000, 6000))
        assert VariantSet(dense).nbytes < UintSet(dense).nbytes / 3


class TestBitpackedCodec:
    @pytest.mark.parametrize("width", [1, 3, 7, 13, 32, 33, 64])
    def test_pack_unpack(self, width):
        rng = np.random.default_rng(width)
        limit = 2 ** min(width, 63)
        values = rng.integers(0, limit, size=100).astype(np.uint64)
        words = pack_bits(values, width)
        assert unpack_bits(words, width, 100).tolist() == values.tolist()

    def test_layout_round_trip(self):
        values = [0, 2, 8, 4096, 2 ** 30]
        s = BitPackedSet(values)
        assert list(s.to_array()) == values

    def test_width_is_max_delta_entropy(self):
        s = BitPackedSet([0, 2, 8])  # max delta 6 -> 3 bits (paper C.1.3)
        assert s.bit_width == 3

    def test_empty(self):
        s = BitPackedSet([])
        assert s.cardinality == 0 and list(s.to_array()) == []

    def test_compression_on_dense_runs(self):
        dense = list(range(10000, 12000))
        assert BitPackedSet(dense).nbytes < UintSet(dense).nbytes / 8
