"""Unit tests for the bitset layout (paper Figure 4)."""

import numpy as np
import pytest

from repro.sets import BLOCK_BITS, BitSet, UintSet
from repro.sets.bitset import WORDS_PER_BLOCK, popcount_u64


class TestPopcount:
    def test_known_words(self):
        words = np.array([0, 1, 3, 0xFF, 2 ** 64 - 1], dtype=np.uint64)
        assert popcount_u64(words).tolist() == [0, 1, 2, 8, 64]

    def test_matrix_shape(self):
        words = np.zeros((3, 4), dtype=np.uint64)
        words[1, 2] = 7
        counts = popcount_u64(words)
        assert counts.shape == (3, 4)
        assert counts.sum() == 3


class TestConstruction:
    def test_round_trip_dense(self):
        values = list(range(0, 600, 1))
        s = BitSet(values)
        assert list(s.to_array()) == values
        assert s.cardinality == 600

    def test_round_trip_sparse_across_blocks(self):
        values = [0, 255, 256, 1000, 70000]
        s = BitSet(values)
        assert list(s.to_array()) == values

    def test_empty(self):
        s = BitSet([])
        assert s.cardinality == 0
        assert s.n_blocks == 0
        assert s.min_value is None and s.max_value is None

    def test_block_structure(self):
        s = BitSet([0, 1, 256, 700])
        # values span blocks 0, 1, and 2 (700 // 256 == 2)
        assert s.offsets.tolist() == [0, 1, 2]
        assert s.words.shape == (3, WORDS_PER_BLOCK)

    def test_block_bits_is_avx_width(self):
        assert BLOCK_BITS == 256

    def test_from_blocks_drops_empty(self):
        offsets = np.array([0, 1], dtype=np.uint32)
        words = np.zeros((2, WORDS_PER_BLOCK), dtype=np.uint64)
        words[0, 0] = 0b101
        s = BitSet.from_blocks(offsets, words)
        assert s.n_blocks == 1
        assert list(s.to_array()) == [0, 2]


class TestAccessors:
    def test_min_max(self):
        s = BitSet([63, 64, 511, 513])
        assert s.min_value == 63
        assert s.max_value == 513

    def test_contains(self):
        values = [0, 5, 255, 256, 300, 7000]
        s = BitSet(values)
        for v in values:
            assert s.contains(v)
        for v in [1, 254, 257, 6999, 7001]:
            assert not s.contains(v)

    def test_rank_matches_sorted_position(self):
        values = sorted({3, 64, 65, 255, 256, 1024, 1025, 9999})
        s = BitSet(values)
        for index, value in enumerate(values):
            assert s.rank(value) == index
        with pytest.raises(KeyError):
            s.rank(4)
        with pytest.raises(KeyError):
            s.rank(5000)  # block absent entirely

    def test_equals_uint(self):
        values = [1, 100, 257, 258]
        assert BitSet(values) == UintSet(values)

    def test_nbytes_dense_smaller_than_uint(self):
        dense = list(range(2048))
        assert BitSet(dense).nbytes < UintSet(dense).nbytes

    def test_nbytes_sparse_larger_than_uint(self):
        sparse = list(range(0, 2048 * 300, 300))
        assert BitSet(sparse).nbytes > UintSet(sparse).nbytes
