"""Seeded adversarial cross-layout intersection tests (fuzz satellite).

The differential fuzzer (:mod:`repro.fuzz`) cross-checks whole queries;
these tests pin the layer below it: every set layout, every uint
kernel, and every optimizer granularity must compute the identical
intersection on adversarial inputs — empty sets, singletons, dense
runs (bitset territory), and size-skewed pairs straddling the 32:1
galloping crossover and the 256 inverse-density bitset crossover.
Unlike the hypothesis suite next door, inputs here are *constructed*
around the dispatch thresholds rather than sampled, so every seed hits
every crossover on both sides.
"""

import random

import numpy as np
import pytest

from repro.sets import (BitPackedSet, BitSet, BlockedSet, PShortSet,
                        UINT_ALGORITHMS, UintSet, VariantSet, intersect,
                        intersect_uint_arrays)
from repro.sets.cost import GALLOPING_CROSSOVER, SIMD_REGISTER_BITS
from repro.sets.optimizer import build_set

LAYOUTS = [UintSet, BitSet, PShortSet, VariantSet, BitPackedSet,
           BlockedSet]

#: Optimizer granularities usable on a single set.
LEVELS = ("set", "block", "uint_only", "bitset_only")

SEEDS = list(range(8))


def _values(result):
    """Result values as a plain list (kernels may return a layout
    object or a bare array)."""
    if hasattr(result, "to_array"):
        result = result.to_array()
    return [int(v) for v in result]


def _sample(rng, n, span):
    """``n`` distinct values from ``[0, span)``."""
    n = min(n, span)
    return sorted(rng.sample(range(span), n))


def adversarial_pairs(rng):
    """Input pairs engineered around every dispatch boundary."""
    dense = list(range(64, 64 + 300))          # bitset territory
    sparse = _sample(rng, 40, 1 << 20)
    pairs = [
        ([], []),                              # empty x empty
        ([], dense),                           # empty x dense
        ([rng.randrange(300)], dense),         # singleton, likely hit
        ([1 << 21], sparse),                   # singleton, guaranteed miss
        (dense, dense),                        # identical dense runs
        (dense, [v + 1 for v in dense]),       # shifted dense runs
        (sparse, _sample(rng, 40, 1 << 20)),   # sparse x sparse
    ]
    # Size ratios straddling the galloping crossover: below, at, above.
    small = _sample(rng, 8, 1 << 16)
    for ratio in (GALLOPING_CROSSOVER - 1, GALLOPING_CROSSOVER,
                  GALLOPING_CROSSOVER * 4):
        large = _sample(rng, len(small) * ratio, 1 << 18)
        pairs.append((small, large))
    # Inverse density straddling the bitset crossover (span/card < 256
    # becomes a bitset): stretch the same cardinality across a span
    # just below and just above the threshold.
    card = 64
    for span in (card * (SIMD_REGISTER_BITS - 1),
                 card * (SIMD_REGISTER_BITS + 1)):
        pairs.append((_sample(rng, card, span), _sample(rng, card, span)))
    return pairs


@pytest.mark.parametrize("seed", SEEDS)
def test_all_layout_pairs_agree(seed):
    rng = random.Random(seed)
    for a, b in adversarial_pairs(rng):
        expected = sorted(set(a) & set(b))
        for layout_a in LAYOUTS:
            for layout_b in LAYOUTS:
                out = intersect(layout_a(a), layout_b(b))
                assert list(out.to_array()) == expected, \
                    (seed, layout_a.__name__, layout_b.__name__)


@pytest.mark.parametrize("seed", SEEDS)
def test_all_uint_algorithms_agree(seed):
    rng = random.Random(seed)
    for a, b in adversarial_pairs(rng):
        expected = sorted(set(a) & set(b))
        arr_a = np.asarray(sorted(set(a)), dtype=np.uint32)
        arr_b = np.asarray(sorted(set(b)), dtype=np.uint32)
        for algorithm in UINT_ALGORITHMS:
            out = intersect_uint_arrays(arr_a, arr_b,
                                        algorithm=algorithm)
            assert _values(out) == expected, (seed, algorithm)
        out = intersect_uint_arrays(arr_a, arr_b, simd=False)
        assert _values(out) == expected, (seed, "scalar")


@pytest.mark.parametrize("seed", SEEDS)
def test_all_optimizer_levels_agree(seed):
    rng = random.Random(seed)
    for a, b in adversarial_pairs(rng):
        expected = sorted(set(a) & set(b))
        for level_a in LEVELS:
            for level_b in LEVELS:
                out = intersect(build_set(a, level_a),
                                build_set(b, level_b))
                assert list(out.to_array()) == expected, \
                    (seed, level_a, level_b)
