"""Unit tests for skew/density statistics (paper footnote 4, Table 14)."""

import numpy as np
import pytest

from repro.sets import (cardinality_ratio, density_skew,
                        pearson_first_skew, set_density, set_statistics)


class TestPearsonSkew:
    def test_symmetric_unimodal_distribution_near_zero(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, size=5000)
        assert abs(pearson_first_skew(samples)) < 0.75

    def test_skewed_exceeds_symmetric(self):
        """Lognormal (finite variance, strongly right-skewed) must score
        clearly above a same-seed normal — the relative comparison the
        engine actually relies on."""
        rng = np.random.default_rng(1)
        symmetric = rng.normal(10.0, 2.0, size=5000)
        skewed = rng.lognormal(0.0, 1.0, size=5000)
        assert pearson_first_skew(skewed) \
            > pearson_first_skew(symmetric) + 0.3

    def test_right_tail_positive(self):
        samples = np.concatenate([np.full(100, 0.1),
                                  np.linspace(0.1, 50.0, 20)])
        assert pearson_first_skew(samples) > 0.4

    def test_degenerate_inputs(self):
        assert pearson_first_skew([]) == 0.0
        assert pearson_first_skew([1.0]) == 0.0
        assert pearson_first_skew([2.0, 2.0, 2.0]) == 0.0


class TestDensity:
    def test_set_density(self):
        assert set_density([0, 1, 2, 3]) == 1.0
        assert set_density([0, 9]) == pytest.approx(0.2)
        assert set_density([]) == 0.0

    def test_density_skew_over_neighborhoods(self):
        uniform = [list(range(i, i + 10)) for i in range(0, 100, 10)]
        assert abs(density_skew(uniform)) < 1e-9
        mixed = [list(range(10))] * 50 + [[0, 10 ** 6]] * 3
        assert density_skew(mixed) != 0.0


class TestSetStatistics:
    def test_table14_style_summary(self):
        stats = set_statistics([[1, 2, 3], [10, 1000], []])
        assert stats["mean_cardinality"] == pytest.approx(2.5)
        assert stats["max_cardinality"] == 3
        assert stats["max_range"] == 991
        assert stats["mean_range"] == pytest.approx((3 + 991) / 2)

    def test_empty_input(self):
        stats = set_statistics([])
        assert stats["max_cardinality"] == 0


class TestCardinalityRatio:
    def test_basic(self):
        assert cardinality_ratio(10, 320) == 32.0
        assert cardinality_ratio(320, 10) == 32.0

    def test_zero_handling(self):
        assert cardinality_ratio(0, 0) == 1.0
        assert cardinality_ratio(0, 5) == float("inf")
