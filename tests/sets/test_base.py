"""Unit tests for the SetLayout base helpers."""

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.sets import MAX_VALUE, PShortSet, UintSet, as_sorted_uint32


class TestAsSortedUint32:
    def test_sorts_and_dedups(self):
        out = as_sorted_uint32([3, 1, 1, 2])
        assert out.tolist() == [1, 2, 3]
        assert out.dtype == np.uint32

    def test_empty(self):
        assert as_sorted_uint32([]).size == 0
        assert as_sorted_uint32(np.empty(0)).size == 0

    def test_boundary_values(self):
        out = as_sorted_uint32([0, MAX_VALUE])
        assert out.tolist() == [0, MAX_VALUE]

    def test_rejects_out_of_range(self):
        with pytest.raises(LayoutError):
            as_sorted_uint32([MAX_VALUE + 1])
        with pytest.raises(LayoutError):
            as_sorted_uint32([-5])

    def test_rejects_non_integers(self):
        with pytest.raises(LayoutError):
            as_sorted_uint32(np.array(["a", "b"], dtype=object))
        with pytest.raises(LayoutError):
            as_sorted_uint32(np.array([1.25]))

    def test_integral_floats_accepted(self):
        assert as_sorted_uint32(np.array([2.0, 1.0])).tolist() == [1, 2]


class TestDefaultImplementations:
    """PShortSet inherits the base contains/rank via to_array."""

    def test_base_rank(self):
        s = PShortSet([10, 70000, 5])
        assert s.rank(5) == 0
        assert s.rank(70000) == 2
        with pytest.raises(KeyError):
            s.rank(11)

    def test_value_range_and_density(self):
        s = UintSet([10, 19])
        assert s.value_range == 10
        assert s.density == pytest.approx(0.2)
        assert UintSet([]).density == 0.0

    def test_hash_consistent_with_equality(self):
        from repro.sets import BitSet
        a = UintSet([1, 2, 3])
        b = BitSet([1, 2, 3])
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_against_non_layout(self):
        assert UintSet([1]) != [1]
