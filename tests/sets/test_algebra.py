"""Tests for set union and difference across layouts."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sets import (BitPackedSet, BitSet, BlockedSet, PShortSet,
                        UintSet, VariantSet)
from repro.sets.algebra import difference, union, union_many

LAYOUTS = [UintSet, BitSet, PShortSet, VariantSet, BitPackedSet,
           BlockedSet]


def _sets(seed=0):
    rng = random.Random(seed)
    a = sorted(rng.sample(range(3000), 300))
    b = sorted(rng.sample(range(3000), 500))
    return a, b


class TestUnion:
    @pytest.mark.parametrize("layout_a,layout_b",
                             list(itertools.product(LAYOUTS, repeat=2)))
    def test_all_pairs(self, layout_a, layout_b):
        a, b = _sets(1)
        out = union(layout_a(a), layout_b(b))
        assert list(out.to_array()) == sorted(set(a) | set(b))

    def test_bitset_pair_returns_bitset(self):
        out = union(BitSet([1, 300]), BitSet([2, 9000]))
        assert out.kind == "bitset"
        assert list(out.to_array()) == [1, 2, 300, 9000]

    def test_empty_operands(self):
        assert list(union(UintSet([]), UintSet([5])).to_array()) == [5]
        assert union(BitSet([]), BitSet([])).cardinality == 0

    def test_union_many(self):
        out = union_many([UintSet([1]), BitSet([2]), UintSet([1, 3])])
        assert list(out.to_array()) == [1, 2, 3]
        with pytest.raises(ValueError):
            union_many([])

    def test_type_checked(self):
        with pytest.raises(TypeError):
            union([1], UintSet([1]))


class TestDifference:
    @pytest.mark.parametrize("layout_a,layout_b",
                             list(itertools.product(LAYOUTS, repeat=2)))
    def test_all_pairs(self, layout_a, layout_b):
        a, b = _sets(2)
        out = difference(layout_a(a), layout_b(b))
        assert list(out.to_array()) == sorted(set(a) - set(b))

    def test_bitset_pair(self):
        out = difference(BitSet([1, 2, 300]), BitSet([2, 4]))
        assert out.kind == "bitset"
        assert list(out.to_array()) == [1, 300]

    def test_difference_with_self_is_empty(self):
        a, _ = _sets(3)
        assert difference(UintSet(a), BitSet(a)).cardinality == 0

    def test_empty_minuend(self):
        assert difference(BitSet([]), BitSet([1])).cardinality == 0

    def test_does_not_mutate_operands(self):
        x = BitSet([1, 2, 3])
        y = BitSet([2])
        difference(x, y)
        assert list(x.to_array()) == [1, 2, 3]


@given(a=st.lists(st.integers(0, 4000), max_size=80),
       b=st.lists(st.integers(0, 4000), max_size=80),
       pair=st.sampled_from([(UintSet, BitSet), (BitSet, BitSet),
                             (UintSet, UintSet), (BlockedSet, BitSet)]))
@settings(max_examples=60, deadline=None)
def test_property_identities(a, b, pair):
    layout_a, layout_b = pair
    sa, sb = layout_a(a), layout_b(b)
    assert list(union(sa, sb).to_array()) == sorted(set(a) | set(b))
    assert list(difference(sa, sb).to_array()) == sorted(set(a) - set(b))
    # |A| = |A∩B| + |A\B|
    from repro.sets import intersect
    assert intersect(sa, sb).cardinality \
        + difference(sa, sb).cardinality == len(set(a))
