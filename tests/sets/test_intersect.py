"""Unit tests for the intersection kernels and the hybrid dispatcher."""

import itertools
import random

import numpy as np
import pytest

from repro.sets import (BitPackedSet, BitSet, BlockedSet, GALLOPING_THRESHOLD,
                        OpCounter, PShortSet, UINT_ALGORITHMS, UintSet,
                        VariantSet, choose_uint_algorithm, intersect,
                        intersect_many, intersect_uint_arrays)

LAYOUTS = [UintSet, BitSet, PShortSet, VariantSet, BitPackedSet, BlockedSet]


def _sets(seed=0):
    rng = random.Random(seed)
    a = sorted(rng.sample(range(5000), 400))
    b = sorted(rng.sample(range(5000), 1500))
    return a, b, sorted(set(a) & set(b))


class TestUintKernels:
    @pytest.mark.parametrize("algorithm", UINT_ALGORITHMS)
    def test_correct_vs_python_sets(self, algorithm):
        a, b, expected = _sets(1)
        out = intersect_uint_arrays(
            np.asarray(a, dtype=np.uint32), np.asarray(b, dtype=np.uint32),
            algorithm=algorithm)
        assert out.tolist() == expected

    @pytest.mark.parametrize("algorithm", UINT_ALGORITHMS)
    def test_commutative(self, algorithm):
        a, b, _ = _sets(2)
        arr_a = np.asarray(a, dtype=np.uint32)
        arr_b = np.asarray(b, dtype=np.uint32)
        forward = intersect_uint_arrays(arr_a, arr_b, algorithm=algorithm)
        backward = intersect_uint_arrays(arr_b, arr_a, algorithm=algorithm)
        assert forward.tolist() == backward.tolist()

    @pytest.mark.parametrize("algorithm", UINT_ALGORITHMS)
    def test_disjoint(self, algorithm):
        a = np.arange(0, 100, dtype=np.uint32)
        b = np.arange(1000, 1100, dtype=np.uint32)
        assert intersect_uint_arrays(a, b, algorithm=algorithm).size == 0

    def test_empty_operand_short_circuits(self):
        counter = OpCounter()
        out = intersect_uint_arrays(np.empty(0, dtype=np.uint32),
                                    np.arange(5, dtype=np.uint32),
                                    counter=counter)
        assert out.size == 0
        assert counter.intersections == 0

    def test_scalar_fallback(self):
        a, b, expected = _sets(3)
        out = intersect_uint_arrays(
            np.asarray(a, dtype=np.uint32), np.asarray(b, dtype=np.uint32),
            simd=False)
        assert out.tolist() == expected


class TestHybridDispatcher:
    """Paper Algorithm 2: galloping past the 32:1 cardinality ratio."""

    def test_threshold_value(self):
        assert GALLOPING_THRESHOLD == 32

    def test_similar_sizes_use_shuffling(self):
        assert choose_uint_algorithm(100, 100) == "shuffling"
        assert choose_uint_algorithm(100, 3200) == "shuffling"

    def test_skewed_sizes_use_galloping(self):
        assert choose_uint_algorithm(100, 3300) == "simd_galloping"
        assert choose_uint_algorithm(3300, 100) == "simd_galloping"

    def test_adaptive_disabled_always_shuffles(self):
        assert choose_uint_algorithm(1, 10 ** 6,
                                     adaptive=False) == "shuffling"

    def test_dispatch_records_chosen_algorithm(self):
        counter = OpCounter()
        small = np.arange(4, dtype=np.uint32)
        large = np.arange(0, 10000, 2, dtype=np.uint32)
        intersect_uint_arrays(small, large, counter=counter)
        assert "simd_galloping" in counter.by_algorithm

    def test_crossover_override_changes_dispatch(self):
        # 100 vs 800 is an 8:1 ratio: shuffling under the paper's 32:1,
        # galloping under a tuned crossover of 4.
        assert choose_uint_algorithm(100, 800) == "shuffling"
        assert choose_uint_algorithm(100, 800,
                                     crossover=4.0) == "simd_galloping"
        assert choose_uint_algorithm(100, 800,
                                     crossover=512.0) == "shuffling"

    def test_dispatch_reads_live_cost_constant(self, monkeypatch):
        # Regression: GALLOPING_THRESHOLD used to be an import-time
        # snapshot of cost.GALLOPING_CROSSOVER, so overriding the cost
        # constant (as a calibration or an experiment might) silently
        # did nothing.  Dispatch must read the live value.
        from repro.sets import cost
        assert choose_uint_algorithm(100, 800) == "shuffling"
        monkeypatch.setattr(cost, "GALLOPING_CROSSOVER", 4)
        assert choose_uint_algorithm(100, 800) == "simd_galloping"

    def test_threshold_alias_stays_documented_value(self):
        # The re-exported alias is documentation of the paper constant;
        # live dispatch goes through cost.GALLOPING_CROSSOVER.
        import importlib
        intersect_module = importlib.import_module(
            "repro.sets.intersect")  # the package re-exports a same-
        # named function, which plain ``import ... as`` would bind
        assert intersect_module.GALLOPING_THRESHOLD == 32


class TestLayoutPairs:
    @pytest.mark.parametrize("layout_a,layout_b",
                             list(itertools.product(LAYOUTS, repeat=2)))
    def test_all_pairs_agree(self, layout_a, layout_b):
        a, b, expected = _sets(4)
        out = intersect(layout_a(a), layout_b(b))
        assert out.to_array().tolist() == expected

    def test_bitset_pair_returns_bitset(self):
        out = intersect(BitSet([1, 2, 3]), BitSet([2, 3, 4]))
        assert out.kind == "bitset"
        assert list(out.to_array()) == [2, 3]

    def test_uint_bitset_returns_uint(self):
        out = intersect(UintSet([1, 2, 3]), BitSet([2, 3, 4]))
        assert out.kind == "uint"

    def test_uint_bitset_cross_block_false_positive_rejected(self):
        # 300 shares block 1 with 257, but is not a member: the offset
        # match must be confirmed by the bit probe (§4.2 UINT∩BITSET).
        out = intersect(UintSet([300]), BitSet([257, 511]))
        assert out.cardinality == 0

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_empty_pairs(self, layout):
        assert intersect(layout([]), layout([1, 2])).cardinality == 0
        assert intersect(layout([1, 2]), layout([])).cardinality == 0

    def test_rejects_non_layout(self):
        with pytest.raises(TypeError):
            intersect([1, 2], UintSet([1]))

    def test_scalar_mode_all_pairs(self):
        a, b, expected = _sets(5)
        for layout_a, layout_b in itertools.product(
                [UintSet, BitSet, BlockedSet], repeat=2):
            out = intersect(layout_a(a), layout_b(b), simd=False)
            assert out.to_array().tolist() == expected


class TestIntersectMany:
    def test_three_way(self):
        sets = [UintSet([1, 2, 3, 4]), BitSet([2, 3, 4, 5]),
                UintSet([3, 4, 6])]
        out = intersect_many(sets)
        assert list(out.to_array()) == [3, 4]

    def test_single_set_passthrough(self):
        s = UintSet([1, 2])
        assert intersect_many([s]) is s

    def test_empty_early_exit(self):
        counter = OpCounter()
        out = intersect_many([UintSet([]), UintSet([1]), UintSet([2])],
                             counter=counter)
        assert out.cardinality == 0

    def test_requires_at_least_one(self):
        with pytest.raises(ValueError):
            intersect_many([])

    def test_order_invariant(self):
        sets = [list(range(0, 100, 2)), list(range(0, 100, 3)),
                list(range(0, 100, 5))]
        expected = sorted(set(sets[0]) & set(sets[1]) & set(sets[2]))
        for perm in itertools.permutations(sets):
            out = intersect_many([UintSet(s) for s in perm])
            assert list(out.to_array()) == expected
