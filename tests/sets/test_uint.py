"""Unit tests for the uint layout."""

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.sets import UintSet


class TestConstruction:
    def test_sorts_and_deduplicates(self):
        s = UintSet([5, 1, 3, 3, 1])
        assert list(s.to_array()) == [1, 3, 5]
        assert s.cardinality == 3

    def test_empty(self):
        s = UintSet([])
        assert s.cardinality == 0
        assert s.min_value is None
        assert s.max_value is None
        assert s.value_range == 0
        assert list(s) == []

    def test_from_numpy(self):
        s = UintSet(np.array([9, 2, 2], dtype=np.int64))
        assert list(s.to_array()) == [2, 9]

    def test_from_sorted_fast_path(self):
        arr = np.array([1, 2, 3], dtype=np.uint32)
        s = UintSet.from_sorted(arr)
        assert s.to_array() is arr

    def test_rejects_negative(self):
        with pytest.raises(LayoutError):
            UintSet([-1, 2])

    def test_rejects_too_large(self):
        with pytest.raises(LayoutError):
            UintSet([2 ** 32])

    def test_accepts_integral_floats(self):
        s = UintSet(np.array([1.0, 2.0]))
        assert list(s.to_array()) == [1, 2]

    def test_rejects_fractional_floats(self):
        with pytest.raises(LayoutError):
            UintSet(np.array([1.5]))


class TestAccessors:
    def test_min_max_range_density(self):
        s = UintSet([10, 20, 30])
        assert s.min_value == 10
        assert s.max_value == 30
        assert s.value_range == 21
        assert s.density == pytest.approx(3 / 21)

    def test_contains(self):
        s = UintSet([1, 5, 9])
        assert 5 in s
        assert 4 not in s
        assert 0 not in s
        assert 10 not in s

    def test_rank(self):
        s = UintSet([4, 8, 15, 16])
        assert s.rank(4) == 0
        assert s.rank(16) == 3
        with pytest.raises(KeyError):
            s.rank(5)

    def test_len_and_iter(self):
        s = UintSet([3, 1])
        assert len(s) == 2
        assert [v for v in s] == [1, 3]

    def test_equality_across_layouts(self):
        from repro.sets import BitSet
        assert UintSet([1, 2]) == BitSet([1, 2])
        assert UintSet([1, 2]) != UintSet([1, 3])

    def test_nbytes(self):
        assert UintSet([1, 2, 3]).nbytes == 12

    def test_repr_truncates(self):
        s = UintSet(range(20))
        assert "..." in repr(s)
        assert "n=20" in repr(s)
