"""Tests of the paper's headline *shape* claims, on the cost model.

These are the claims EXPERIMENTS.md reports against; keeping them in the
test suite guards the reproduction's behaviour, not just its outputs:

* worst-case optimality: triangle work scales ~N^{3/2} on complete
  graphs while pairwise plans blow up quadratically (§1, §2.1);
* GHD plans beat single-node plans asymptotically on Barbell (§3.1.1);
* the set-level layout optimizer beats forcing uint everywhere on
  skewed data (§4.4, Table 8's "-R");
* galloping's 32:1 crossover (§4.2, Figure 10);
* symmetric filtering ≈ 6x output reduction and ~constant-factor
  work reduction (§5.2.1).
"""

import numpy as np
import pytest

from repro import Database
from repro.graphs import (TRIANGLE_COUNT, BARBELL_COUNT, complete_graph,
                          load_dataset, undirect)
from repro.sets import OpCounter


def triangle_ops(edges, **overrides):
    db = Database(**overrides)
    db.load_graph("Edge", [tuple(e) for e in edges], prune=True)
    db.query(TRIANGLE_COUNT)
    return db.counter.total_ops


class TestWorstCaseOptimality:
    def test_triangle_work_scales_subquadratically(self):
        """Doubling N (edges) on complete graphs must grow work like
        ~N^1.5, far below the pairwise N^2."""
        small = undirect(complete_graph(16))
        large = undirect(complete_graph(32))
        ratio_n = large.shape[0] / small.shape[0]   # ~4x edges
        ops_small = triangle_ops(small)
        ops_large = triangle_ops(large)
        growth = ops_large / ops_small
        assert growth < ratio_n ** 1.8              # clearly below N^2
        assert growth > ratio_n ** 0.8              # sanity: real work

    def test_pairwise_intermediate_blows_up(self):
        """The pairwise plan's first join R ⋈ S materializes all wedges:
        Ω(N^2) on a complete graph, vs the WCOJ output of O(N^1.5)."""
        from repro.baselines import PairwiseEngine
        edges = undirect(complete_graph(24))
        engine = PairwiseEngine()
        engine.add("E", edges)
        wedges = engine.count_conjunctive([("E", ("x", "y")),
                                           ("E", ("y", "z"))])
        triangles = engine.count_conjunctive([
            ("E", ("x", "y")), ("E", ("y", "z")), ("E", ("x", "z"))])
        n = edges.shape[0]
        assert wedges > n ** 1.4          # the doomed intermediate
        assert triangles < wedges


class TestGHDAdvantage:
    #: Small uniform graph so the (intentionally expensive) single-node
    #: Barbell plan still finishes inside the unit-test budget; the full
    #: Table 8 benchmark runs the real analogs with a t/o budget.
    @staticmethod
    def _small_skewed_edges():
        from repro.graphs import uniform_graph
        return uniform_graph(300, 900, seed=4)

    def test_barbell_ghd_beats_single_node_on_ops(self):
        edges = self._small_skewed_edges()
        ghd_db = Database()
        ghd_db.load_graph("Edge", [tuple(e) for e in edges])
        ghd_count = ghd_db.query(BARBELL_COUNT).scalar
        flat_db = Database(use_ghd=False)
        flat_db.load_graph("Edge", [tuple(e) for e in edges])
        flat_count = flat_db.query(BARBELL_COUNT).scalar
        assert ghd_count == flat_count
        assert ghd_db.counter.total_ops * 3 < flat_db.counter.total_ops

    def test_redundant_bag_elimination_halves_triangle_work(self):
        """Appendix B.2: the two Barbell triangle bags are identical —
        reuse should save close to one bag's evaluation."""
        edges = self._small_skewed_edges()
        on = Database()
        on.load_graph("Edge", [tuple(e) for e in edges])
        on.query(BARBELL_COUNT)
        off = Database(eliminate_redundant_bags=False)
        off.load_graph("Edge", [tuple(e) for e in edges])
        off.query(BARBELL_COUNT)
        assert on.counter.total_ops < 0.8 * off.counter.total_ops


class TestLayoutAdvantage:
    def test_set_optimizer_beats_uint_only_on_skewed_data(self):
        """Table 8 "-R": on the high-skew analog the adaptive layouts
        must cut simulated ops versus all-uint."""
        edges = load_dataset("googleplus")
        adaptive = triangle_ops(edges, layout_level="set")
        uint_only = triangle_ops(edges, layout_level="uint_only")
        assert adaptive < uint_only

    def test_layout_choice_matters_less_on_low_skew_data(self):
        """On Patents-like data most sets stay uint, so the gap narrows
        (the paper: 'our performance gains are modest')."""
        skewed_gain = (triangle_ops(load_dataset("googleplus"),
                                    layout_level="uint_only")
                       / triangle_ops(load_dataset("googleplus")))
        flat_gain = (triangle_ops(load_dataset("patents"),
                                  layout_level="uint_only")
                     / triangle_ops(load_dataset("patents")))
        assert skewed_gain > flat_gain

    def test_bitsets_selected_on_skewed_dataset(self):
        db = Database()
        edges = load_dataset("googleplus")
        db.load_graph("Edge", [tuple(e) for e in edges], prune=True)
        db.query(TRIANGLE_COUNT)
        histograms = {}
        for trie in db._trie_cache._tries.values():
            for kind, count in trie.layout_histogram().items():
                histograms[kind] = histograms.get(kind, 0) + count
        assert histograms.get("bitset", 0) > 0


class TestCardinalitySkewCrossover:
    def test_galloping_wins_past_32_to_1(self):
        from repro.sets.intersect import (uint_shuffling,
                                          uint_simd_galloping)
        rng = np.random.default_rng(0)
        domain = 10 ** 6
        small = np.sort(rng.choice(domain, 64,
                                   replace=False)).astype(np.uint32)

        def ops(kernel, large_size):
            large = np.sort(rng.choice(domain, large_size,
                                       replace=False)).astype(np.uint32)
            counter = OpCounter()
            kernel(small, large, counter)
            return counter.total_ops

        # At ratio 8:1 shuffling is at least competitive.
        assert ops(uint_shuffling, 64 * 8) \
            < 4 * ops(uint_simd_galloping, 64 * 8)
        # At ratio 1024:1 galloping must dominate.
        assert ops(uint_simd_galloping, 64 * 1024) * 4 \
            < ops(uint_shuffling, 64 * 1024)


class TestSymmetricFiltering:
    def test_pruning_reduces_work(self):
        edges = load_dataset("livejournal")
        db_pruned = Database()
        db_pruned.load_graph("Edge", [tuple(e) for e in edges],
                             prune=True)
        pruned_count = db_pruned.query(TRIANGLE_COUNT).scalar
        db_full = Database()
        db_full.load_graph("Edge", [tuple(e) for e in edges])
        full_count = db_full.query(TRIANGLE_COUNT).scalar
        assert full_count == 6 * pruned_count
        assert db_pruned.counter.total_ops < db_full.counter.total_ops
