"""A brute-force reference evaluator for conjunctive queries.

Enumerates variable assignments by nested iteration over the atoms'
tuples — exponential, but unambiguous.  The integration/property tests
compare the engine's GHD/WCOJ pipeline against this oracle on small
random inputs.
"""

import itertools
import math


def evaluate_conjunctive(atom_tuples, atom_vars, head_vars,
                         aggregate=None, annotations=None):
    """Evaluate a conjunctive query by brute force.

    Parameters
    ----------
    atom_tuples:
        List of tuple-lists, one per atom.
    atom_vars:
        List of variable-name tuples, parallel to ``atom_tuples``
        (constants must already be applied).
    head_vars:
        Output variables.
    aggregate:
        ``None`` for set semantics, else one of ``"COUNT*"``, ``"SUM"``,
        ``"MIN"``, ``"MAX"`` folding the product of annotations per head
        binding.
    annotations:
        Optional list of per-atom ``{tuple: value}`` dicts.

    Returns
    -------
    Set of head tuples (set semantics), or ``{head tuple: value}``.
    """
    results = {} if aggregate else set()
    for combo in itertools.product(*atom_tuples):
        binding = {}
        consistent = True
        for variables, row in zip(atom_vars, combo):
            for var, value in zip(variables, row):
                if binding.setdefault(var, value) != value:
                    consistent = False
                    break
            if not consistent:
                break
        if not consistent:
            continue
        key = tuple(binding[v] for v in head_vars)
        if aggregate is None:
            results.add(key)
            continue
        product = 1.0
        if annotations is not None:
            for table, row in zip(annotations, combo):
                if table is not None:
                    product *= table[tuple(row)]
        if aggregate == "COUNT*" or aggregate == "SUM":
            results[key] = results.get(key, 0.0) + product
        elif aggregate == "MIN":
            results[key] = min(results.get(key, math.inf), product)
        elif aggregate == "MAX":
            results[key] = max(results.get(key, -math.inf), product)
        else:
            raise ValueError(aggregate)
    return results
