"""A brute-force reference evaluator for conjunctive queries.

Enumerates variable assignments by nested iteration over the atoms'
tuples — exponential, but unambiguous.  The integration/property tests
compare the engine's GHD/WCOJ pipeline against this oracle on small
random inputs.
"""

import itertools
import math

#: Round cap for the reference fixpoint evaluators.
MAX_REFERENCE_ROUNDS = 5000


class ReferenceDiverged(Exception):
    """A reference fixpoint did not converge within the round cap."""


def evaluate_conjunctive(atom_tuples, atom_vars, head_vars,
                         aggregate=None, annotations=None):
    """Evaluate a conjunctive query by brute force.

    Parameters
    ----------
    atom_tuples:
        List of tuple-lists, one per atom.
    atom_vars:
        List of variable-name tuples, parallel to ``atom_tuples``
        (constants must already be applied).
    head_vars:
        Output variables.
    aggregate:
        ``None`` for set semantics, else one of ``"COUNT*"``, ``"SUM"``,
        ``"MIN"``, ``"MAX"`` folding the product of annotations per head
        binding.
    annotations:
        Optional list of per-atom ``{tuple: value}`` dicts.

    Returns
    -------
    Set of head tuples (set semantics), or ``{head tuple: value}``.
    """
    results = {} if aggregate else set()
    for combo in itertools.product(*atom_tuples):
        binding = {}
        consistent = True
        for variables, row in zip(atom_vars, combo):
            for var, value in zip(variables, row):
                if binding.setdefault(var, value) != value:
                    consistent = False
                    break
            if not consistent:
                break
        if not consistent:
            continue
        key = tuple(binding[v] for v in head_vars)
        if aggregate is None:
            results.add(key)
            continue
        product = 1.0
        if annotations is not None:
            for table, row in zip(annotations, combo):
                if table is not None:
                    product *= table[tuple(row)]
        if aggregate == "COUNT*" or aggregate == "SUM":
            results[key] = results.get(key, 0.0) + product
        elif aggregate == "MIN":
            results[key] = min(results.get(key, math.inf), product)
        elif aggregate == "MAX":
            results[key] = max(results.get(key, -math.inf), product)
        else:
            raise ValueError(aggregate)
    return results


# -- recursion (naive fixpoint drivers) --------------------------------------
#
# The engine's three recursion modes, replayed with the dumbest possible
# strategy: re-evaluate the whole rule every round.  ``step`` is a
# callback evaluating the recursive rule's body against the current
# value of the head (set for union, ``{tuple: value}`` for the
# aggregating modes); the drivers own only the iteration policy.


def fixpoint_union(base, step, max_rounds=MAX_REFERENCE_ROUNDS):
    """Union semantics: grow the head until no new tuples appear."""
    current = set(base)
    for _ in range(max_rounds):
        produced = set(step(current))
        merged = current | produced
        if len(merged) == len(current):
            return current
        current = merged
    raise ReferenceDiverged("union fixpoint did not converge")


def fixpoint_replace(base, step, iterations):
    """Replace semantics (``*[i=k]``): each round's output wholly
    replaces the head, ``iterations`` times."""
    current = base
    for _ in range(iterations):
        current = step(current)
    return current


def fixpoint_monotone(base, step, op, max_rounds=MAX_REFERENCE_ROUNDS):
    """Monotone MIN/MAX semantics: merge each round's improvements into
    the accumulated ``{tuple: value}`` until none improve."""
    if op == "MIN":
        def better(new, old):
            return new < old
    elif op == "MAX":
        def better(new, old):
            return new > old
    else:
        raise ValueError(op)
    best = dict(base)
    for _ in range(max_rounds):
        produced = step(best)
        improved = False
        for key, value in produced.items():
            old = best.get(key)
            if old is None or better(value, old):
                best[key] = value
                improved = True
        if not improved:
            return best
    raise ReferenceDiverged("monotone fixpoint did not converge")


# -- whole programs -----------------------------------------------------------


def _eval_reference_expr(expr, agg_value, env):
    """Annotation-expression arithmetic over plain floats (mirrors the
    AST shape of ``repro.query.ast`` without importing the engine's
    evaluator)."""
    kind = type(expr).__name__
    if kind == "Num":
        return float(expr.value)
    if kind == "Ref":
        return env[expr.name]
    if kind == "Agg":
        return agg_value
    if kind == "BinOp":
        left = _eval_reference_expr(expr.left, agg_value, env)
        right = _eval_reference_expr(expr.right, agg_value, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
        raise ValueError("unknown operator %r" % expr.op)
    raise ValueError("unknown expression node %r" % (expr,))


def _rule_inputs(rule, catalog):
    """Lower one rule's body to ``evaluate_conjunctive`` inputs:
    constants applied (matching tuples kept, constant positions
    stripped), per-atom annotation dicts re-keyed accordingly."""
    atom_tuples, atom_vars, annotations = [], [], []
    for atom in rule.body:
        tuples, values = catalog[atom.name]
        variable_positions = [i for i, t in enumerate(atom.terms)
                              if type(t).__name__ == "Variable"]
        names = tuple(atom.terms[i].name for i in variable_positions)
        kept, kept_values = [], {}
        for row in tuples:
            match = all(row[i] == t.value
                        for i, t in enumerate(atom.terms)
                        if type(t).__name__ == "Constant")
            if not match:
                continue
            stripped = tuple(row[i] for i in variable_positions)
            kept.append(stripped)
            if values is not None:
                kept_values[stripped] = values[row]
        atom_tuples.append(kept)
        atom_vars.append(names)
        annotations.append(kept_values if values is not None else None)
    return atom_tuples, atom_vars, annotations


def _evaluate_rule(rule, catalog, env):
    """One non-recursive rule via :func:`evaluate_conjunctive`; returns
    a normalized ``(kind, value)`` (same vocabulary as the fuzz
    harness: set / map / scalar / exists)."""
    head = tuple(rule.head_vars)
    atom_tuples, atom_vars, annotations = _rule_inputs(rule, catalog)
    aggs = rule.aggregates
    agg = aggs[0] if aggs else None
    if agg is not None and agg.op == "COUNT" and agg.arg != "*":
        distinct = evaluate_conjunctive(atom_tuples, atom_vars,
                                        head + (agg.arg,))
        counts = {}
        for row in distinct:
            counts[row[:-1]] = counts.get(row[:-1], 0) + 1
        if not head:
            return "scalar", float(_eval_reference_expr(
                rule.assignment, float(counts.get((), 0)), env))
        return "map", {key: float(_eval_reference_expr(
            rule.assignment, float(count), env))
            for key, count in counts.items()}
    if agg is not None:
        fold = "COUNT*" if agg.op == "COUNT" else agg.op
        folded = evaluate_conjunctive(atom_tuples, atom_vars, head,
                                      aggregate=fold,
                                      annotations=annotations)
        if not head:
            zero = {"COUNT*": 0.0, "SUM": 0.0, "MIN": math.inf,
                    "MAX": -math.inf}[fold]
            return "scalar", float(_eval_reference_expr(
                rule.assignment, folded.get((), zero), env))
        return "map", {key: float(_eval_reference_expr(rule.assignment,
                                                       value, env))
                       for key, value in folded.items()}
    keys = evaluate_conjunctive(atom_tuples, atom_vars, head)
    if rule.annotation is not None:
        value = float(_eval_reference_expr(rule.assignment, None, env))
        if not head:
            return "scalar", value if keys else 0.0
        return "map", {key: value for key in keys}
    if not head:
        return "exists", bool(keys)
    return "set", frozenset(keys)


def _catalog_entry(kind, value):
    if kind == "set":
        return sorted(value), None
    if kind == "map":
        return sorted(value), dict(value)
    if kind == "scalar":
        return [], None
    if kind == "exists":
        return ([()] if value else []), None
    raise ValueError(kind)


def evaluate_program(base, rules):
    """Evaluate a whole program (including recursive rules) by brute
    force.

    ``base`` maps relation names to ``(tuples, {tuple: annotation} or
    None)``; ``rules`` are :class:`repro.query.ast.Rule` objects.
    Returns ``{head_name: (kind, value)}`` with every head's final
    value.  Raises :class:`ReferenceDiverged` when a fixpoint exceeds
    the round cap.
    """
    catalog = {name: (list(tuples), dict(ann) if ann is not None else None)
               for name, (tuples, ann) in base.items()}
    env = {}
    results = {}
    for rule in rules:
        if not rule.recursive:
            kind, value = _evaluate_rule(rule, catalog, env)
        else:
            name = rule.head_name
            aggs = rule.aggregates
            op = aggs[0].op if aggs else None

            if rule.iterations is not None:
                def step_replace(current):
                    catalog[name] = _catalog_entry(*current)
                    return _evaluate_rule(rule, catalog, env)
                start = catalog[name]
                initial = ("map", dict(start[1])) \
                    if start[1] is not None \
                    else ("set", frozenset(start[0]))
                kind, value = fixpoint_replace(initial, step_replace,
                                               rule.iterations)
            elif op is None:
                def step_union(current):
                    catalog[name] = (sorted(current), None)
                    produced = _evaluate_rule(rule, catalog, env)
                    return produced[1]
                kind, value = "set", frozenset(
                    fixpoint_union(catalog[name][0], step_union))
            elif op in ("MIN", "MAX"):
                def step_monotone(best):
                    catalog[name] = (sorted(best), dict(best))
                    produced = _evaluate_rule(rule, catalog, env)
                    return produced[1]
                kind, value = "map", fixpoint_monotone(
                    dict(catalog[name][1]), step_monotone, op)
            else:
                raise ValueError(
                    "unbounded recursion with non-monotone %r" % op)
        results[rule.head_name] = (kind, value)
        catalog[rule.head_name] = _catalog_entry(kind, value)
        if kind == "scalar":
            env[rule.head_name] = value
    return results
