"""Unit tests for relations and annotation handling."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage import Dictionary, Relation


class TestConstruction:
    def test_basic(self):
        r = Relation("R", [[0, 1], [1, 2]])
        assert r.arity == 2
        assert r.cardinality == 2
        assert not r.is_scalar()

    def test_one_dimensional_input_becomes_unary(self):
        r = Relation("R", np.array([3, 1, 2], dtype=np.uint32))
        assert r.arity == 1

    def test_annotation_alignment_checked(self):
        with pytest.raises(SchemaError):
            Relation("R", [[0, 1]], annotations=[1.0, 2.0])

    def test_dictionary_count_checked(self):
        with pytest.raises(SchemaError):
            Relation("R", [[0, 1]], dictionaries=[Dictionary()])

    def test_from_tuples_shared_dictionary(self):
        r = Relation.from_tuples("E", [("a", "b"), ("b", "c")])
        assert r.cardinality == 2
        assert list(r.decoded_tuples()) == [("a", "b"), ("b", "c")]
        assert r.dictionaries[0] is r.dictionaries[1]

    def test_from_tuples_ragged_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_tuples("E", [("a", "b"), ("c",)])

    def test_scalar(self):
        r = Relation.scalar("N", 7.0)
        assert r.is_scalar()
        assert r.scalar_value == 7.0

    def test_scalar_value_guarded(self):
        r = Relation("R", [[0, 1]])
        with pytest.raises(SchemaError):
            r.scalar_value


class TestDeduplication:
    def test_removes_duplicates_sorted(self):
        r = Relation("R", [[1, 0], [0, 1], [1, 0]])
        d = r.deduplicated()
        assert d.data.tolist() == [[0, 1], [1, 0]]

    def test_combine_last(self):
        r = Relation("R", [[0, 1], [0, 1]], annotations=[1.0, 9.0])
        d = r.deduplicated("last")
        assert d.annotations.tolist() == [9.0]

    def test_combine_sum(self):
        r = Relation("R", [[0, 1], [0, 1], [2, 2]],
                     annotations=[1.0, 2.0, 5.0])
        d = r.deduplicated("sum")
        assert d.annotations.tolist() == [3.0, 5.0]

    def test_combine_min_max(self):
        r = Relation("R", [[0, 1], [0, 1]], annotations=[4.0, 2.0])
        assert r.deduplicated("min").annotations.tolist() == [2.0]
        assert r.deduplicated("max").annotations.tolist() == [4.0]

    def test_unknown_combine_rejected(self):
        r = Relation("R", [[0, 1], [0, 1]], annotations=[1.0, 2.0])
        with pytest.raises(ValueError):
            r.deduplicated("median")

    def test_empty_passthrough(self):
        r = Relation("R", np.empty((0, 2), dtype=np.uint32))
        assert r.deduplicated() is r


class TestProjection:
    def test_project_columns(self):
        r = Relation.from_tuples("R", [("a", "b"), ("c", "d")])
        p = r.project([1])
        assert p.arity == 1
        assert list(p.decoded_tuples()) == [("b",), ("d",)]

    def test_decoded_tuples_without_dictionary(self):
        r = Relation("R", [[7, 8]])
        assert list(r.decoded_tuples()) == [(7, 8)]
