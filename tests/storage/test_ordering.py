"""Unit tests for node orderings (paper Appendix A.1.1)."""

import numpy as np
import pytest

from repro.storage import ORDERINGS, apply_order, order_nodes

STAR_PLUS_TAIL = np.array([[0, 1], [0, 2], [0, 3], [0, 4], [4, 5]])


class TestSchemes:
    @pytest.mark.parametrize("scheme", ORDERINGS)
    def test_every_scheme_returns_a_bijection(self, scheme):
        perm = order_nodes(STAR_PLUS_TAIL, 6, scheme=scheme)
        assert sorted(perm.tolist()) == list(range(6))
        assert perm.dtype == np.uint32

    def test_degree_puts_hub_first(self):
        perm = order_nodes(STAR_PLUS_TAIL, 6, scheme="degree")
        assert perm[0] == 0  # node 0 has degree 4

    def test_rev_degree_puts_hub_last(self):
        perm = order_nodes(STAR_PLUS_TAIL, 6, scheme="rev_degree")
        assert perm[0] == 5

    def test_bfs_labels_neighbors_contiguously(self):
        perm = order_nodes(STAR_PLUS_TAIL, 6, scheme="bfs")
        # BFS from the hub: hub gets 0, its neighbors get 1..4.
        assert perm[0] == 0
        assert sorted(perm[[1, 2, 3, 4]].tolist()) == [1, 2, 3, 4]
        assert perm[5] == 5

    def test_bfs_covers_disconnected_components(self):
        edges = np.array([[0, 1], [2, 3]])
        perm = order_nodes(edges, 5, scheme="bfs")  # node 4 isolated
        assert sorted(perm.tolist()) == list(range(5))

    def test_hybrid_degree_primary_bfs_tiebreak(self):
        perm = order_nodes(STAR_PLUS_TAIL, 6, scheme="hybrid")
        assert perm[0] == 0          # highest degree first
        assert perm[4] == 1          # degree-2 node next
        # equal-degree leaves keep their BFS relative order
        leaf_labels = perm[[1, 2, 3]].tolist()
        assert leaf_labels == sorted(leaf_labels)

    def test_random_is_seeded(self):
        a = order_nodes(STAR_PLUS_TAIL, 6, scheme="random", seed=1)
        b = order_nodes(STAR_PLUS_TAIL, 6, scheme="random", seed=1)
        c = order_nodes(STAR_PLUS_TAIL, 6, scheme="random", seed=2)
        assert a.tolist() == b.tolist()
        assert a.tolist() != c.tolist()

    def test_shingle_groups_similar_neighborhoods(self):
        # nodes 1..4 share the identical neighborhood {0}: shingle must
        # place them contiguously.
        perm = order_nodes(STAR_PLUS_TAIL[:4], 5, scheme="shingle")
        labels = sorted(perm[[1, 2, 3, 4]].tolist())
        assert labels == list(range(labels[0], labels[0] + 4))

    def test_strong_runs_numbers_hub_neighbors_contiguously(self):
        perm = order_nodes(STAR_PLUS_TAIL, 6, scheme="strong_runs")
        assert perm[0] == 0
        assert sorted(perm[[1, 2, 3, 4]].tolist()) == [1, 2, 3, 4]

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            order_nodes(STAR_PLUS_TAIL, 6, scheme="zorder")

    def test_empty_edges(self):
        perm = order_nodes(np.empty((0, 2)), 3, scheme="degree")
        assert perm.tolist() == [0, 1, 2]


class TestApplyOrder:
    def test_relabels_edges(self):
        perm = np.array([2, 0, 1], dtype=np.uint32)
        out = apply_order(np.array([[0, 1], [1, 2]]), perm)
        assert out.tolist() == [[2, 0], [0, 1]]

    def test_triangle_count_invariant_under_ordering(self):
        """Relabeling must never change the set of triangles."""
        from tests.conftest import (brute_force_triangles,
                                    random_undirected_edges)
        edges = random_undirected_edges(25, 80, seed=5)
        base = brute_force_triangles(edges)
        arr = np.asarray(edges)
        for scheme in ORDERINGS:
            perm = order_nodes(arr, 25, scheme=scheme)
            relabeled = [tuple(e) for e in apply_order(arr, perm).tolist()]
            assert brute_force_triangles(relabeled) == base, scheme
