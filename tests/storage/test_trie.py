"""Unit tests for the trie storage structure (paper §2.2, Figure 2)."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.sets.optimizer import SetOptimizer
from repro.storage import Relation, Trie, trie_from_arrays


def figure2_relation():
    """The paper's Figure 2 example: (managerID, employeeID) annotated
    with employeeRating, dictionary-encoded."""
    data = np.array([[0, 1], [0, 2], [1, 0], [2, 0]], dtype=np.uint32)
    ratings = np.array([4.0, 5.0, 3.0, 2.0])
    return Relation("Manages", data, ratings)


class TestBuild:
    def test_two_level_structure(self):
        trie = Trie(figure2_relation())
        assert trie.arity == 2
        assert list(trie.root.set) == [0, 1, 2]
        assert list(trie.lookup((0,)).set) == [1, 2]
        assert list(trie.lookup((1,)).set) == [0]

    def test_tuples_lexicographic(self):
        trie = Trie(figure2_relation())
        assert list(trie.tuples()) == [(0, 1), (0, 2), (1, 0), (2, 0)]
        assert trie.cardinality == 4

    def test_annotations_at_leaves(self):
        trie = Trie(figure2_relation())
        assert trie.lookup((0,)).annotation(2) == 5.0
        annotated = dict(trie.annotated_tuples())
        assert annotated == {(0, 1): 4.0, (0, 2): 5.0, (1, 0): 3.0,
                             (2, 0): 2.0}

    def test_transposed_order(self):
        trie = Trie(figure2_relation(), key_order=(1, 0))
        assert list(trie.tuples()) == [(0, 1), (0, 2), (1, 0), (2, 0)]
        # level-0 set is now the employee column
        assert list(trie.root.set) == [0, 1, 2]
        assert list(trie.lookup((0,)).set) == [1, 2]

    def test_three_level(self):
        data = np.array([[1, 2, 3], [1, 2, 4], [0, 9, 9]], dtype=np.uint32)
        trie = Trie(Relation("T", data))
        assert list(trie.tuples()) == [(0, 9, 9), (1, 2, 3), (1, 2, 4)]
        assert trie.lookup((1, 2)).set.cardinality == 2

    def test_deduplicates_input(self):
        data = np.array([[0, 1], [0, 1]], dtype=np.uint32)
        trie = Trie(Relation("T", data))
        assert trie.cardinality == 1

    def test_invalid_key_order(self):
        with pytest.raises(SchemaError):
            Trie(figure2_relation(), key_order=(0, 0))

    def test_empty_relation(self):
        trie = Trie(Relation("T", np.empty((0, 2), dtype=np.uint32)))
        assert trie.cardinality == 0
        assert list(trie.tuples()) == []

    def test_scalar_relation(self):
        trie = Trie(Relation.scalar("N", 3.5))
        assert trie.scalar == 3.5
        assert trie.cardinality == 1


class TestAccess:
    def test_contains(self):
        trie = Trie(figure2_relation())
        assert trie.contains((0, 2))
        assert not trie.contains((0, 0))
        assert not trie.contains((9, 9))

    def test_lookup_missing_prefix(self):
        trie = Trie(figure2_relation())
        with pytest.raises(KeyError):
            trie.lookup((7,))

    def test_child_navigation(self):
        trie = Trie(figure2_relation())
        node = trie.root.child(0)
        assert node is trie.root.child_at(0)
        assert node.is_leaf

    def test_level_sets(self):
        trie = Trie(figure2_relation())
        assert len(trie.level_sets(0)) == 1
        assert len(trie.level_sets(1)) == 3  # one per manager

    def test_annotation_requires_annotations(self):
        trie = Trie(Relation("T", np.array([[0, 1]], dtype=np.uint32)))
        with pytest.raises(SchemaError):
            trie.lookup((0,)).annotation(1)


class TestLayoutIntegration:
    def test_layout_level_flows_through(self):
        dense = np.stack([np.zeros(500, dtype=np.uint32),
                          np.arange(500, dtype=np.uint32)], axis=1)
        uint_trie = Trie(Relation("T", dense),
                         optimizer=SetOptimizer("uint_only"))
        set_trie = Trie(Relation("T", dense),
                        optimizer=SetOptimizer("set"))
        assert uint_trie.layout_histogram() == {"uint": 2}
        # the dense 500-value child set becomes a bitset under Alg. 3
        assert set_trie.layout_histogram().get("bitset", 0) >= 1

    def test_nbytes_positive(self):
        trie = Trie(figure2_relation())
        assert trie.nbytes > 0

    def test_trie_from_arrays(self):
        trie = trie_from_arrays("T", np.array([[1, 2]], dtype=np.uint32))
        assert list(trie.tuples()) == [(1, 2)]
