"""Delta-store row algebra, journal semantics, and in-place mutation.

The delta layer is the storage seam of the versioned-mutable refactor:
``Relation.apply_append`` / ``apply_delete`` keep the effective arrays
canonical while journalling every change batch, and ``DeltaStore``
answers the replay questions the cache-patching and view-maintenance
layers ask.
"""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage.builder import patched_trie
from repro.storage.delta import (JOURNAL_LIMIT, DeltaStore, merge_sorted,
                                 row_view, rows_in, sort_rows,
                                 subtract_sorted)
from repro.storage.relation import Relation
from repro.storage.trie import Trie


def rel(rows, annotations=None, name="R"):
    data = np.asarray(rows, dtype=np.uint32).reshape(
        -1, len(rows[0]) if rows else 2)
    ann = None if annotations is None \
        else np.asarray(annotations, dtype=np.float64)
    return Relation(name, data, ann, None)


class TestRowAlgebra:
    def test_row_view_order_matches_lexicographic(self):
        data = np.array([[0, 7], [1, 0], [0, 2], [2, 1], [1, 9]],
                        dtype=np.uint32)
        keys = row_view(data)
        by_view = np.argsort(keys, kind="stable")
        by_lex = np.lexsort((data[:, 1], data[:, 0]))
        assert np.array_equal(by_view, by_lex)

    def test_row_view_large_values(self):
        # Big-endian conversion must keep order beyond one byte.
        data = np.array([[255], [256], [65535], [65536], [2**32 - 1]],
                        dtype=np.uint32)
        keys = row_view(data)
        assert list(np.argsort(keys)) == [0, 1, 2, 3, 4]

    def test_row_view_rejects_scalar_shapes(self):
        with pytest.raises(ValueError):
            row_view(np.empty((3, 0), dtype=np.uint32))

    def test_rows_in(self):
        base = np.array([[0, 1], [2, 3], [4, 5]], dtype=np.uint32)
        probe = np.array([[2, 3], [9, 9], [0, 1], [4, 6]],
                         dtype=np.uint32)
        mask = rows_in(row_view(probe), row_view(base))
        assert list(mask) == [True, False, True, False]
        empty = np.empty((0, 2), dtype=np.uint32)
        assert list(rows_in(row_view(probe), row_view(empty))) \
            == [False] * 4

    def test_merge_sorted_disjoint_union(self):
        base = np.array([[0, 0], [2, 2], [5, 5]], dtype=np.uint32)
        base_ann = np.array([1.0, 2.0, 3.0])
        plus, plus_ann = sort_rows(
            np.array([[6, 0], [1, 1]], dtype=np.uint32),
            np.array([9.0, 8.0]))
        data, ann = merge_sorted(base, base_ann, plus, plus_ann)
        assert data.tolist() == [[0, 0], [1, 1], [2, 2], [5, 5], [6, 0]]
        assert ann.tolist() == [1.0, 8.0, 2.0, 3.0, 9.0]

    def test_subtract_sorted(self):
        base = np.array([[0, 0], [1, 1], [2, 2]], dtype=np.uint32)
        ann = np.array([1.0, 2.0, 3.0])
        minus = np.array([[1, 1], [9, 9]], dtype=np.uint32)
        data, remaining = subtract_sorted(base, ann, minus)
        assert data.tolist() == [[0, 0], [2, 2]]
        assert remaining.tolist() == [1.0, 3.0]


class TestDeltaStore:
    def entry(self, n):
        return np.arange(2 * n, dtype=np.uint32).reshape(n, 2)

    def test_pending_and_merge_threshold(self):
        store = DeltaStore(base_rows=100)
        store.record(1, "+", self.entry(20))
        assert store.pending == 20
        assert not store.should_merge()   # 20 <= 0.25 * 100
        store.record(2, "-", self.entry(6))
        assert store.pending == 26
        assert store.should_merge()

    def test_small_base_uses_floor(self):
        # base_rows=2 would merge on every single-row append without
        # the floor of 16.
        store = DeltaStore(base_rows=2)
        store.record(1, "+", self.entry(4))
        assert not store.should_merge()
        store.record(2, "+", self.entry(1))
        assert store.should_merge()

    def test_journal_limit_forces_merge(self):
        store = DeltaStore(base_rows=10**9)
        for version in range(JOURNAL_LIMIT + 1):
            store.record(version + 1, "+", self.entry(1))
        assert store.should_merge()

    def test_merge_trims_and_sets_floor(self):
        store = DeltaStore(base_rows=10)
        store.record(1, "+", self.entry(3))
        store.merge(base_rows=13, version=1)
        assert store.journal == [] and store.pending == 0
        assert store.merges == 1 and store.floor_version == 1
        # Consumers at version 0 predate the floor: full rebuild.
        assert store.changes_since(0) is None
        assert store.changes_since(1) == []

    def test_changes_since_filters_by_version(self):
        store = DeltaStore(base_rows=100)
        store.record(1, "+", self.entry(2))
        store.record(2, "-", self.entry(1))
        store.record(3, "+", self.entry(1))
        assert [e.version for e in store.changes_since(1)] == [2, 3]
        assert store.changes_since(3) == []

    def test_pure_inserts_since(self):
        store = DeltaStore(base_rows=100)
        store.record(1, "+", self.entry(2))
        assert [e.kind for e in store.pure_inserts_since(0)] == ["+"]
        store.record(2, "-", self.entry(1))
        assert store.pure_inserts_since(0) is None   # tombstone
        assert store.pure_inserts_since(2) == []      # after it: clean


class TestApplyAppend:
    def test_new_rows_keep_canonical_order_and_bump_version(self):
        r = rel([[2, 2], [0, 0]])
        r._canonicalize()
        assert r.apply_append([[1, 1], [3, 3]]) == 2
        assert r.version == 1
        assert r.data.tolist() == [[0, 0], [1, 1], [2, 2], [3, 3]]
        assert [e.kind for e in r.delta.journal] == ["+"]

    def test_reappend_existing_is_noop(self):
        r = rel([[0, 0], [1, 1]])
        assert r.apply_append([[1, 1]]) == 0
        assert r.version == 0 and r.delta is None

    def test_annotation_rewrite_journals_minus_plus_pair(self):
        r = rel([[0, 0], [1, 1]], annotations=[5.0, 7.0])
        assert r.apply_append([[1, 1]], annotations=[9.0]) == 1
        assert r.annotations.tolist() == [5.0, 9.0]
        kinds = [e.kind for e in r.delta.journal]
        assert kinds == ["-", "+"]
        assert r.delta.journal[0].annotations.tolist() == [7.0]
        assert r.delta.journal[1].annotations.tolist() == [9.0]
        # The rewrite poisons the insert-only precondition.
        assert r.delta.pure_inserts_since(0) is None

    def test_reappend_same_annotation_is_noop(self):
        r = rel([[0, 0]], annotations=[5.0])
        assert r.apply_append([[0, 0]], annotations=[5.0]) == 0
        assert r.version == 0

    def test_combine_sum_on_existing_row(self):
        r = rel([[0, 0]], annotations=[5.0])
        assert r.apply_append([[0, 0]], annotations=[2.0],
                              combine="sum") == 1
        assert r.annotations.tolist() == [7.0]

    def test_batch_duplicates_collapse_before_apply(self):
        r = rel([[5, 5]])
        assert r.apply_append([[1, 1], [1, 1], [0, 0]]) == 2
        assert r.data.tolist() == [[0, 0], [1, 1], [5, 5]]

    def test_missing_annotations_default_to_one(self):
        r = rel([[0, 0]], annotations=[3.0])
        r.apply_append([[1, 1]])
        assert r.annotations.tolist() == [3.0, 1.0]

    def test_schema_errors(self):
        scalar = Relation.scalar("S", 1.0)
        with pytest.raises(SchemaError):
            scalar.apply_append([[1]])
        plain = rel([[0, 0]])
        with pytest.raises(SchemaError):
            plain.apply_append([[1, 1]], annotations=[2.0])
        annotated = rel([[0, 0]], annotations=[1.0])
        with pytest.raises(SchemaError):
            annotated.apply_append([[1, 1], [2, 2]], annotations=[1.0])


class TestApplyDelete:
    def test_delete_removes_and_journals_tombstone(self):
        r = rel([[0, 0], [1, 1], [2, 2]], annotations=[1.0, 2.0, 3.0])
        assert r.apply_delete([[1, 1]]) == 1
        assert r.data.tolist() == [[0, 0], [2, 2]]
        assert r.annotations.tolist() == [1.0, 3.0]
        entry = r.delta.journal[-1]
        assert entry.kind == "-"
        assert entry.annotations.tolist() == [2.0]

    def test_delete_absent_is_noop(self):
        r = rel([[0, 0]])
        assert r.apply_delete([[9, 9]]) == 0
        assert r.version == 0 and r.delta is None

    def test_interleaved_history_matches_recompute(self):
        rng = np.random.default_rng(7)
        r = rel([[0, 0]])
        expected = {(0, 0)}
        for _ in range(60):
            batch = [tuple(int(v) for v in rng.integers(0, 6, size=2))
                     for _ in range(int(rng.integers(1, 4)))]
            if rng.random() < 0.6:
                r.apply_append(batch)
                expected.update(batch)
            else:
                r.apply_delete(batch)
                expected.difference_update(batch)
        assert {tuple(int(v) for v in row) for row in r.data} == expected
        # Canonical invariant held throughout: lexsorted, no dupes.
        assert r._canonical
        resorted, _ = sort_rows(r.data.copy())
        assert np.array_equal(r.data, resorted)
        keys = row_view(r.data)
        assert keys.size == np.unique(keys).size

    def test_patched_trie_adopts_untouched_subtrees(self):
        """The surgical patch: only subtrees under journal-touched
        level-0 keys rebuild; every other child node is the stale
        trie's object, verbatim."""
        r = rel([[c, c + 1] for c in range(20)])
        r._canonicalize()
        old = Trie(r, key_order=(0, 1))
        assert r.apply_append([[5, 99], [30, 0]]) == 2
        assert r.apply_delete([[7, 8]]) == 1
        entries = r.delta.changes_since(0)
        patched = patched_trie(old, r, (0, 1), old.optimizer, entries)
        assert set(patched.tuples()) == {
            tuple(int(v) for v in row) for row in r.data}
        # Key 3 was never journalled: its subtree is adopted.
        assert patched.root.child(3) is old.root.child(3)
        # Keys 5 (insert) and 30 (new) were rebuilt fresh.
        assert patched.root.child(5) is not old.root.child(5)
        assert patched.root.child(5).set.cardinality == 2
        assert patched.root.child(30).set.cardinality == 1
        # Key 7 was deleted outright: absent from the patched root.
        assert not patched.root.set.contains(7)

    def test_merge_threshold_trims_journal(self):
        r = rel([[c, c] for c in range(8)])
        r._canonicalize()
        # 5 new rows > 0.25 * max(8, 16) = 4 -> merge right after.
        assert r.apply_append([[10 + c, 0] for c in range(5)]) == 5
        assert r.delta.journal == []
        assert r.delta.merges == 1
        assert r.delta.floor_version == r.version
