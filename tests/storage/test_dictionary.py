"""Unit tests for dictionary encoding (paper §2.2)."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage import Dictionary, identity_dictionary


class TestEncoding:
    def test_assigns_dense_ids_in_order(self):
        d = Dictionary()
        assert [d.encode(v) for v in ["a", "b", "a", "c"]] == [0, 1, 0, 2]
        assert len(d) == 3

    def test_decode_round_trip(self):
        d = Dictionary()
        values = ["x", 42, ("tuple", 1)]
        ids = [d.encode(v) for v in values]
        assert [d.decode(i) for i in ids] == values

    def test_encode_many(self):
        d = Dictionary()
        out = d.encode_many(["a", "b", "a"])
        assert out.dtype == np.uint32
        assert out.tolist() == [0, 1, 0]

    def test_lookup_does_not_assign(self):
        d = Dictionary()
        d.encode("a")
        with pytest.raises(KeyError):
            d.lookup("b")
        assert len(d) == 1

    def test_contains(self):
        d = Dictionary()
        d.encode("a")
        assert "a" in d and "b" not in d

    def test_decode_out_of_range(self):
        d = Dictionary()
        d.encode("a")
        with pytest.raises(KeyError):
            d.decode(5)
        with pytest.raises(KeyError):
            d.decode(-1)

    def test_decode_many(self):
        d = Dictionary()
        for v in "abc":
            d.encode(v)
        assert d.decode_many([2, 0]) == ["c", "a"]


class TestRemap:
    def test_remap_permutes_ids(self):
        d = Dictionary()
        for v in "abc":
            d.encode(v)
        d.remap(np.array([2, 0, 1]))  # a->2, b->0, c->1
        assert d.decode(2) == "a"
        assert d.decode(0) == "b"
        assert d.lookup("c") == 1

    def test_remap_rejects_non_bijection(self):
        d = Dictionary()
        d.encode("a")
        d.encode("b")
        with pytest.raises(SchemaError):
            d.remap(np.array([0, 0]))
        with pytest.raises(SchemaError):
            d.remap(np.array([0]))

    def test_identity_dictionary(self):
        d = identity_dictionary(4)
        assert [d.decode(i) for i in range(4)] == [0, 1, 2, 3]
        assert d.encode(2) == 2
