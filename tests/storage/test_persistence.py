"""Tests for database save/load round trips."""

import numpy as np
import pytest

from repro import Database
from repro.storage.persistence import load_catalog, save_catalog


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "db.npz")


class TestRoundTrip:
    def test_graph_round_trip_preserves_queries(self, path):
        db = Database()
        db.load_graph("Edge", [("a", "b"), ("b", "c"), ("a", "c")],
                      prune=True)
        query = ("T(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); "
                 "w=<<COUNT(*)>>.")
        expected = db.query(query).scalar
        db.save(path)
        loaded = Database.load(path)
        assert loaded.query(query).scalar == expected

    def test_decoding_survives(self, path):
        db = Database()
        db.load_graph("Edge", [("x", "y"), ("y", "z")])
        db.save(path)
        loaded = Database.load(path)
        assert set(loaded.query("Q(a,b) :- Edge(a,b).").tuples()) == \
            set(db.query("Q(a,b) :- Edge(a,b).").tuples())

    def test_shared_dictionary_stays_shared(self, path):
        db = Database()
        db.load_graph("Edge", [(1, 2), (2, 3)])
        db.save(path)
        loaded = Database.load(path)
        dictionaries = loaded.relation("Edge").dictionaries
        assert dictionaries[0] is dictionaries[1]

    def test_annotations_and_scalars(self, path):
        db = Database()
        db.add_encoded("W", [[0, 1], [1, 2]], annotations=[2.5, 7.0])
        db.add_scalar("N", 42.0)
        db.save(path)
        loaded = Database.load(path)
        assert loaded.relation("W").annotations.tolist() == [2.5, 7.0]
        assert loaded.relation("N").scalar_value == 42.0
        # scalar must be usable in expressions again
        result = loaded.query("Q(x;v:float) :- W(x,y); v=N.")
        assert set(result.annotations.tolist()) == {42.0}

    def test_intensional_relations_included(self, path):
        db = Database()
        db.load_graph("Edge", [(0, 1), (1, 2)])
        db.query("Hop(x,y) :- Edge(x,z),Edge(z,y).")
        db.save(path)
        loaded = Database.load(path)
        assert loaded.relation("Hop").cardinality == \
            db.relation("Hop").cardinality

    def test_load_applies_config_kwargs(self, path):
        db = Database()
        db.load_graph("Edge", [(0, 1)])
        db.save(path)
        loaded = Database.load(path, layout_level="uint_only")
        assert loaded.config.layout_level == "uint_only"

    def test_version_checked(self, path, tmp_path):
        import json
        db = Database()
        db.load_graph("Edge", [(0, 1)])
        db.save(path)
        # Corrupt the manifest version.
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        manifest = json.loads(str(arrays["manifest"]))
        manifest["version"] = 999
        arrays["manifest"] = np.asarray(json.dumps(manifest))
        np.savez(path, **arrays)
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            Database.load(path)

    def test_raw_catalog_functions(self, path):
        db = Database()
        db.load_graph("Edge", [(0, 1)])
        save_catalog(path, db.catalog)
        catalog = load_catalog(path)
        assert set(catalog) == {"Edge"}
