"""Property-based tests: trie enumeration is exactly the tuple set."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.storage import Relation, Trie

rows_strategy = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    max_size=60)

rows3_strategy = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)),
    max_size=40)


@given(rows=rows_strategy)
@settings(max_examples=60, deadline=None)
def test_trie_enumerates_exactly_the_distinct_tuples(rows):
    data = np.asarray(rows, dtype=np.uint32).reshape(-1, 2)
    trie = Trie(Relation("R", data))
    assert list(trie.tuples()) == sorted(set(map(tuple, rows)))
    assert trie.cardinality == len(set(map(tuple, rows)))


@given(rows=rows3_strategy, order=st.permutations([0, 1, 2]))
@settings(max_examples=60, deadline=None)
def test_any_key_order_preserves_tuple_set(rows, order):
    data = np.asarray(rows, dtype=np.uint32).reshape(-1, 3)
    trie = Trie(Relation("R", data), key_order=tuple(order))
    # The trie stores columns permuted; invert to recover originals.
    recovered = set()
    for stored in trie.tuples():
        original = [0, 0, 0]
        for position, column in enumerate(order):
            original[column] = stored[position]
        recovered.add(tuple(original))
    assert recovered == set(map(tuple, rows))


@given(rows=rows_strategy, probes=st.lists(
    st.tuples(st.integers(0, 31), st.integers(0, 31)), max_size=20))
@settings(max_examples=60, deadline=None)
def test_contains_matches_membership(rows, probes):
    data = np.asarray(rows, dtype=np.uint32).reshape(-1, 2)
    trie = Trie(Relation("R", data))
    members = set(map(tuple, rows))
    for probe in probes:
        assert trie.contains(probe) == (probe in members)


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_annotations_follow_last_write(rows):
    if not rows:
        return
    data = np.asarray(rows, dtype=np.uint32).reshape(-1, 2)
    annotations = np.arange(len(rows), dtype=np.float64)
    trie = Trie(Relation("R", data, annotations))
    expected = {}
    for index, row in enumerate(rows):
        expected[tuple(row)] = float(index)
    assert dict(trie.annotated_tuples()) == expected
