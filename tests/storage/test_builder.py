"""Tests for TrieBuilder — the paper's Table 2 append operation."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.sets import UintSet
from repro.storage.builder import TrieBuilder


class TestAppend:
    def test_basic_build(self):
        builder = TrieBuilder("Q", 2)
        builder.append((1,), [4, 5])
        builder.append((2,), [6])
        trie = builder.build()
        assert list(trie.tuples()) == [(1, 4), (1, 5), (2, 6)]

    def test_accepts_set_layouts(self):
        builder = TrieBuilder("Q", 2)
        builder.append((0,), UintSet([9, 3]))
        assert list(builder.build().tuples()) == [(0, 3), (0, 9)]

    def test_empty_append_is_noop(self):
        builder = TrieBuilder("Q", 2)
        builder.append((0,), [])
        assert builder.cardinality == 0
        assert builder.build().cardinality == 0

    def test_duplicate_appends_deduplicate(self):
        builder = TrieBuilder("Q", 2)
        builder.append((1,), [2])
        builder.append((1,), [2, 3])
        assert builder.build().cardinality == 2

    def test_arity_enforced(self):
        builder = TrieBuilder("Q", 3)
        with pytest.raises(SchemaError):
            builder.append((1,), [2])
        with pytest.raises(SchemaError):
            TrieBuilder("Q", 0)

    def test_unary(self):
        builder = TrieBuilder("Q", 1)
        builder.append((), [5, 1])
        assert list(builder.build().tuples()) == [(1,), (5,)]

    def test_append_tuple(self):
        builder = TrieBuilder("Q", 3)
        builder.append_tuple((1, 2, 3))
        builder.append_tuple((1, 2, 4), annotation=7.0)
        relation = builder.to_relation()
        assert relation.cardinality == 2
        assert relation.annotations is not None

    def test_annotations_aligned(self):
        builder = TrieBuilder("Q", 2)
        builder.append((0,), [1, 2], annotations=[0.5, 1.5])
        trie = builder.build()
        assert dict(trie.annotated_tuples()) == {(0, 1): 0.5,
                                                 (0, 2): 1.5}
        with pytest.raises(SchemaError):
            builder.append((0,), [1, 2], annotations=[0.5])

    def test_mixed_annotation_defaults_to_one(self):
        builder = TrieBuilder("Q", 2)
        builder.append((0,), [1], annotations=[2.0])
        builder.append((1,), [2])  # unannotated chunk
        relation = builder.to_relation().deduplicated()
        assert dict(zip(map(tuple, relation.data.tolist()),
                        relation.annotations)) == {(0, 1): 2.0,
                                                   (1, 2): 1.0}

    def test_example_3_2_loop_materializes_triangles(self):
        """Drive the builder exactly like the paper's generated code:
        for each (x, y), append the z-intersection."""
        from repro.sets import intersect
        from repro.storage import Relation, Trie

        edges = np.array([[0, 1], [0, 2], [1, 2]], dtype=np.uint32)
        trie = Trie(Relation("E", edges))
        builder = TrieBuilder("Tri", 3)
        roots = trie.root.set
        for x in roots:
            node_x = trie.root.child(x)
            candidates_y = intersect(node_x.set, roots)
            for y in candidates_y:
                node_y = trie.root.child(y)
                builder.append((x, y), intersect(node_x.set, node_y.set))
        assert list(builder.build().tuples()) == [(0, 1, 2)]
