"""Property tests: the engine vs a brute-force conjunctive evaluator.

Random small relations, random conjunctive patterns (cyclic and
acyclic), all four aggregate modes — the engine's GHD/WCOJ pipeline must
match the exponential reference evaluator exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from tests.reference import evaluate_conjunctive

#: Candidate query shapes: (atom variable tuples, head variables).
PATTERNS = [
    ((("x", "y"), ("y", "z")), ("x", "z")),                    # path
    ((("x", "y"), ("y", "z"), ("x", "z")), ("x", "y", "z")),   # triangle
    ((("x", "y"), ("y", "z"), ("x", "z")), ("x",)),            # projection
    ((("x", "y"), ("y", "x")), ("x", "y")),                    # 2-cycle
    ((("x", "y"), ("z", "y")), ("x", "z")),                    # wedge-in
    ((("x", "x"),), ("x",)),                                   # self loop
    ((("x", "y"), ("y", "z"), ("z", "w")), ("x", "w")),        # 3-path
]

relation_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    min_size=0, max_size=25)


def load(db, rows):
    data = np.asarray(rows, dtype=np.uint32).reshape(-1, 2)
    db.add_encoded("E", data)
    return [tuple(int(v) for v in row) for row in
            db.relation("E").deduplicated().data]


def query_text(atom_vars, head_vars, aggregate=None):
    body = ",".join("E(%s)" % ",".join(vars_) for vars_ in atom_vars)
    if aggregate is None:
        return "Q(%s) :- %s." % (",".join(head_vars), body)
    if head_vars:
        return "Q(%s;w:float) :- %s; w=<<%s>>." % (
            ",".join(head_vars), body, aggregate)
    return "Q(;w:float) :- %s; w=<<%s>>." % (body, aggregate)


@given(rows=relation_strategy, pattern=st.sampled_from(PATTERNS))
@settings(max_examples=120, deadline=None)
def test_set_semantics_matches_reference(rows, pattern):
    atom_vars, head_vars = pattern
    db = Database()
    tuples = load(db, rows)
    got = set(db.query(query_text(atom_vars, head_vars)).tuples()) \
        if tuples else set()
    expected = evaluate_conjunctive(
        [tuples] * len(atom_vars), list(atom_vars), list(head_vars))
    assert got == expected


@given(rows=relation_strategy, pattern=st.sampled_from(PATTERNS))
@settings(max_examples=80, deadline=None)
def test_count_star_matches_reference(rows, pattern):
    atom_vars, head_vars = pattern
    db = Database()
    tuples = load(db, rows)
    if not tuples:
        return
    got = db.query(query_text(atom_vars, (), "COUNT(*)")).scalar
    expected = evaluate_conjunctive(
        [tuples] * len(atom_vars), list(atom_vars), [],
        aggregate="COUNT*")
    assert got == expected.get((), 0.0)


@given(rows=relation_strategy, pattern=st.sampled_from(PATTERNS[:5]),
       op=st.sampled_from(["SUM", "MIN", "MAX"]))
@settings(max_examples=80, deadline=None)
def test_annotated_aggregates_match_reference(rows, pattern, op):
    atom_vars, head_vars = pattern
    if not rows:
        return
    db = Database()
    data = np.asarray(rows, dtype=np.uint32).reshape(-1, 2)
    # Annotation = src*8 + dst + 1, deterministic and positive.
    db.add_encoded("W", data,
                   annotations=(data[:, 0] * 8 + data[:, 1]
                                + 1).astype(np.float64))
    relation = db.relation("W").deduplicated()
    tuples = [tuple(int(v) for v in row) for row in relation.data]
    table = {t: float(a) for t, a in zip(tuples, relation.annotations)}
    body = ",".join("W(%s)" % ",".join(vars_) for vars_ in atom_vars)
    # The aggregate's argument is informational for SUM/MIN/MAX; pick a
    # non-head variable when one exists, else any variable.
    non_head = [v for vs in atom_vars for v in vs if v not in head_vars]
    arg = non_head[0] if non_head else atom_vars[0][0]
    if head_vars:
        text = "Q(%s;w:float) :- %s; w=<<%s(%s)>>." % (
            ",".join(head_vars), body, op, arg)
    else:
        text = "Q(;w:float) :- %s; w=<<%s(%s)>>." % (body, op, arg)
    expected = evaluate_conjunctive(
        [tuples] * len(atom_vars), list(atom_vars), list(head_vars),
        aggregate=op, annotations=[table] * len(atom_vars))
    result = db.query(text)
    if not expected:
        if head_vars:
            assert result.count == 0
        return
    if head_vars:
        got = result.to_dict()
        got = {k if isinstance(k, tuple) else (k,): v
               for k, v in got.items()}
        assert set(got) == set(expected)
        for key, value in expected.items():
            assert got[key] == pytest.approx(value)
    else:
        assert result.scalar == pytest.approx(expected[()])
