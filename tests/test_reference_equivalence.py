"""Property tests: the engine vs a brute-force conjunctive evaluator.

Random small relations, random conjunctive patterns (cyclic and
acyclic), all four aggregate modes — the engine's GHD/WCOJ pipeline must
match the exponential reference evaluator exactly.  The hypothesis
suite runs on the default configuration; the seeded suite at the bottom
re-checks every pattern across execution mode × parallel strategy ×
optimizer toggles, so the reference oracle constrains every execution
path, not just the default one.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from tests.reference import evaluate_conjunctive, evaluate_program

#: Candidate query shapes: (atom variable tuples, head variables).
PATTERNS = [
    ((("x", "y"), ("y", "z")), ("x", "z")),                    # path
    ((("x", "y"), ("y", "z"), ("x", "z")), ("x", "y", "z")),   # triangle
    ((("x", "y"), ("y", "z"), ("x", "z")), ("x",)),            # projection
    ((("x", "y"), ("y", "x")), ("x", "y")),                    # 2-cycle
    ((("x", "y"), ("z", "y")), ("x", "z")),                    # wedge-in
    ((("x", "x"),), ("x",)),                                   # self loop
    ((("x", "y"), ("y", "z"), ("z", "w")), ("x", "w")),        # 3-path
]

relation_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    min_size=0, max_size=25)


def load(db, rows):
    data = np.asarray(rows, dtype=np.uint32).reshape(-1, 2)
    db.add_encoded("E", data)
    return [tuple(int(v) for v in row) for row in
            db.relation("E").deduplicated().data]


def query_text(atom_vars, head_vars, aggregate=None):
    body = ",".join("E(%s)" % ",".join(vars_) for vars_ in atom_vars)
    if aggregate is None:
        return "Q(%s) :- %s." % (",".join(head_vars), body)
    if head_vars:
        return "Q(%s;w:float) :- %s; w=<<%s>>." % (
            ",".join(head_vars), body, aggregate)
    return "Q(;w:float) :- %s; w=<<%s>>." % (body, aggregate)


@given(rows=relation_strategy, pattern=st.sampled_from(PATTERNS))
@settings(max_examples=120, deadline=None)
def test_set_semantics_matches_reference(rows, pattern):
    atom_vars, head_vars = pattern
    db = Database()
    tuples = load(db, rows)
    got = set(db.query(query_text(atom_vars, head_vars)).tuples()) \
        if tuples else set()
    expected = evaluate_conjunctive(
        [tuples] * len(atom_vars), list(atom_vars), list(head_vars))
    assert got == expected


@given(rows=relation_strategy, pattern=st.sampled_from(PATTERNS))
@settings(max_examples=80, deadline=None)
def test_count_star_matches_reference(rows, pattern):
    atom_vars, head_vars = pattern
    db = Database()
    tuples = load(db, rows)
    if not tuples:
        return
    got = db.query(query_text(atom_vars, (), "COUNT(*)")).scalar
    expected = evaluate_conjunctive(
        [tuples] * len(atom_vars), list(atom_vars), [],
        aggregate="COUNT*")
    assert got == expected.get((), 0.0)


@given(rows=relation_strategy, pattern=st.sampled_from(PATTERNS[:5]),
       op=st.sampled_from(["SUM", "MIN", "MAX"]))
@settings(max_examples=80, deadline=None)
def test_annotated_aggregates_match_reference(rows, pattern, op):
    atom_vars, head_vars = pattern
    if not rows:
        return
    db = Database()
    data = np.asarray(rows, dtype=np.uint32).reshape(-1, 2)
    # Annotation = src*8 + dst + 1, deterministic and positive.
    db.add_encoded("W", data,
                   annotations=(data[:, 0] * 8 + data[:, 1]
                                + 1).astype(np.float64))
    relation = db.relation("W").deduplicated()
    tuples = [tuple(int(v) for v in row) for row in relation.data]
    table = {t: float(a) for t, a in zip(tuples, relation.annotations)}
    body = ",".join("W(%s)" % ",".join(vars_) for vars_ in atom_vars)
    # The aggregate's argument is informational for SUM/MIN/MAX; pick a
    # non-head variable when one exists, else any variable.
    non_head = [v for vs in atom_vars for v in vs if v not in head_vars]
    arg = non_head[0] if non_head else atom_vars[0][0]
    if head_vars:
        text = "Q(%s;w:float) :- %s; w=<<%s(%s)>>." % (
            ",".join(head_vars), body, op, arg)
    else:
        text = "Q(;w:float) :- %s; w=<<%s(%s)>>." % (body, op, arg)
    expected = evaluate_conjunctive(
        [tuples] * len(atom_vars), list(atom_vars), list(head_vars),
        aggregate=op, annotations=[table] * len(atom_vars))
    result = db.query(text)
    if not expected:
        if head_vars:
            assert result.count == 0
        return
    if head_vars:
        got = result.to_dict()
        got = {k if isinstance(k, tuple) else (k,): v
               for k, v in got.items()}
        assert set(got) == set(expected)
        for key, value in expected.items():
            assert got[key] == pytest.approx(value)
    else:
        assert result.scalar == pytest.approx(expected[()])


# -- cross-configuration equivalence ------------------------------------------
#
# Deterministic seeded datasets (hypothesis shrinking adds nothing when
# the failing artifact is a config label) run every pattern under every
# execution path the engine exposes.

ENGINE_CONFIGS = {
    "compiled": dict(execution_mode="compiled"),
    "steal": dict(parallel_workers=4, parallel_threshold=0,
                  parallel_strategy="steal"),
    "static": dict(parallel_workers=4, parallel_threshold=0,
                   parallel_strategy="static"),
    "compiled-steal": dict(execution_mode="compiled", parallel_workers=4,
                           parallel_threshold=0,
                           parallel_strategy="steal"),
    "no-optimizer": dict(prune_attributes=False, fold_constants=False,
                         cross_rule_cse=False,
                         eliminate_redundant_bags=False,
                         push_selections=False, skip_top_down=False),
    "no-ghd": dict(use_ghd=False),
}


def seeded_edges(seed, n=24, domain=7):
    rng = random.Random(seed)
    return sorted({(rng.randrange(domain), rng.randrange(domain))
                   for _ in range(n)})


@pytest.mark.parametrize("config", sorted(ENGINE_CONFIGS),
                         ids=sorted(ENGINE_CONFIGS))
@pytest.mark.parametrize("pattern", PATTERNS,
                         ids=lambda p: ",".join("".join(v) for v in p[0]))
def test_set_semantics_across_configs(config, pattern):
    atom_vars, head_vars = pattern
    for seed in (0, 1):
        rows = seeded_edges(seed)
        db = Database(**ENGINE_CONFIGS[config])
        tuples = load(db, rows)
        got = set(db.query(query_text(atom_vars, head_vars)).tuples())
        expected = evaluate_conjunctive(
            [tuples] * len(atom_vars), list(atom_vars), list(head_vars))
        assert got == expected


@pytest.mark.parametrize("config", sorted(ENGINE_CONFIGS),
                         ids=sorted(ENGINE_CONFIGS))
@pytest.mark.parametrize("op", ["COUNT(*)", "SUM", "MIN", "MAX"])
def test_aggregates_across_configs(config, op):
    atom_vars, head_vars = PATTERNS[1]  # triangle
    rows = seeded_edges(2, n=30)
    db = Database(**ENGINE_CONFIGS[config])
    data = np.asarray(rows, dtype=np.uint32).reshape(-1, 2)
    db.add_encoded("W", data,
                   annotations=(data[:, 0] * 8 + data[:, 1]
                                + 1).astype(np.float64))
    relation = db.relation("W").deduplicated()
    tuples = [tuple(int(v) for v in row) for row in relation.data]
    table = {t: float(a) for t, a in zip(tuples, relation.annotations)}
    body = ",".join("W(%s)" % ",".join(vars_) for vars_ in atom_vars)
    if op == "COUNT(*)":
        # Provenance semantics: COUNT(*) folds annotation products
        # exactly like SUM (it only counts when annotations are 1).
        text = "Q(x;w:float) :- %s; w=<<COUNT(*)>>." % body
        expected = evaluate_conjunctive(
            [tuples] * len(atom_vars), list(atom_vars), ["x"],
            aggregate="COUNT*", annotations=[table] * len(atom_vars))
    else:
        text = "Q(x;w:float) :- %s; w=<<%s(z)>>." % (body, op)
        expected = evaluate_conjunctive(
            [tuples] * len(atom_vars), list(atom_vars), ["x"],
            aggregate=op, annotations=[table] * len(atom_vars))
    result = db.query(text)
    got = {(k if isinstance(k, tuple) else (k,)): v
           for k, v in result.to_dict().items()} if result.count else {}
    assert set(got) == set(expected)
    for key, value in expected.items():
        assert got[key] == pytest.approx(value)


@pytest.mark.parametrize("config", sorted(ENGINE_CONFIGS),
                         ids=sorted(ENGINE_CONFIGS))
def test_recursive_program_across_configs(config):
    """Union-fixpoint transitive closure vs the reference fixpoint."""
    from repro.query.parser import parse
    edges = seeded_edges(5, n=12, domain=6)
    program = ("Path(x,y) :- Edge(x,y).\n"
               "Path(x,y)* :- Edge(x,z),Path(z,y).")
    db = Database(**ENGINE_CONFIGS[config])
    db.add_relation("Edge", edges, arity=2)
    got = set(db.query(program).tuples())
    expected = evaluate_program({"Edge": (edges, None)},
                                list(parse(program).rules))
    kind, value = expected["Path"]
    assert kind == "set"
    assert got == set(value)
