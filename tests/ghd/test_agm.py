"""Unit and property tests for AGM bounds (paper §2.1, Example 2.1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ghd import (agm_bound, cover_bound_value, fractional_cover,
                       is_feasible_cover, rho_star)

TRIANGLE = [{"x", "y"}, {"y", "z"}, {"x", "z"}]


class TestFractionalCover:
    def test_triangle_rho_star_is_three_halves(self):
        value, weights = fractional_cover(["x", "y", "z"], TRIANGLE)
        assert value == pytest.approx(1.5)
        assert weights == pytest.approx([0.5, 0.5, 0.5])

    def test_single_edge(self):
        value, weights = fractional_cover(["x", "y"], [{"x", "y"}])
        assert value == pytest.approx(1.0)

    def test_uncoverable_vertex_is_infinite(self):
        value, _ = fractional_cover(["x", "q"], [{"x", "y"}])
        assert value == math.inf

    def test_no_vertices_costs_nothing(self):
        value, weights = fractional_cover([], TRIANGLE)
        assert value == 0.0

    def test_four_clique_rho_star_is_two(self):
        edges = [{"x", "y"}, {"y", "z"}, {"x", "z"}, {"x", "w"},
                 {"y", "w"}, {"z", "w"}]
        assert rho_star(["x", "y", "z", "w"], edges) == pytest.approx(2.0)

    def test_path_query_integral_cover(self):
        edges = [{"a", "b"}, {"b", "c"}, {"c", "d"}]
        assert rho_star(["a", "b", "c", "d"], edges) == pytest.approx(2.0)


class TestAGMBound:
    def test_triangle_example_2_1(self):
        """The paper's Example 2.1: N tuples per relation → N^{3/2}."""
        n = 100
        assert agm_bound(TRIANGLE, [n, n, n]) == pytest.approx(n ** 1.5,
                                                               rel=1e-6)

    def test_zero_relation_zero_bound(self):
        assert agm_bound(TRIANGLE, [0, 10, 10]) == 0.0

    def test_asymmetric_sizes(self):
        # With one huge relation the LP shifts weight to the small ones.
        balanced = agm_bound(TRIANGLE, [100, 100, 100])
        lopsided = agm_bound(TRIANGLE, [100, 100, 10 ** 9])
        assert lopsided == pytest.approx(100 * 100)  # weight on small edges
        assert lopsided >= balanced / 2

    def test_bound_is_tight_on_complete_graph(self):
        """Example 2.1's tightness: K_k has Θ(N^{3/2}) triangles."""
        from repro.graphs import complete_graph, undirect
        k = 12
        edges = undirect(complete_graph(k))
        n = edges.shape[0]
        output = k * (k - 1) * (k - 2)  # ordered triangles
        bound = agm_bound(TRIANGLE, [n, n, n])
        assert output <= bound
        assert output >= bound / 8  # tight within a small constant


class TestFeasibility:
    def test_half_cover_feasible_for_triangle(self):
        assert is_feasible_cover(TRIANGLE, [0.5, 0.5, 0.5])

    def test_example_2_1_integral_cover(self):
        assert is_feasible_cover(TRIANGLE, [1.0, 0.0, 1.0])

    def test_insufficient_cover_rejected(self):
        assert not is_feasible_cover(TRIANGLE, [0.5, 0.5, 0.0])

    def test_negative_weights_rejected(self):
        assert not is_feasible_cover(TRIANGLE, [2.0, 2.0, -0.1])

    def test_cover_bound_value(self):
        assert cover_bound_value([100, 100, 100], [0.5, 0.5, 0.5]) == \
            pytest.approx(1000.0)


@given(n_nodes=st.integers(4, 18), n_edges=st.integers(3, 60),
       seed=st.integers(0, 10))
@settings(max_examples=30, deadline=None)
def test_agm_inequality_holds_on_random_graphs(n_nodes, n_edges, seed):
    """Equation 1 of the paper: |OUT| ≤ ∏ |R_e|^{x_e} for the optimal
    cover, measured against the true triangle-join output."""
    from tests.conftest import random_undirected_edges
    from repro.graphs import undirect

    edges = random_undirected_edges(n_nodes, n_edges, seed=seed)
    if not edges:
        return
    both = undirect(np.asarray(edges))
    m = both.shape[0]
    # Count ordered triangle-join output tuples.
    adjacency = {}
    for u, v in both.tolist():
        adjacency.setdefault(u, set()).add(v)
    out = sum(1 for u in adjacency for v in adjacency[u]
              for w in adjacency.get(v, ())
              if w in adjacency.get(u, set()))
    assert out <= agm_bound(TRIANGLE, [m, m, m]) + 1e-6
