"""Unit tests for GHD structure and Definition 1 validation."""

import pytest

from repro.ghd import GHD, GHDNode, single_node_ghd
from repro.query import Hypergraph, parse_rule

TRIANGLE = parse_rule("T(x,y,z) :- R(x,y),S(y,z),T(x,z).")
BARBELL = parse_rule(
    "B(x,y,z,u,v,w) :- R(x,y),S(y,z),T(x,z),M(x,u),A(u,v),B(v,w),C(u,w).")


def barbell_figure3c():
    """Hand-build the paper's Figure 3c decomposition."""
    hg = Hypergraph(BARBELL.body)
    edges = {e.relation: e for e in hg.edges}
    left = GHDNode(("x", "y", "z"), [edges["R"], edges["S"], edges["T"]])
    right = GHDNode(("u", "v", "w"), [edges["A"], edges["B"], edges["C"]])
    root = GHDNode(("x", "u"), [edges["M"]], [left, right])
    return GHD(root, hg), hg, edges


class TestValidation:
    def test_single_node_always_valid(self):
        hg = Hypergraph(TRIANGLE.body)
        assert single_node_ghd(hg).is_valid()

    def test_figure3c_is_valid(self):
        ghd, _, _ = barbell_figure3c()
        assert ghd.validate() == []

    def test_property1_uncovered_edge_detected(self):
        hg = Hypergraph(TRIANGLE.body)
        root = GHDNode(("x", "y"), [hg.edges[0]])  # S and T missing
        problems = GHD(root, hg).validate()
        assert any("not covered" in p for p in problems)

    def test_property2_running_intersection_violation_detected(self):
        hg = Hypergraph(BARBELL.body)
        edges = {e.relation: e for e in hg.edges}
        # x appears in two bags separated by a bag without x.
        bottom = GHDNode(("x", "y"), [edges["R"]])
        middle = GHDNode(("u", "v"), [edges["A"]], [bottom])
        top = GHDNode(
            ("x", "z", "y", "u", "v", "w"),
            [edges["S"], edges["T"], edges["M"], edges["B"], edges["C"]],
            [middle])
        problems = GHD(top, hg).validate()
        assert any("running intersection" in p for p in problems)

    def test_property3_unprovided_attribute_detected(self):
        hg = Hypergraph(TRIANGLE.body)
        root = GHDNode(("x", "y", "z", "q"), list(hg.edges))
        problems = GHD(root, hg).validate()
        assert any("not provided" in p for p in problems)


class TestMetrics:
    def test_width_figure3c(self):
        ghd, _, _ = barbell_figure3c()
        assert ghd.width() == pytest.approx(1.5)

    def test_width_single_node_barbell_is_three(self):
        hg = Hypergraph(BARBELL.body)
        assert single_node_ghd(hg).width() == pytest.approx(3.0)

    def test_traversals(self):
        ghd, _, _ = barbell_figure3c()
        preorder = ghd.nodes_preorder()
        assert preorder[0] is ghd.root
        assert len(preorder) == 3
        bottom_up = ghd.nodes_bottom_up()
        assert bottom_up[-1] is ghd.root

    def test_parent_map(self):
        ghd, _, _ = barbell_figure3c()
        parents = ghd.parent_map()
        assert parents[ghd.root] is None
        for child in ghd.root.children:
            assert parents[child] is ghd.root

    def test_depth_of(self):
        ghd, _, edges = barbell_figure3c()
        depth = ghd.depth_of(
            lambda node: any(e.relation == "A" for e in node.edges))
        assert depth == 1
        assert ghd.depth_of(lambda node: False) == -1

    def test_describe_renders_tree(self):
        ghd, _, _ = barbell_figure3c()
        text = str(ghd)
        assert "chi=(x,u)" in text
        assert text.count("width") == 3
