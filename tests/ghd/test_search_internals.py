"""Tests of GHDSearch internals: memoization, costing, scoring."""

import pytest

from repro.ghd.decompose import GHDSearch, decompose
from repro.query import Hypergraph, parse_rule


def hypergraph_of(text):
    return Hypergraph(parse_rule(text).body)


BARBELL = hypergraph_of(
    "B(x,y,z,u,v,w) :- R(x,y),S(y,z),T(x,z),M(x,u),A(u,v),B(v,w),C(u,w).")


class TestMemoization:
    def test_subproblems_are_cached(self):
        search = GHDSearch(BARBELL)
        search.best()
        assert len(search._memo) > 2  # components were memoized

    def test_repeated_best_is_stable(self):
        search = GHDSearch(BARBELL)
        first = search.best()
        second = search.best()
        assert str(first) == str(second)


class TestCosting:
    def test_sizes_influence_plan_choice(self):
        """With a tiny bridge relation, the bridge-at-root plan's cost
        estimate must beat alternatives that put triangles at the root."""
        sizes_small_bridge = {3: 10}  # M(x,u) tiny
        plan = decompose(BARBELL, sizes=sizes_small_bridge)
        assert any(e.relation == "M" for e in plan.root.edges)

    def test_infinite_cost_paths_avoided(self):
        hg = hypergraph_of("Q(a,b) :- R(a,b).")
        plan = decompose(hg)
        assert plan.is_valid()
        assert plan.n_nodes == 1

    def test_bag_width_ignores_selected_vars(self):
        search = GHDSearch(BARBELL, selected_vars={"x", "u"})
        width = search._bag_width(("x", "u"), [BARBELL.edges[3]])
        assert width == 0.0  # nothing left to cover

    def test_bag_cost_uses_sizes(self):
        small = GHDSearch(BARBELL, sizes={0: 4, 1: 4, 2: 4})
        big = GHDSearch(BARBELL, sizes={0: 4000, 1: 4000, 2: 4000})
        edges = BARBELL.edges[:3]
        chi = ("x", "y", "z")
        assert small._bag_cost(chi, edges) < big._bag_cost(chi, edges)


class TestScoring:
    def test_single_edge_queries_trivial(self):
        hg = hypergraph_of("Q(a,b) :- R(a,b).")
        assert decompose(hg).n_nodes == 1

    def test_path_query_decomposes_acyclically(self):
        hg = hypergraph_of("Q(a,b,c,d) :- R(a,b),S(b,c),T(c,d).")
        plan = decompose(hg)
        assert plan.is_valid()
        assert plan.width() == pytest.approx(1.0)
        assert plan.n_nodes >= 2  # no reason to merge bags of width 1

    def test_cycle_requires_width_above_one(self):
        """The 4-cycle's fractional hypertree width is 1.5."""
        hg = hypergraph_of("Q(a,b,c,d) :- R(a,b),S(b,c),T(c,d),U(d,a).")
        plan = decompose(hg)
        assert plan.is_valid()
        assert plan.width() >= 1.49
