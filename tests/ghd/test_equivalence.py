"""Unit tests for redundant-bag detection (paper Appendix B.2)."""

from repro.ghd import bag_signature, can_skip_top_down, decompose
from repro.ghd.equivalence import canonical_attr_indexes
from repro.query import Hypergraph, parse_rule

#: Barbell written over a single Edge relation — the benchmark form where
#: both triangle bags are structurally identical.
EDGE_BARBELL = Hypergraph(parse_rule(
    "B(x,y,z,u,v,w) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,u),"
    "Edge(u,v),Edge(v,w),Edge(u,w).").body)


class TestSignatures:
    def test_isomorphic_triangle_bags_share_signature(self):
        ghd = decompose(EDGE_BARBELL)
        assert ghd.n_nodes == 3
        left, right = ghd.root.children
        sig_left = bag_signature(left, left.chi[:1], [])
        sig_right = bag_signature(right, right.chi[:1], [])
        assert sig_left == sig_right

    def test_different_out_attrs_change_signature(self):
        ghd = decompose(EDGE_BARBELL)
        left = ghd.root.children[0]
        full = bag_signature(left, left.chi, [])
        projected = bag_signature(left, left.chi[:1], [])
        assert full != projected

    def test_different_relations_change_signature(self):
        hg = Hypergraph(parse_rule(
            "Q(x,y,u,v) :- R(x,y),S(u,v).").body)
        ghd = decompose(hg)
        nodes = ghd.nodes_preorder()
        sigs = {bag_signature(n, n.chi, []) for n in nodes}
        assert len(sigs) == len(nodes)

    def test_child_signatures_matter(self):
        ghd = decompose(EDGE_BARBELL)
        left = ghd.root.children[0]
        bare = bag_signature(left, left.chi[:1], [])
        with_child = bag_signature(left, left.chi[:1], [("child",)])
        assert bare != with_child

    def test_aggregation_sig_matters(self):
        ghd = decompose(EDGE_BARBELL)
        left = ghd.root.children[0]
        count = bag_signature(left, left.chi[:1], [],
                              aggregation_sig=("COUNT", True))
        minimum = bag_signature(left, left.chi[:1], [],
                                aggregation_sig=("MIN", True))
        assert count != minimum


class TestCanonicalIndexes:
    def test_isomorphic_bags_align_positionally(self):
        ghd = decompose(EDGE_BARBELL)
        left, right = ghd.root.children
        left_out = [a for a in left.chi]
        right_out = [a for a in right.chi]
        assert canonical_attr_indexes(left.edges, left_out) == \
            canonical_attr_indexes(right.edges, right_out)


class TestTopDownElision:
    def test_skippable_when_root_covers_head(self):
        ghd = decompose(EDGE_BARBELL)
        assert can_skip_top_down(ghd, ("x", "u"), ("x", "u"))
        assert can_skip_top_down(ghd, (), ("x", "u"))

    def test_not_skippable_otherwise(self):
        ghd = decompose(EDGE_BARBELL)
        assert not can_skip_top_down(ghd, ("x", "y"), ("x", "u"))
