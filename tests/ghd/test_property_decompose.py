"""Property tests: GHD search on random conjunctive queries.

Invariants (DESIGN.md): every chosen decomposition satisfies
Definition 1; its width never exceeds the single-node GHD's width; the
attribute order covers every variable exactly once.
"""

from hypothesis import given, settings, strategies as st

from repro.ghd import decompose, global_attribute_order, single_node_ghd
from repro.query import Atom, Hypergraph, Variable

VARIABLES = ["a", "b", "c", "d", "e"]


def atoms_from_spec(spec):
    """Build binary/ternary atoms from index pairs/triples."""
    atoms = []
    for index, positions in enumerate(spec):
        names = tuple(VARIABLES[p] for p in positions)
        atoms.append(Atom("R%d" % index,
                          tuple(Variable(n) for n in names)))
    return atoms


edge_strategy = st.lists(
    st.one_of(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        st.tuples(st.integers(0, 4), st.integers(0, 4),
                  st.integers(0, 4)),
    ),
    min_size=1, max_size=5)


def distinct_positions(spec):
    out = []
    for positions in spec:
        seen = list(dict.fromkeys(positions))
        if len(seen) >= 1:
            out.append(tuple(seen))
    return out


@given(spec=edge_strategy)
@settings(max_examples=120, deadline=None)
def test_chosen_ghd_is_valid_and_no_wider_than_single_node(spec):
    spec = distinct_positions(spec)
    if not spec:
        return
    hypergraph = Hypergraph(atoms_from_spec(spec))
    chosen = decompose(hypergraph)
    assert chosen.is_valid(), chosen.validate()
    single = single_node_ghd(hypergraph)
    assert chosen.width() <= single.width() + 1e-9


@given(spec=edge_strategy)
@settings(max_examples=80, deadline=None)
def test_attribute_order_is_a_permutation_of_variables(spec):
    spec = distinct_positions(spec)
    if not spec:
        return
    hypergraph = Hypergraph(atoms_from_spec(spec))
    order = global_attribute_order(decompose(hypergraph))
    assert sorted(order) == sorted(hypergraph.vertices)


@given(spec=edge_strategy, selected=st.integers(0, 4))
@settings(max_examples=60, deadline=None)
def test_selection_aware_search_still_valid(spec, selected):
    spec = distinct_positions(spec)
    if not spec:
        return
    hypergraph = Hypergraph(atoms_from_spec(spec))
    variable = VARIABLES[selected]
    chosen = decompose(hypergraph, selected_vars={variable},
                       selection_edges={0})
    assert chosen.is_valid(), chosen.validate()
