"""Unit tests for the GHD search (paper §3.2 and Appendix B.1.1)."""

import pytest

from repro.ghd import (all_decompositions, decompose, global_attribute_order,
                       push_selections_into_bags, single_node_ghd)
from repro.ghd.attribute_order import bag_evaluation_order
from repro.query import Hypergraph, parse_rule


def hypergraph_of(text):
    return Hypergraph(parse_rule(text).body)


TRIANGLE = hypergraph_of("T(x,y,z) :- R(x,y),S(y,z),T(x,z).")
BARBELL = hypergraph_of(
    "B(x,y,z,u,v,w) :- R(x,y),S(y,z),T(x,z),M(x,u),"
    "A(u,v),B(v,w),C(u,w).")
LOLLIPOP = hypergraph_of("L(x,y,z,w) :- R(x,y),S(y,z),T(x,z),U(x,w).")
FOUR_CLIQUE = hypergraph_of(
    "K(x,y,z,w) :- R(x,y),S(y,z),T(x,z),U(x,w),V(y,w),Q(z,w).")


class TestOptimalPlans:
    def test_triangle_single_bag(self):
        ghd = decompose(TRIANGLE)
        assert ghd.is_valid()
        assert ghd.n_nodes == 1
        assert ghd.width() == pytest.approx(1.5)

    def test_barbell_matches_figure3c(self):
        """The optimizer must find the O(N^{3/2}) plan of Figure 3c, not
        the O(N^3) single bag of Figure 3b."""
        ghd = decompose(BARBELL)
        assert ghd.is_valid()
        assert ghd.width() == pytest.approx(1.5)
        assert ghd.n_nodes == 3
        assert sorted(ghd.root.chi) == ["u", "x"]  # the bridge at root
        child_chis = sorted(tuple(sorted(c.chi))
                            for c in ghd.root.children)
        assert child_chis == [("u", "v", "w"), ("x", "y", "z")]

    def test_lollipop_splits_tail(self):
        ghd = decompose(LOLLIPOP)
        assert ghd.is_valid()
        assert ghd.width() == pytest.approx(1.5)
        assert ghd.n_nodes == 2

    def test_four_clique_prefers_single_bag(self):
        """The paper: 'GHD optimizations do not matter on the K4 query as
        the optimal query plan is a single node GHD.'"""
        ghd = decompose(FOUR_CLIQUE)
        assert ghd.n_nodes == 1
        assert ghd.width() == pytest.approx(2.0)

    def test_use_ghd_false_forces_single_node(self):
        ghd = decompose(BARBELL, use_ghd=False)
        assert ghd.n_nodes == 1
        assert ghd.width() == pytest.approx(3.0)

    def test_disconnected_query_becomes_forest_tree(self):
        hg = hypergraph_of("Q(a,b,c,d) :- R(a,b),S(c,d).")
        ghd = decompose(hg)
        assert ghd.is_valid()
        assert ghd.n_nodes == 2

    def test_chosen_width_is_minimum_over_all_decompositions(self):
        best = decompose(LOLLIPOP).width()
        for candidate in all_decompositions(LOLLIPOP):
            assert candidate.width() >= best - 1e-9


class TestAllDecompositions:
    def test_every_enumerated_ghd_is_valid(self):
        for hg in (TRIANGLE, LOLLIPOP):
            count = 0
            for ghd in all_decompositions(hg):
                assert ghd.is_valid(), ghd.validate()
                count += 1
            assert count >= 2

    def test_limit_respected(self):
        listed = list(all_decompositions(BARBELL, limit=10))
        assert len(listed) <= 10


class TestSelections:
    SELECTED = hypergraph_of(
        "S(x,y,z,u) :- R(x,y),S(y,z),T(x,z),P(x),M(x,u).")

    def test_selection_depth_preference(self):
        """With push-down, the selection edge P should sit as deep as
        possible; with the ablation it should not be forced deep."""
        deep = decompose(self.SELECTED, selected_vars={"x"},
                         selection_edges={3}, prefer_deep_selections=True)
        shallow = decompose(self.SELECTED, selected_vars={"x"},
                            selection_edges={3},
                            prefer_deep_selections=False)

        def selection_depth(ghd):
            return ghd.depth_of(
                lambda node: any(e.index == 3 for e in node.edges))

        assert deep.is_valid() and shallow.is_valid()
        assert selection_depth(deep) >= selection_depth(shallow)

    def test_selected_vars_relax_width(self):
        """B.1.1 step 1: attributes bound by selections need no cover."""
        relaxed = decompose(self.SELECTED, selected_vars={"x", "y", "z"})
        strict = decompose(self.SELECTED)
        assert relaxed.is_valid() and strict.is_valid()

    def test_push_selections_into_bags_duplicates_safely(self):
        ghd = decompose(self.SELECTED, selected_vars={"x"},
                        selection_edges={3})
        selection_edge = next(e for e in self.SELECTED.edges
                              if e.index == 3)
        push_selections_into_bags(ghd, [selection_edge])
        assert ghd.is_valid(), ghd.validate()
        holders = [n for n in ghd.nodes_preorder()
                   if any(e.index == 3 for e in n.edges)]
        coverers = [n for n in ghd.nodes_preorder()
                    if "x" in n.chi_set]
        assert len(holders) == len(coverers)


class TestAttributeOrder:
    def test_preorder_queue_covers_all_vertices(self):
        ghd = decompose(BARBELL)
        order = global_attribute_order(ghd)
        assert sorted(order) == sorted(BARBELL.vertices)
        # root attributes (the bridge) come first
        assert set(order[:2]) == {"x", "u"}

    def test_selected_attributes_first_within_bag(self):
        ghd = single_node_ghd(TRIANGLE)
        order = global_attribute_order(ghd, selected_vars={"z"})
        assert order[0] == "z"

    def test_bag_evaluation_order_out_first(self):
        order = bag_evaluation_order(
            ("x", "y", "z"), out_attrs=("z",),
            global_order=("x", "y", "z"))
        assert order == ("z", "x", "y")

    def test_bag_evaluation_order_respects_global_within_classes(self):
        order = bag_evaluation_order(
            ("a", "b", "c", "d"), out_attrs=("c", "a"),
            global_order=("d", "c", "b", "a"))
        assert order == ("c", "a", "d", "b")
