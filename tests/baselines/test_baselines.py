"""Tests for the simulated competitor engines: correctness + agreement."""

import numpy as np
import pytest

from repro import Database
from repro.baselines import (CSRGraph, HashSetGraphEngine, LogicBloxLike,
                             PairwiseEngine, ScalarGraphEngine,
                             SociaLiteLike, TunedGraphEngine,
                             dijkstra_reference)
from repro.graphs import (TRIANGLE_COUNT, highest_degree_node, pagerank,
                          symmetric_filter, undirect)
from tests.conftest import brute_force_triangles, random_undirected_edges


@pytest.fixture(scope="module")
def edges():
    return random_undirected_edges(30, 130, seed=21)


@pytest.fixture(scope="module")
def pruned(edges):
    return symmetric_filter(np.asarray(edges))


@pytest.fixture(scope="module")
def both(edges):
    return undirect(np.asarray(edges))


class TestCSRGraph:
    def test_structure(self):
        graph = CSRGraph([[0, 1], [0, 2], [2, 1]], n_nodes=3)
        assert graph.n_nodes == 3 and graph.n_edges == 3
        assert graph.neighbors(0).tolist() == [1, 2]
        assert graph.neighbors(1).tolist() == []
        assert graph.out_degrees.tolist() == [2, 0, 1]

    def test_empty(self):
        graph = CSRGraph(np.empty((0, 2)), n_nodes=2)
        assert graph.neighbors(0).size == 0


class TestTriangleAgreement:
    def test_all_engines_match_brute_force(self, edges, pruned):
        expected = brute_force_triangles(edges)
        assert ScalarGraphEngine().triangle_count(pruned) == expected
        assert TunedGraphEngine().triangle_count(pruned) == expected
        assert HashSetGraphEngine().triangle_count(pruned) == expected
        assert PairwiseEngine().triangle_count(pruned) == expected
        assert SociaLiteLike().triangle_count(pruned) == expected
        lb = LogicBloxLike()
        lb.load_graph("Edge", edges, prune=True)
        assert lb.query(TRIANGLE_COUNT).scalar == expected

    def test_hashset_engine_min_property_cost(self, pruned):
        """PowerGraph's hash probing is O(min): its probe count must be
        bounded by the sum over edges of the smaller degree."""
        from repro.sets import OpCounter
        counter = OpCounter()
        engine = HashSetGraphEngine()
        engine.triangle_count(pruned, counter=counter)
        graph = CSRGraph(pruned)
        bound = sum(min(graph.neighbors(int(u)).size,
                        graph.neighbors(int(v)).size)
                    for u, v in pruned.tolist())
        assert counter.scalar_ops <= bound * engine.HASH_PROBE_COST

    def test_pairwise_generic_conjunctive(self, both):
        engine = PairwiseEngine()
        engine.add("E", both)
        triangles = engine.count_conjunctive([
            ("E", ("x", "y")), ("E", ("y", "z")), ("E", ("x", "z"))])
        wedges = engine.count_conjunctive([
            ("E", ("x", "y")), ("E", ("y", "z"))])
        assert wedges >= triangles
        assert engine.count_conjunctive([]) == 0


class TestAnalyticsAgreement:
    def test_pagerank_all_engines(self, edges, both):
        db = Database()
        db.load_graph("Edge", edges, undirected=True)
        reference = pagerank(db)
        n = int(both.max()) + 1
        for engine in (ScalarGraphEngine(), TunedGraphEngine(),
                       SociaLiteLike()):
            got = engine.pagerank(both, n_nodes=n)
            assert set(got) == set(reference)
            for node in reference:
                assert got[node] == pytest.approx(reference[node],
                                                  abs=1e-9)

    def test_sssp_all_engines(self, both):
        n = int(both.max()) + 1
        source = highest_degree_node(both)
        reference = dijkstra_reference(both, source, n_nodes=n)
        for engine in (ScalarGraphEngine(), TunedGraphEngine(),
                       SociaLiteLike()):
            assert engine.sssp(both, source, n_nodes=n) == reference

    def test_logicblox_pagerank_through_queries(self, edges):
        db = Database()
        db.load_graph("Edge", edges, undirected=True)
        reference = pagerank(db)
        lb = LogicBloxLike()
        lb.load_graph("Edge", edges, undirected=True)
        from repro.graphs import pagerank_program
        got = lb.query(pagerank_program()).to_dict()
        for node in reference:
            assert got[node] == pytest.approx(reference[node], abs=1e-9)


class TestLogicBloxConfiguration:
    def test_locked_to_paper_description(self):
        lb = LogicBloxLike()
        assert not lb.db.config.use_ghd
        assert not lb.db.config.simd
        assert lb.db.config.layout_level == "uint_only"
        assert lb.db.config.adaptive_algorithms  # LFTJ min property
